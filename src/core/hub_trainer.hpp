// HubTrainer — parallel per-slice training and fine-tuning over the ModelHub.
//
// The paper's operational architecture (§4.5, Fig. 4) has the operator train
// one model per (device type, hour) traffic slice and release them all
// through the hub. The slices are independent, so the fleet trains
// concurrently on the process thread pool: each slice gets its own
// pre-forked RNG, its own tape arena (thread-local ArenaScope), and its own
// model, and the per-slice loss trajectory is byte-identical to running that
// slice alone on one thread (pinned by tests/train_determinism_test.cpp).
#pragma once

#include <span>
#include <vector>

#include "model_hub.hpp"
#include "trainer.hpp"

namespace cpt::core {

// One (device, hour) traffic slice and the dataset to train it on. `data`
// must outlive the HubTrainer call.
struct HubSlice {
    trace::DeviceType device = trace::DeviceType::kPhone;
    int hour_of_day = 0;
    const trace::Dataset* data = nullptr;
};

struct HubTrainOptions {
    TrainConfig train;
    CptGptConfig model;
    // Design-3 fine-tune scaling, forwarded to Trainer::fine_tune.
    double ft_lr_scale = 0.5;
    double ft_epoch_scale = 0.4;
    // Release each trained slice into the hub (serially, after the parallel
    // phase completes). Disable for benchmarking.
    bool publish = true;
};

struct HubSliceResult {
    trace::DeviceType device = trace::DeviceType::kPhone;
    int hour_of_day = 0;
    TrainResult result;
};

class HubTrainer {
public:
    HubTrainer(ModelHub& hub, HubTrainOptions options);

    // Trains one model per slice from scratch (per-slice tokenizer fit +
    // fresh init) and publishes each to the hub. Results are returned in
    // slice order regardless of scheduling.
    std::vector<HubSliceResult> train_all(std::span<const HubSlice> slices);

    // Design 3: seeds every slice's model with `pretrained`'s weights (which
    // must match options.model and share `tokenizer`) and fine-tunes each on
    // its slice data with the reduced lr/epoch budget.
    std::vector<HubSliceResult> fine_tune_all(const CptGpt& pretrained,
                                              const Tokenizer& tokenizer,
                                              std::span<const HubSlice> slices);

private:
    ModelHub* hub_;
    HubTrainOptions options_;
};

}  // namespace cpt::core
