// CPT-GPT's multi-modal tokenization scheme (paper Design 1, Fig. 3).
//
// Each sample becomes the concatenation of three sub-tokens:
//   [ one-hot event type (E dims) | scaled interarrival (1 dim) | one-hot
//     stop flag (2 dims) ]
// The interarrival is log-scaled (x' = log(x + 1)) and linearly mapped to
// [0, 1] using the min/max of the log-interarrival over the fitted dataset
// (footnote 3: log scaling flattens the heavy tail, Fig. 7). For 4G this
// gives d_token = 6 + 1 + 2 = 9, exactly the paper's configuration.
#pragma once

#include <vector>

#include "nn/tensor.hpp"
#include "trace/stream.hpp"

namespace cpt::core {

class Tokenizer {
public:
    // Fits the interarrival scaling on a dataset. Throws on an empty dataset.
    static Tokenizer fit(const trace::Dataset& ds);
    // Constructs with explicit scaling (used when loading checkpoints).
    Tokenizer(cellular::Generation generation, double min_log_ia, double max_log_ia);

    cellular::Generation generation() const { return generation_; }
    std::size_t num_event_types() const { return num_events_; }
    std::size_t d_token() const { return num_events_ + 1 + 2; }

    std::size_t event_offset() const { return 0; }
    std::size_t interarrival_offset() const { return num_events_; }
    std::size_t stop_offset() const { return num_events_ + 1; }

    // Scales a raw interarrival (seconds) into [0, 1] and back. unscale
    // clamps its input into [0, 1] first, so sampled values are always valid.
    float scale_interarrival(double seconds) const;
    double unscale_interarrival(double scaled) const;

    double min_log_interarrival() const { return min_log_ia_; }
    double max_log_interarrival() const { return max_log_ia_; }

    // Encodes a stream (truncated to max_len tokens) as a [T, d_token] tensor.
    nn::Tensor encode(const trace::Stream& s, std::size_t max_len = 500) const;
    // Writes one token in place into `dst` (d_token floats).
    void encode_token(cellular::EventId event, double interarrival_seconds, bool stop,
                      std::span<float> dst) const;

private:
    cellular::Generation generation_;
    std::size_t num_events_;
    double min_log_ia_ = 0.0;
    double max_log_ia_ = 1.0;
};

}  // namespace cpt::core
