#include "model.hpp"

#include <algorithm>

#include "nn/serialize.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {

namespace {

nn::TransformerConfig backbone_config(const Tokenizer& tokenizer, const CptGptConfig& config) {
    nn::TransformerConfig bc;
    bc.d_token = tokenizer.d_token();
    bc.d_model = config.d_model;
    bc.heads = config.heads;
    bc.mlp_hidden = config.mlp_hidden;
    bc.blocks = config.blocks;
    bc.max_seq_len = config.max_seq_len;
    return bc;
}

}  // namespace

CptGpt::CptGpt(const Tokenizer& tokenizer, const CptGptConfig& config, util::Rng& rng)
    : config_(config),
      num_events_(tokenizer.num_event_types()),
      backbone_(backbone_config(tokenizer, config), rng),
      event_head_(config.d_model, config.head_hidden, num_events_, rng),
      ia_head_(config.d_model, config.head_hidden, config.distribution_head ? 2 : 1, rng),
      stop_head_(config.d_model, config.head_hidden, 2, rng) {}

CptGpt::Output CptGpt::forward(const nn::Var& tokens) const {
    const auto& ts = tokens->value.shape();
    CPT_CHECK_EQ(ts.size(), std::size_t{3}, " CptGpt::forward: expected [B, T, d_token], got ",
                 nn::shape_to_string(ts));
    const std::size_t rows = ts[0] * ts[1];

    nn::Var h = backbone_.forward(tokens);             // [B, T, D]
    nn::Var flat = nn::reshape(h, {rows, config_.d_model});

    Output out;
    out.event_logits = event_head_.forward(flat);       // [rows, E]
    nn::Var ia = ia_head_.forward(flat);                // [rows, 2] or [rows, 1]
    if (config_.distribution_head) {
        out.ia_mu = nn::reshape(nn::slice_lastdim(ia, 0, 1), {rows});
        out.ia_logvar = nn::reshape(nn::slice_lastdim(ia, 1, 1), {rows});
    } else {
        out.ia_mu = nn::reshape(ia, {rows});
        out.ia_logvar = nullptr;
    }
    out.stop_logits = stop_head_.forward(flat);         // [rows, 2]
    return out;
}

nn::TransformerDecoder CptGpt::make_decoder(std::size_t batch) const {
    return nn::TransformerDecoder(backbone_, batch);
}

nn::TransformerDecoder CptGpt::make_decoder(std::size_t batch, nn::Precision precision,
                                            std::size_t max_window) const {
    nn::DecodeOptions opts;
    opts.max_window = max_window;
    if (precision != nn::Precision::kFp32) {
        CPT_CHECK(quant_ != nullptr,
                  "make_decoder: int8 decoding requires quantize_weights() or a quantized "
                  "checkpoint");
        opts.quant = &quant_->backbone;
        opts.kv_fp16 = true;
    }
    return nn::TransformerDecoder(backbone_, batch, opts);
}

void CptGpt::quantize_weights() {
    auto q = std::make_shared<CptGptQuant>();
    q->backbone = nn::TransformerQuant::from(backbone_);
    q->event_head = nn::QuantMlp::from(event_head_);
    q->ia_head = nn::QuantMlp::from(ia_head_);
    q->stop_head = nn::QuantMlp::from(stop_head_);
    quant_ = std::move(q);
}

const CptGptQuant& CptGpt::quantized_weights() const {
    CPT_CHECK(quant_ != nullptr, "quantized_weights: call quantize_weights() first");
    return *quant_;
}

CptGpt::DecodeScratch CptGpt::make_decode_scratch(std::size_t batch) const {
    return make_decode_scratch(batch, nn::Precision::kFp32);
}

CptGpt::DecodeScratch CptGpt::make_decode_scratch(std::size_t batch,
                                                  nn::Precision precision) const {
    if (precision == nn::Precision::kInt8W8A32) {
        CPT_CHECK(quant_ != nullptr,
                  "make_decode_scratch: int8 decoding requires quantized weights");
    }
    DecodeScratch s;
    s.capacity = batch;
    s.batch = batch;
    s.precision = precision;
    if (precision == nn::Precision::kInt8W8A32) s.qscratch.ensure(batch, config_.d_model);
    s.event_hidden = nn::Tensor({batch, config_.head_hidden});
    s.ia_hidden = nn::Tensor({batch, config_.head_hidden});
    s.stop_hidden = nn::Tensor({batch, config_.head_hidden});
    s.ia_out = nn::Tensor({batch, config_.distribution_head ? std::size_t{2} : std::size_t{1}});
    s.event_logits_full = nn::Tensor({batch, num_events_});
    s.ia_mu_full = nn::Tensor({batch});
    if (config_.distribution_head) s.ia_logvar_full = nn::Tensor({batch});
    s.stop_logits_full = nn::Tensor({batch, 2});
    s.out.event_logits = s.event_logits_full;
    s.out.ia_mu = s.ia_mu_full;
    s.out.ia_logvar = s.ia_logvar_full;
    s.out.stop_logits = s.stop_logits_full;
    return s;
}

const CptGpt::DecodeOutput& CptGpt::decode_step(nn::TransformerDecoder& decoder,
                                                const nn::Tensor& tokens,
                                                DecodeScratch& scratch) const {
    return run_heads(decoder.step(tokens), scratch);
}

const CptGpt::DecodeOutput& CptGpt::decode_window(nn::TransformerDecoder& decoder,
                                                  const nn::Tensor& tokens,
                                                  std::span<const std::size_t> counts,
                                                  DecodeScratch& scratch) const {
    return run_heads(decoder.step_window(tokens, counts), scratch);
}

const CptGpt::DecodeOutput& CptGpt::run_heads(const nn::Tensor& hidden,
                                              DecodeScratch& scratch) const {
    const std::size_t b = hidden.dim(0);
    CPT_CHECK_LE(b, scratch.capacity, " CptGpt::decode_step: batch exceeds scratch capacity");
    if (scratch.batch != b) {
        scratch.batch = b;
        scratch.out.event_logits = scratch.event_logits_full.first_rows(b);
        scratch.out.ia_mu = scratch.ia_mu_full.first_rows(b);
        if (config_.distribution_head) {
            scratch.out.ia_logvar = scratch.ia_logvar_full.first_rows(b);
        }
        scratch.out.stop_logits = scratch.stop_logits_full.first_rows(b);
    }
    // The heads run through the inference fast path (same per-element
    // arithmetic as the autograd modules; pinned by DecodeStepMatchesForwardHeads).
    util::ThreadPool& pool = util::global_pool();
    const float* ph = hidden.data().data();
    if (scratch.precision == nn::Precision::kInt8W8A32) {
        CPT_CHECK(quant_ != nullptr, "decode_step: int8 scratch but no quantized weights");
        quant_->event_head.forward_rows(ph, scratch.event_hidden.data().data(),
                                        scratch.out.event_logits.data().data(), b,
                                        scratch.qscratch, &pool);
        quant_->ia_head.forward_rows(ph, scratch.ia_hidden.data().data(),
                                     scratch.ia_out.data().data(), b, scratch.qscratch, &pool);
        quant_->stop_head.forward_rows(ph, scratch.stop_hidden.data().data(),
                                       scratch.out.stop_logits.data().data(), b, scratch.qscratch,
                                       &pool);
    } else {
        event_head_.forward_rows(ph, scratch.event_hidden.data().data(),
                                 scratch.out.event_logits.data().data(), b, &pool);
        ia_head_.forward_rows(ph, scratch.ia_hidden.data().data(), scratch.ia_out.data().data(), b,
                              &pool);
        stop_head_.forward_rows(ph, scratch.stop_hidden.data().data(),
                                scratch.out.stop_logits.data().data(), b, &pool);
    }
    const float* pia = scratch.ia_out.data().data();
    float* mu = scratch.out.ia_mu.data().data();
    if (config_.distribution_head) {
        float* lv = scratch.out.ia_logvar.data().data();
        for (std::size_t r = 0; r < b; ++r) {
            mu[r] = pia[r * 2];
            lv[r] = pia[r * 2 + 1];
        }
    } else {
        std::copy_n(pia, b, mu);
    }
    return scratch.out;
}

CptGpt::DecodeOutput CptGpt::decode_step(nn::TransformerDecoder& decoder,
                                         const nn::Tensor& tokens) const {
    DecodeScratch scratch = make_decode_scratch(decoder.batch());
    // Copying the output tensors shares their storage, which outlives the
    // local scratch.
    return decode_step(decoder, tokens, scratch);
}

void CptGpt::collect(const std::string& prefix, std::vector<nn::NamedParam>& out) const {
    backbone_.collect(prefix + "backbone.", out);
    event_head_.collect(prefix + "event_head.", out);
    ia_head_.collect(prefix + "ia_head.", out);
    stop_head_.collect(prefix + "stop_head.", out);
}

void CptGpt::save_package(const std::string& path, const Tokenizer& tokenizer,
                          const std::vector<double>& initial_event_dist,
                          nn::Precision precision) const {
    CPT_CHECK_EQ(initial_event_dist.size(), num_events_,
                 " save_package: initial distribution size vs event vocabulary");
    auto params = named_parameters("cptgpt.");
    // Pack tokenizer scaling and the bootstrap distribution as extra tensors.
    std::vector<float> meta{static_cast<float>(tokenizer.min_log_interarrival()),
                            static_cast<float>(tokenizer.max_log_interarrival())};
    params.push_back({"meta.ia_scaling", nn::make_var(nn::Tensor::from(meta, {2}))});
    std::vector<float> dist(initial_event_dist.begin(), initial_event_dist.end());
    params.push_back(
        {"meta.initial_event_dist", nn::make_var(nn::Tensor::from(dist, {num_events_}))});
    if (precision == nn::Precision::kInt8W8A32) {
        // Every Linear weight matrix (name "*.weight", always rank 2) goes
        // int8; biases, LayerNorm params and the positional table stay fp32.
        std::vector<std::string> quantize;
        for (const auto& np : params) {
            const auto& n = np.name;
            if (n.size() > 7 && n.compare(n.size() - 7, 7, ".weight") == 0) quantize.push_back(n);
        }
        nn::save_parameters(path, params, quantize);
    } else {
        nn::save_parameters(path, params);
    }
}

std::vector<std::pair<std::string, nn::QuantLinear*>> CptGpt::quant_entries() {
    CPT_CHECK(quant_ != nullptr, "quant_entries: no quantized weights");
    std::vector<std::pair<std::string, nn::QuantLinear*>> entries;
    const auto add = [&entries](const std::string& name, nn::QuantLinear& l) {
        entries.emplace_back("cptgpt." + name + ".weight", &l);
    };
    add("backbone.input_proj", quant_->backbone.input_proj);
    for (std::size_t i = 0; i < quant_->backbone.blocks.size(); ++i) {
        auto& b = quant_->backbone.blocks[i];
        const std::string p = "backbone.block" + std::to_string(i) + ".";
        add(p + "attn.wq", b.wq);
        add(p + "attn.wk", b.wk);
        add(p + "attn.wv", b.wv);
        add(p + "attn.wo", b.wo);
        add(p + "mlp.fc1", b.mlp.fc1);
        add(p + "mlp.fc2", b.mlp.fc2);
    }
    const auto add_head = [&add](const std::string& name, nn::QuantMlp& h) {
        add(name + ".fc1", h.fc1);
        add(name + ".fc2", h.fc2);
    };
    add_head("event_head", quant_->event_head);
    add_head("ia_head", quant_->ia_head);
    add_head("stop_head", quant_->stop_head);
    return entries;
}

void CptGpt::install_quantized(const nn::QuantSections& sections) {
    // Build the quantized structure from the (dequantized) fp32 weights, then
    // overwrite each matrix with the checkpoint's exact scale/payload bytes —
    // re-quantizing a dequantized matrix can drift the scales by 1 ulp.
    quantize_weights();
    auto entries = quant_entries();
    CPT_CHECK_EQ(sections.size(), entries.size(),
                 " install_quantized: checkpoint quantized-section count vs model matrices");
    for (auto& [name, lin] : entries) {
        const auto it = sections.find(name);
        CPT_CHECK(it != sections.end(), "install_quantized: checkpoint lacks q8 section '", name,
                  "'");
        const auto& sec = it->second;
        CPT_CHECK_EQ(sec.shape.size(), std::size_t{2},
                     " install_quantized: q8 section rank for ", name);
        CPT_CHECK_EQ(sec.shape[0], lin->out, " install_quantized: rows of ", name);
        CPT_CHECK_EQ(sec.shape[1], lin->in, " install_quantized: cols of ", name);
        lin->install(sec.payload, sec.scale);
    }
}

CptGpt::Package CptGpt::load_package(const std::string& path, cellular::Generation generation,
                                     const CptGptConfig& config) {
    // Build a skeleton (weights are overwritten by the checkpoint; the
    // tokenizer scaling is patched after reading the meta tensors).
    util::Rng rng(0);
    Tokenizer placeholder(generation, 0.0, 1.0);
    auto model = std::make_unique<CptGpt>(placeholder, config, rng);
    auto params = model->named_parameters("cptgpt.");
    auto ia_scaling = nn::make_var(nn::Tensor::zeros({2}));
    auto dist = nn::make_var(nn::Tensor::zeros({model->num_event_types()}));
    params.push_back({"meta.ia_scaling", ia_scaling});
    params.push_back({"meta.initial_event_dist", dist});
    // Quantization-aware load: q8 sections are dequantized into the fp32
    // params above AND handed back verbatim so the model serves the exact
    // checkpoint payload (no fp32 weights needed on disk for int8 hubs).
    nn::QuantSections sections;
    nn::load_parameters(path, params, &sections);
    if (!sections.empty()) model->install_quantized(sections);

    Package pkg{std::move(model),
                Tokenizer(generation, ia_scaling->value[0], ia_scaling->value[1]),
                {},
                !sections.empty()};
    pkg.initial_event_dist.assign(dist->value.data().begin(), dist->value.data().end());
    return pkg;
}

void copy_weights(const CptGpt& src, CptGpt& dst) {
    const auto from = src.named_parameters();
    const auto to = dst.named_parameters();
    CPT_CHECK_EQ(from.size(), to.size(), " copy_weights: parameter count mismatch");
    for (std::size_t i = 0; i < from.size(); ++i) {
        CPT_CHECK(from[i].name == to[i].name, "copy_weights: parameter ", i, " name mismatch: ",
                  from[i].name, " vs ", to[i].name);
        CPT_CHECK(from[i].param->value.same_shape(to[i].param->value),
                  "copy_weights: shape mismatch for ", from[i].name);
        auto s = from[i].param->value.data();
        auto d = to[i].param->value.data();
        std::copy(s.begin(), s.end(), d.begin());
    }
}

}  // namespace cpt::core
