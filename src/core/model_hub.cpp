#include "model_hub.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "util/csv.hpp"

namespace cpt::core {

ModelHub::ModelHub(std::string directory) : directory_(std::move(directory)) {
    std::filesystem::create_directories(directory_);
    load_manifest();
}

std::string ModelHub::manifest_path() const { return directory_ + "/manifest.csv"; }

void ModelHub::load_manifest() {
    std::ifstream in(manifest_path());
    if (!in) return;  // empty hub
    std::string line;
    while (std::getline(in, line)) {
        const auto t = util::trim(line);
        if (t.empty() || t.front() == '#') continue;
        const auto cols = util::split(std::string(t), ',');
        if (cols.size() != 3) {
            throw std::runtime_error("ModelHub: malformed manifest line '" + line + "'");
        }
        ModelHubEntry e;
        e.device = trace::device_type_from_string(util::trim(cols[0]));
        e.hour_of_day = static_cast<int>(util::parse_int(cols[1]));
        e.file = std::string(util::trim(cols[2]));
        entries_.push_back(std::move(e));
    }
}

void ModelHub::save_manifest() const {
    std::ofstream out(manifest_path());
    if (!out) throw std::runtime_error("ModelHub: cannot write manifest");
    out << "# device,hour,file\n";
    for (const auto& e : entries_) {
        out << to_string(e.device) << ',' << e.hour_of_day << ',' << e.file << '\n';
    }
}

void ModelHub::publish(const CptGpt& model, const Tokenizer& tokenizer,
                       const std::vector<double>& initial_event_dist, trace::DeviceType device,
                       int hour_of_day, nn::Precision precision) {
    const std::string file = std::string(to_string(device)) + "_h" +
                             std::to_string(hour_of_day) + ".ckpt";
    model.save_package(directory_ + "/" + file, tokenizer, initial_event_dist, precision);
    // Replace any previous release for this slice.
    entries_.erase(std::remove_if(entries_.begin(), entries_.end(),
                                  [&](const ModelHubEntry& e) {
                                      return e.device == device && e.hour_of_day == hour_of_day;
                                  }),
                   entries_.end());
    entries_.push_back({device, hour_of_day, file});
    save_manifest();
}

bool ModelHub::has(trace::DeviceType device, int hour_of_day) const {
    return std::any_of(entries_.begin(), entries_.end(), [&](const ModelHubEntry& e) {
        return e.device == device && e.hour_of_day == hour_of_day;
    });
}

CptGpt::Package ModelHub::load(trace::DeviceType device, int hour_of_day,
                               const CptGptConfig& config) const {
    for (const auto& e : entries_) {
        if (e.device == device && e.hour_of_day == hour_of_day) {
            return CptGpt::load_package(directory_ + "/" + e.file,
                                        cellular::Generation::kLte4G, config);
        }
    }
    throw std::out_of_range("ModelHub::load: no release for slice (" +
                            std::string(to_string(device)) + ", hour " +
                            std::to_string(hour_of_day) + ") in hub directory '" + directory_ +
                            "'");
}

std::optional<CptGpt::Package> ModelHub::load_nearest(trace::DeviceType device, int hour_of_day,
                                                      const CptGptConfig& config) const {
    const ModelHubEntry* best = nullptr;
    int best_dist = 25;
    for (const auto& e : entries_) {
        if (e.device != device) continue;
        const int raw = std::abs(e.hour_of_day - hour_of_day);
        const int dist = std::min(raw, 24 - raw);  // cyclic hour distance
        if (dist < best_dist) {
            best_dist = dist;
            best = &e;
        }
    }
    if (!best) return std::nullopt;
    return CptGpt::load_package(directory_ + "/" + best->file, cellular::Generation::kLte4G,
                                config);
}

}  // namespace cpt::core
