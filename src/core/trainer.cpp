#include "trainer.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>

#include "nn/graph_lint.hpp"
#include "nn/optim.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cpt::core {

namespace {

// A training window: `length` tokens of one stream starting at `start`, with
// next-token targets available for positions [0, targets).
struct Window {
    std::size_t stream = 0;
    std::size_t start = 0;
    std::size_t length = 0;
    std::size_t targets = 0;
};

struct EncodedStream {
    nn::Tensor tokens;                // [len, d_token]
    std::vector<int> event_ids;      // len
    std::vector<float> scaled_ia;    // len
    std::vector<int> stop_flags;     // len
};

// One training batch. The tensors are first_rows() views into capacity-sized
// backing storage owned by the same struct, so an epoch's batches reuse one
// allocation: fill_batch() resizes the views and rewrites the contents
// in place instead of allocating per step.
struct Batch {
    nn::Tensor tokens;               // [B, W, d_token] (view)
    std::vector<int> event_targets;  // B*W, kIgnoreIndex padded
    nn::Tensor ia_targets;           // [B*W] (view)
    std::vector<float> ia_mask;      // B*W
    std::vector<int> stop_targets;   // B*W

    nn::Tensor cap_tokens;  // [Bmax, W, d_token] backing storage
    nn::Tensor cap_ia;      // [Bmax * W] backing storage
};

std::vector<EncodedStream> encode_streams(const trace::Dataset& ds, const Tokenizer& tok,
                                          std::size_t max_len) {
    std::vector<EncodedStream> out;
    out.reserve(ds.streams.size());
    for (const auto& s : ds.streams) {
        if (s.length() < 2 || s.length() > max_len) continue;
        EncodedStream e;
        e.tokens = tok.encode(s, max_len);
        const auto ia = s.interarrivals();
        for (std::size_t k = 0; k < s.length(); ++k) {
            e.event_ids.push_back(s.events[k].type);
            e.scaled_ia.push_back(tok.scale_interarrival(ia[k]));
            e.stop_flags.push_back(k + 1 == s.length() ? 1 : 0);
        }
        out.push_back(std::move(e));
    }
    return out;
}

std::vector<Window> make_windows(const std::vector<EncodedStream>& streams, std::size_t window) {
    std::vector<Window> out;
    for (std::size_t i = 0; i < streams.size(); ++i) {
        const std::size_t len = streams[i].event_ids.size();
        for (std::size_t start = 0; start + 1 < len; start += window) {
            Window w;
            w.stream = i;
            w.start = start;
            w.length = std::min(window, len - start);
            w.targets = std::min(w.length, len - 1 - start);
            out.push_back(w);
        }
    }
    return out;
}

void fill_batch(Batch& batch, const std::vector<EncodedStream>& streams,
                std::span<const Window> windows, std::size_t window_len, std::size_t d_token,
                std::size_t capacity) {
    const std::size_t b = windows.size();
    if (batch.cap_tokens.numel() != capacity * window_len * d_token) {
        batch.cap_tokens = nn::Tensor({capacity, window_len, d_token});
        batch.cap_ia = nn::Tensor({capacity * window_len});
    }
    batch.tokens = batch.cap_tokens.first_rows(b);
    batch.ia_targets = batch.cap_ia.first_rows(b * window_len);
    batch.event_targets.assign(b * window_len, nn::kIgnoreIndex);
    batch.ia_mask.assign(b * window_len, 0.0f);
    batch.stop_targets.assign(b * window_len, nn::kIgnoreIndex);

    auto tokens = batch.tokens.data();
    std::fill(tokens.begin(), tokens.end(), 0.0f);
    auto ia_targets = batch.ia_targets.data();
    std::fill(ia_targets.begin(), ia_targets.end(), 0.0f);
    for (std::size_t row = 0; row < b; ++row) {
        const Window& w = windows[row];
        const EncodedStream& s = streams[w.stream];
        const auto src = s.tokens.data();
        for (std::size_t k = 0; k < w.length; ++k) {
            for (std::size_t j = 0; j < d_token; ++j) {
                tokens[(row * window_len + k) * d_token + j] = src[(w.start + k) * d_token + j];
            }
        }
        for (std::size_t k = 0; k < w.targets; ++k) {
            const std::size_t tgt = w.start + k + 1;
            const std::size_t flat = row * window_len + k;
            batch.event_targets[flat] = s.event_ids[tgt];
            ia_targets[flat] = s.scaled_ia[tgt];
            batch.ia_mask[flat] = 1.0f;
            batch.stop_targets[flat] = s.stop_flags[tgt];
        }
    }
}

}  // namespace

Trainer::Trainer(CptGpt& model, const Tokenizer& tokenizer, TrainConfig config)
    : model_(&model), tokenizer_(&tokenizer), config_(config) {
    CPT_CHECK_GT(config_.batch_size, std::size_t{0}, " Trainer: batch_size must be > 0");
    CPT_CHECK_GE(config_.window, std::size_t{2},
                 " Trainer: window must be >= 2 (a context token and a target)");
    if (config_.window > model.config().max_seq_len) {
        config_.window = model.config().max_seq_len;
    }
    CPT_CHECK_GE(config_.window, std::size_t{2},
                 " Trainer: window clamped to max_seq_len ", model.config().max_seq_len,
                 " must still be >= 2");
    CPT_CHECK(config_.val_fraction >= 0.0 && config_.val_fraction < 1.0,
              "Trainer: val_fraction must be in [0, 1), got ", config_.val_fraction);
    // lr == 0 is allowed: it trains without progress, which tests use to
    // exercise the early-stopping path.
    CPT_CHECK_GE(config_.lr, 0.0f, " Trainer: lr must be >= 0");
    CPT_CHECK_GE(config_.max_epochs, 1, " Trainer: max_epochs must be >= 1");
    CPT_CHECK_GE(config_.patience, 1, " Trainer: patience must be >= 1");
    CPT_CHECK_GT(config_.grad_clip, 0.0f, " Trainer: grad_clip must be > 0");
    CPT_CHECK(config_.min_lr_fraction > 0.0f && config_.min_lr_fraction <= 1.0f,
              "Trainer: min_lr_fraction must be in (0, 1], got ", config_.min_lr_fraction);
    CPT_CHECK_GE(config_.max_stream_len, std::size_t{2},
                 " Trainer: max_stream_len must be >= 2 (a stream needs a context token and a "
                 "target)");
}

float Trainer::cosine_lr(const TrainConfig& config, int epoch) {
    if (!config.lr_decay || config.max_epochs <= 1) return config.lr;
    // Cosine decay from lr to lr * min_lr_fraction.
    const double progress = static_cast<double>(epoch) / (config.max_epochs - 1);
    const double factor =
        config.min_lr_fraction +
        (1.0 - config.min_lr_fraction) * 0.5 * (1.0 + std::cos(progress * 3.14159265));
    return static_cast<float>(config.lr * factor);
}

TrainResult Trainer::train(const trace::Dataset& data) {
    const auto t0 = std::chrono::steady_clock::now();
    util::Rng rng(config_.seed);

    auto streams = encode_streams(data, *tokenizer_, config_.max_stream_len);
    CPT_CHECK(!streams.empty(), "Trainer::train: no trainable streams");

    // Deterministic train/val split at stream granularity.
    std::vector<std::size_t> order(streams.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    rng.shuffle(order);
    const std::size_t val_count = std::min<std::size_t>(
        std::max<std::size_t>(1, static_cast<std::size_t>(
                                      static_cast<double>(streams.size()) * config_.val_fraction)),
        streams.size() - 1);
    std::vector<EncodedStream> train_streams;
    std::vector<EncodedStream> val_streams;
    for (std::size_t i = 0; i < order.size(); ++i) {
        auto& dst = (i < val_count) ? val_streams : train_streams;
        dst.push_back(std::move(streams[order[i]]));
    }

    auto train_windows = make_windows(train_streams, config_.window);
    const auto val_windows = make_windows(val_streams, config_.window);
    const std::size_t d_token = tokenizer_->d_token();
    const bool dist_head = model_->config().distribution_head;

    auto params = model_->parameters();
    nn::Adam opt(params, config_.lr);

    struct LossParts {
        double total = 0.0;
        double event_ce = 0.0;
        double ia = 0.0;
        double stop_ce = 0.0;
    };

    // In debug-check builds, lint the very first tape once: a structural
    // problem (detached param, dead gradient path) is a property of the model
    // wiring, not of any particular batch.
    bool graph_linted = !util::kDebugChecksEnabled;

    TrainResult result;

    // One arena and one batch buffer for the whole run: the tape's tensor
    // shapes repeat every step, so after the first batch the graph is built
    // entirely from recycled storage.
    nn::TapeArena arena;
    Batch batch;

    auto batch_loss = [&](bool backprop) -> LossParts {
        LossParts parts;
        {
            nn::ArenaScope tape_scope(arena);
            nn::Var tokens = nn::make_var(batch.tokens);
            const auto out = model_->forward(tokens);
            nn::Var event_ce = nn::cross_entropy(out.event_logits, batch.event_targets);
            nn::Var ia_loss =
                dist_head
                    ? nn::gaussian_nll(out.ia_mu, out.ia_logvar, batch.ia_targets, batch.ia_mask)
                    : nn::mse_masked(out.ia_mu, batch.ia_targets, batch.ia_mask);
            nn::Var stop_ce = nn::cross_entropy(out.stop_logits, batch.stop_targets);
            nn::Var loss = nn::add(nn::scale(event_ce, config_.w_event),
                                   nn::add(nn::scale(ia_loss, config_.w_interarrival),
                                           nn::scale(stop_ce, config_.w_stop)));
            if (!graph_linted) {
                graph_linted = true;
                const auto lint = nn::lint_graph(loss, params);
                if (!lint.clean()) util::warn(lint.summary());
            }
            parts = LossParts{loss->value[0], event_ce->value[0], ia_loss->value[0],
                              stop_ce->value[0]};
            CPT_CHECK_FINITE(parts.total, "Trainer: batch loss");
            if (backprop) {
                opt.zero_grad();
                nn::backward(loss);
                // Fused clip+update: one gradient pass instead of three.
                opt.step_clipped(config_.grad_clip);
                ++result.steps;
            }
        }
        // The graph (and every arena tensor it pinned) is released; reclaim
        // the step's buffers for the next one.
        arena.reset();
        return parts;
    };

    auto run_epoch = [&](const std::vector<Window>& windows, bool backprop,
                         const std::vector<EncodedStream>& source) -> LossParts {
        LossParts total;
        std::size_t batches = 0;
        for (std::size_t i = 0; i < windows.size(); i += config_.batch_size) {
            const std::size_t count = std::min(config_.batch_size, windows.size() - i);
            fill_batch(batch, source, {windows.data() + i, count}, config_.window, d_token,
                       config_.batch_size);
            const LossParts p = batch_loss(backprop);
            if (backprop) result.tokens += count * config_.window;
            total.total += p.total;
            total.event_ce += p.event_ce;
            total.ia += p.ia;
            total.stop_ce += p.stop_ce;
            ++batches;
        }
        if (batches) {
            const auto n = static_cast<double>(batches);
            total.total /= n;
            total.event_ce /= n;
            total.ia /= n;
            total.stop_ce /= n;
        }
        return total;
    };

    double best_val = std::numeric_limits<double>::max();
    int since_best = 0;
    for (int epoch = 0; epoch < config_.max_epochs; ++epoch) {
        opt.set_lr(cosine_lr(config_, epoch));
        rng.shuffle(train_windows);
        const LossParts train_parts = run_epoch(train_windows, true, train_streams);
        const LossParts val_parts =
            val_windows.empty() ? train_parts : run_epoch(val_windows, false, val_streams);
        result.train_loss.push_back(train_parts.total);
        result.val_loss.push_back(val_parts.total);
        result.final_event_ce = train_parts.event_ce;
        result.final_ia_loss = train_parts.ia;
        result.final_stop_ce = train_parts.stop_ce;
        ++result.epochs_run;
        if (config_.verbose) {
            std::printf("epoch %d  train %.4f (ev %.4f ia %.4f stop %.4f)  val %.4f\n", epoch,
                        train_parts.total, train_parts.event_ce, train_parts.ia,
                        train_parts.stop_ce, val_parts.total);
        }
        if (val_parts.total < best_val - 1e-4) {
            best_val = val_parts.total;
            result.best_epoch = epoch;
            since_best = 0;
        } else if (++since_best >= config_.patience) {
            break;
        }
    }
    result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return result;
}

TrainResult Trainer::fine_tune(const trace::Dataset& data, double lr_scale, double epoch_scale) {
    TrainConfig saved = config_;
    config_.lr = static_cast<float>(config_.lr * lr_scale);
    config_.max_epochs =
        std::max(1, static_cast<int>(std::lround(config_.max_epochs * epoch_scale)));
    config_.patience = std::max(1, config_.patience - 1);
    TrainResult r = train(data);
    config_ = saved;
    return r;
}

}  // namespace cpt::core
