// Autoregressive CPT-GPT inference (paper §4.5): each stream is bootstrapped
// by sampling the first event type from the released initial-event-type
// distribution (interarrival and stop flag fixed to 0), then the model
// recursively predicts the next token until it emits a stop flag of 1. The
// event type and the stop flag are sampled from the predicted categorical
// distributions; the interarrival is sampled from the predicted normal
// distribution (Design 2), or taken verbatim in the ablation mode.
//
// Categorical sampling optionally applies nucleus (top-p) truncation — the
// standard language-model inference practice of sampling from the smallest
// probability mass >= top_p. It suppresses the low-probability tail where
// state-machine-violating events live, at the cost of also suppressing
// legitimately rare events (ATCH/DTCH are ~0.1% of real traffic), so the
// default is raw sampling (top_p = 1.0), matching the paper's inference.
//
// generate() runs streams in parallel batches: all active streams share the
// same context length, so one [B, T, d_token] forward serves B streams per
// step, which is roughly an order of magnitude faster than per-stream loops
// on CPU.
//
// Determinism across thread counts: every stream's RNG is forked from the
// caller's RNG serially, salted by the stream's absolute serial index, before
// any parallel work starts. Worker threads only consume pre-forked per-stream
// RNGs, and the decoder math they run is bit-stable under row partitioning
// (see src/nn/gemm.hpp), so generate() output is byte-identical for any
// CPT_THREADS setting (pinned by tests/parallel_determinism_test.cpp).
//
// If the model is so degenerate that almost every draw is shorter than 2
// events, generate() gives up after sampling ~20x the requested stream count,
// logs a warning to stderr, and returns the (possibly short) dataset rather
// than looping forever.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "model.hpp"
#include "trace/stream.hpp"

namespace cpt::trace {
class ColumnarWriter;
}

namespace cpt::core {

class SpecDrafter;

struct SamplerConfig {
    std::size_t max_stream_len = 500;  // hard cap, matching training (§5.1)
    // Categorical sampling temperature. Exactly 0 selects greedy decoding:
    // event and stop take the argmax (lowest index on ties), the
    // interarrival takes the predicted mean, and no randomness is consumed
    // after the bootstrap draw.
    double temperature = 1.0;
    double top_p = 1.0;                // nucleus truncation; 1.0 disables
    std::size_t batch = 32;            // streams generated per batched forward
    trace::DeviceType device = trace::DeviceType::kPhone;  // label for streams
    int hour_of_day = 0;
    // Decode numeric mode (DESIGN.md §12). kInt8W8A32 runs the decoder and
    // heads through the int8 weight path with an fp16 KV cache — the model
    // must have quantized weights (quantize_weights() or a quantized
    // checkpoint) before the Sampler is built.
    nn::Precision precision = nn::Precision::kFp32;
    // Speculative multi-token decode (DESIGN.md §16): spec_k > 1 drafts
    // spec_k - 1 candidate tokens per round from `drafter` (borrowed; must
    // outlive the sampler) and verifies them in one batched forward,
    // committing up to spec_k tokens per decode round via rejection
    // sampling — the output distribution is exactly the plain path's.
    // spec_k <= 1 is the plain one-token path, bit-exactly. Requires the
    // distribution head. Rows decoding greedily (temperature == 0) never
    // speculate — a continuous Δt proposal cannot reproduce the
    // deterministic mean — so argmax decoding is byte-identical to the
    // plain path at every spec_k.
    std::size_t spec_k = 1;
    const SpecDrafter* drafter = nullptr;
    // Test-only knobs (KV-rollback property test, DESIGN.md §16):
    // spec_force_reject rejects every draft while consuming randomness
    // exactly like the plain path (drafting runs off a throwaway RNG), so
    // output must be byte-identical to spec_k = 1; spec_verify_all runs the
    // verify forward — and the full KV rollback — even for rows whose
    // pass-A token missed the draft, so the rollback path is exercised
    // while remaining observationally inert.
    bool spec_force_reject = false;
    bool spec_verify_all = false;
};

class Sampler {
public:
    Sampler(const CptGpt& model, const Tokenizer& tokenizer,
            std::vector<double> initial_event_dist, SamplerConfig config = {});

    // Wall-clock attribution of a generate_batch call, summed across decode
    // steps. The stages partition the batch loop: `bootstrap` covers RNG
    // bootstrap draws and first-token encoding, `decode` the KV-cached
    // transformer + head forward, `sample` the per-row categorical/normal
    // draws and next-token re-encoding, `compact` the KV-cache compaction of
    // finished rows. bench_e2e_generate uses this to attribute tier-to-tier
    // differences to a stage instead of guessing from end-to-end totals.
    // Speculative decode (spec_k > 1) adds two stages and three counters:
    // `draft` covers the n-gram proposals, `verify` the batched multi-token
    // verify forwards (window encoding + GEMMs), `verify_steps` how many of
    // those forwards ran, and spec_proposed / spec_accepted the drafted
    // tokens offered vs committed verbatim — their ratio is the acceptance
    // rate cpt-serve reports per slice.
    struct StageTimes {
        double bootstrap = 0.0;
        double decode = 0.0;
        double sample = 0.0;
        double compact = 0.0;
        double draft = 0.0;
        double verify = 0.0;
        std::size_t steps = 0;         // pass-A decode steps executed
        std::size_t verify_steps = 0;  // batched verify forwards executed
        std::size_t spec_proposed = 0;
        std::size_t spec_accepted = 0;
        StageTimes& operator+=(const StageTimes& o) {
            bootstrap += o.bootstrap;
            decode += o.decode;
            sample += o.sample;
            compact += o.compact;
            draft += o.draft;
            verify += o.verify;
            steps += o.steps;
            verify_steps += o.verify_steps;
            spec_proposed += o.spec_proposed;
            spec_accepted += o.spec_accepted;
            return *this;
        }
    };

    // Generates a single stream (convenience; batched internally for n = 1).
    trace::Stream sample_stream(const std::string& ue_id, util::Rng& rng) const;

    // Generates `n` streams (length >= 2; shorter draws are dropped).
    trace::Dataset generate(std::size_t n, util::Rng& rng,
                            const std::string& ue_prefix = "cptgpt") const;

    // Streaming variant: same sampling loop (shared round/fork/filter core,
    // so the two entry points cannot drift), but kept streams go straight to
    // `writer` instead of a Dataset — memory stays O(batch round), not O(n).
    // Byte-identical file to write_columnar_file(path, generate(n, ...)) at
    // equal seeds for every CPT_THREADS. Does not finish() the writer.
    // Returns the number of streams appended (< n only if the model is so
    // degenerate the loop gave up; see the header comment).
    std::size_t generate_to(trace::ColumnarWriter& writer, std::size_t n, util::Rng& rng,
                            const std::string& ue_prefix = "cptgpt") const;

    // Runs one batched decode over `rngs.size()` streams whose RNGs were
    // pre-forked by the caller; stream i is labelled `first_serial + i`
    // (ue_id "<ue_prefix>-%06zu"). Public so serving-layer schedulers and
    // their tests can pin SlotBatch output against the drain-style batch.
    // When `times` is non-null, per-stage wall-clock is accumulated into it
    // (timers only run when requested, so the default path pays nothing).
    std::vector<trace::Stream> generate_batch(std::span<util::Rng> rngs,
                                              const std::string& ue_prefix,
                                              std::size_t first_serial,
                                              StageTimes* times = nullptr) const;

    // Continuous-batching decode session over this sampler's model — the
    // slot-refill entry point beside generate_batch() that src/serve builds
    // on. Slots are decoder rows: admit() fills free slots at step
    // boundaries (including slots that finished streams freed mid-decode),
    // step() advances every live stream by one token and hands back the
    // streams that completed, evict() drops live streams (deadline
    // enforcement) at the next compaction.
    //
    // Determinism: a stream's content is a pure function of the Rng passed
    // to admit() — independent of when the stream was admitted, which other
    // streams share the batch, and CPT_THREADS (the decoder windows
    // per-row attention and positions; see nn/infer.hpp). Admitting
    // serially pre-forked RNGs therefore reproduces generate_batch()
    // byte-for-byte, which is the single-slice deterministic-mode contract
    // (pinned by tests/serve_test.cpp).
    class SlotBatch {
    public:
        struct Finished {
            trace::Stream stream;
            std::uint64_t ticket = 0;
            bool evicted = false;  // cut short by evict(), not by the model
        };

        SlotBatch(const Sampler& sampler, std::size_t capacity);
        ~SlotBatch();
        SlotBatch(SlotBatch&&) noexcept;
        SlotBatch& operator=(SlotBatch&&) noexcept;

        std::size_t capacity() const;
        std::size_t live() const;
        std::size_t free_slots() const;

        // Longest stream a newly admitted slot could still produce. Rows own
        // independent per-row KV contexts (nn/infer.hpp), so a fresh slot
        // always has the full config cap available regardless of how far the
        // current residents have decoded — this is an invariant, not a
        // function of batch occupancy.
        std::size_t admissible_len() const;

        // Per-stream sampling overrides; negative fields fall back to the
        // sampler's config (the serve layer carries these per request).
        struct AdmitParams {
            std::size_t max_len = std::numeric_limits<std::size_t>::max();
            double temperature = -1.0;
            double top_p = -1.0;
        };

        // Admits one stream into a free slot; its length is capped at
        // min(params.max_len, sampler config max_stream_len), which must fit
        // in admissible_len(). `ticket` tags the stream through Finished.
        void admit(util::Rng rng, std::string ue_id, std::uint64_t ticket,
                   AdmitParams params);
        void admit(util::Rng rng, std::string ue_id, std::uint64_t ticket) {
            admit(std::move(rng), std::move(ue_id), ticket, AdmitParams{});
        }

        // One decode step over all live streams; completed streams are
        // appended to `out`. Returns how many completed. No-op when empty.
        std::size_t step(std::vector<Finished>& out);

        // Drops live streams whose ticket matches `pred`; their partial
        // streams are appended to `out` with evicted = true.
        std::size_t evict(const std::function<bool(std::uint64_t)>& pred,
                          std::vector<Finished>& out);

        // Wall-clock attribution accumulated over every step() since
        // construction: `decode` is the KV-cached transformer + head forward,
        // `sample` the per-row draws, `compact` the cache compaction, and
        // `steps` the step() calls that ran a decode. The serve layer folds
        // decode / steps into per-slice stats (decode_ms_per_step).
        const StageTimes& stage_times() const;

    private:
        struct Impl;
        std::unique_ptr<Impl> impl_;
    };

    SlotBatch make_slot_batch(std::size_t capacity) const { return SlotBatch(*this, capacity); }

    const SamplerConfig& config() const { return config_; }

private:
    // Shared round/fork/filter loop behind generate() and generate_to():
    // kept streams are handed to `sink` in serial order. Returns the number
    // of streams kept.
    std::size_t generate_impl(std::size_t n, util::Rng& rng, const std::string& ue_prefix,
                              const std::function<void(trace::Stream&&)>& sink) const;

    // Speculative variant of generate_batch (taken when spec_k > 1): same
    // contract, decodes up to spec_k tokens per round via draft + batched
    // verify + KV rollback (DESIGN.md §16).
    std::vector<trace::Stream> generate_batch_spec(std::span<util::Rng> rngs,
                                                   const std::string& ue_prefix,
                                                   std::size_t first_serial,
                                                   StageTimes* times) const;

    bool spec_enabled() const { return config_.spec_k > 1 && config_.drafter != nullptr; }

    const CptGpt* model_;
    const Tokenizer* tokenizer_;
    std::vector<double> initial_event_dist_;
    SamplerConfig config_;
};

}  // namespace cpt::core
