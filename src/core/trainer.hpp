// Supervised next-token training of CPT-GPT (paper §4.4-4.5), including the
// weighted multi-modality loss (cross-entropy for event type and stop flag,
// Gaussian NLL for the interarrival), early stopping on a validation split,
// and transfer learning (fine-tuning a pretrained model on a new hour's data,
// Design 3).
#pragma once

#include <cstdint>
#include <vector>

#include "model.hpp"
#include "trace/stream.hpp"

namespace cpt::core {

struct TrainConfig {
    std::size_t batch_size = 16;
    // Streams are chunked into windows of this many tokens for training.
    std::size_t window = 64;
    float lr = 1e-3f;
    int max_epochs = 30;
    // Early stopping: stop after this many epochs without val-loss improvement.
    int patience = 3;
    // Loss weights (Table 8 sweeps these).
    float w_event = 1.0f;
    float w_interarrival = 1.0f;
    float w_stop = 1.0f;
    float grad_clip = 1.0f;
    double val_fraction = 0.1;
    // Streams longer than this are dropped (paper §5.1 uses 500).
    std::size_t max_stream_len = 500;
    // Cosine learning-rate decay to lr * min_lr_fraction over max_epochs.
    bool lr_decay = true;
    float min_lr_fraction = 0.1f;
    std::uint64_t seed = 1;
    bool verbose = false;
};

struct TrainResult {
    int epochs_run = 0;
    int best_epoch = 0;   // epoch index (0-based) with the lowest val loss
    double seconds = 0.0; // wall-clock training time
    std::size_t steps = 0;   // optimizer updates performed
    std::size_t tokens = 0;  // window positions processed by those updates
    std::vector<double> train_loss;  // per epoch (weighted total)
    std::vector<double> val_loss;    // per epoch
    // Unweighted per-field training losses at the final epoch, useful for
    // diagnosing which modality limits fidelity.
    double final_event_ce = 0.0;
    double final_ia_loss = 0.0;
    double final_stop_ce = 0.0;
};

class Trainer {
public:
    // Validates `config` up front (positive batch size and learning rate,
    // window >= 2, val_fraction in [0, 1), ...); violations throw
    // std::invalid_argument.
    Trainer(CptGpt& model, const Tokenizer& tokenizer, TrainConfig config);

    // The learning rate used at `epoch` under the config's cosine schedule:
    // decays from lr to lr * min_lr_fraction across max_epochs (returns lr
    // unchanged when lr_decay is off or max_epochs == 1).
    static float cosine_lr(const TrainConfig& config, int epoch);

    // Trains from the model's current weights (so calling it on a pretrained
    // model IS transfer learning).
    TrainResult train(const trace::Dataset& data);

    // Convenience for Design 3: fine-tunes with a reduced epoch budget and
    // learning rate. `epoch_scale` in (0, 1].
    TrainResult fine_tune(const trace::Dataset& data, double lr_scale = 0.5,
                          double epoch_scale = 0.4);

private:
    CptGpt* model_;
    const Tokenizer* tokenizer_;
    TrainConfig config_;
};

}  // namespace cpt::core
