// The CPT-GPT model (paper §4.4-4.5): a decoder-only transformer backbone
// with three MLP output heads, one per modality:
//   * event head  — logits over event types (categorical);
//   * interarrival head — (mu, logvar) of a normal distribution over the
//     scaled interarrival (Design 2), or a single scalar when the
//     distribution head is disabled (the §5.3 ablation);
//   * stop head — logits over {continue, stop}.
#pragma once

#include <memory>
#include <span>
#include <string>

#include "nn/infer.hpp"
#include "nn/modules.hpp"
#include "nn/serialize.hpp"
#include "tokenizer.hpp"

namespace cpt::core {

// Int8 weight-quantized mirror of every decode-path matmul (DESIGN.md §12):
// the backbone projections plus the three output heads. Derived from the fp32
// parameters by CptGpt::quantize_weights(), or installed verbatim from a
// quantized checkpoint (v2 sections) so pre-quantized hubs load without the
// 1-ulp scale drift of re-quantizing dequantized weights.
struct CptGptQuant {
    nn::TransformerQuant backbone;
    nn::QuantMlp event_head;
    nn::QuantMlp ia_head;
    nn::QuantMlp stop_head;

    std::size_t weight_bytes() const {
        return backbone.weight_bytes() + event_head.weight_bytes() + ia_head.weight_bytes() +
               stop_head.weight_bytes();
    }
};

struct CptGptConfig {
    std::size_t d_model = 64;
    std::size_t heads = 4;
    std::size_t mlp_hidden = 256;
    std::size_t blocks = 2;
    std::size_t max_seq_len = 128;
    std::size_t head_hidden = 64;
    // Design 2: predict distribution parameters for the numerical field.
    // false reproduces the "No dist. pred." ablation column of Table 8.
    bool distribution_head = true;

    // The paper's full-size configuration (§5.1): 2 blocks, embedding 128,
    // MLP hidden 1024 (~725K parameters).
    static CptGptConfig paper_scale() {
        CptGptConfig c;
        c.d_model = 128;
        c.heads = 4;
        c.mlp_hidden = 1024;
        c.blocks = 2;
        c.max_seq_len = 500;
        c.head_hidden = 128;
        return c;
    }
};

class CptGpt : public nn::Module {
public:
    CptGpt(const Tokenizer& tokenizer, const CptGptConfig& config, util::Rng& rng);

    struct Output {
        nn::Var event_logits;  // [B*T, E]
        nn::Var ia_mu;         // [B*T] (distribution head) or the scalar prediction
        nn::Var ia_logvar;     // [B*T]; null when distribution_head == false
        nn::Var stop_logits;   // [B*T, 2]
    };

    // tokens: [B, T, d_token].
    Output forward(const nn::Var& tokens) const;

    // ---- Incremental (KV-cached) decoding, used by the Sampler ----
    struct DecodeOutput {
        nn::Tensor event_logits;  // [B, E]
        nn::Tensor ia_mu;         // [B]
        nn::Tensor ia_logvar;     // [B]; empty when distribution_head == false
        nn::Tensor stop_logits;   // [B, 2]
    };
    nn::TransformerDecoder make_decoder(std::size_t batch) const;
    // Precision-selected decoder: kInt8W8A32 runs every projection through the
    // int8 weight path and stores the KV cache as fp16 (requires
    // quantize_weights() or a quantized checkpoint first). `max_window` sizes
    // the decoder arena for speculative multi-token windows (DESIGN.md §16);
    // 1 keeps the plain one-token stepping footprint.
    nn::TransformerDecoder make_decoder(std::size_t batch, nn::Precision precision,
                                        std::size_t max_window = 1) const;

    // Derives the int8 mirror of all decode-path weights from the current
    // fp32 parameters (idempotent: recomputes on every call, so callers can
    // refresh after fine-tuning). ~4x smaller than the fp32 weights.
    void quantize_weights();
    bool has_quantized_weights() const { return quant_ != nullptr; }
    // Valid only when has_quantized_weights().
    const CptGptQuant& quantized_weights() const;

    // Reusable head buffers for decode_step: hidden activations and outputs
    // are preallocated for a fixed capacity so the steady-state decode loop
    // performs no tensor allocations. `out` holds first_rows views over the
    // *_full tensors, rebound only when the live batch shrinks (decoder
    // compaction).
    struct DecodeScratch {
        std::size_t capacity = 0;
        std::size_t batch = 0;
        // Numeric mode the heads run in; kInt8W8A32 routes them through the
        // quantized mirrors using qscratch for the activation codes.
        nn::Precision precision = nn::Precision::kFp32;
        nn::QuantScratch qscratch;
        nn::Tensor event_hidden;  // [cap, head_hidden]
        nn::Tensor ia_hidden;
        nn::Tensor stop_hidden;
        nn::Tensor ia_out;  // [cap, 2] (distribution head) or [cap, 1]
        nn::Tensor event_logits_full;
        nn::Tensor ia_mu_full;
        nn::Tensor ia_logvar_full;
        nn::Tensor stop_logits_full;
        DecodeOutput out;
    };
    DecodeScratch make_decode_scratch(std::size_t batch) const;
    DecodeScratch make_decode_scratch(std::size_t batch, nn::Precision precision) const;

    // Feeds one token per row ([B, d_token]) and returns the heads' outputs
    // for that position. Numerically equivalent to forward() at the last
    // position (pinned by tests), at O(T) instead of O(T^2) per token.
    // The returned reference points into `scratch` and is overwritten by the
    // next call with that scratch.
    const DecodeOutput& decode_step(nn::TransformerDecoder& decoder, const nn::Tensor& tokens,
                                    DecodeScratch& scratch) const;
    // Convenience overload that builds a one-shot scratch (the returned
    // tensors keep the storage alive).
    DecodeOutput decode_step(nn::TransformerDecoder& decoder, const nn::Tensor& tokens) const;

    // Speculative verify forward (DESIGN.md §16): feeds counts[r] consecutive
    // tokens per row through TransformerDecoder::step_window and runs the
    // heads on every window position in one batch. `tokens` and the returned
    // outputs use the packed row-major layout ([sum(counts), ...]); window
    // position j of row r predicts the token at the row's context position
    // len(r)+j+1. The scratch must have capacity >= sum(counts).
    const DecodeOutput& decode_window(nn::TransformerDecoder& decoder, const nn::Tensor& tokens,
                                      std::span<const std::size_t> counts,
                                      DecodeScratch& scratch) const;

    void collect(const std::string& prefix, std::vector<nn::NamedParam>& out) const override;

    const CptGptConfig& config() const { return config_; }
    std::size_t num_event_types() const { return num_events_; }

    // Persists/restores model weights together with the tokenizer scaling and
    // the initial-event-type distribution — the full release package of §4.5.
    // Precision::kInt8W8A32 writes every decode-path weight matrix as an int8
    // checkpoint section (serialize v2), ~4x smaller, so cpt-serve can load a
    // pre-quantized hub without fp32 weights on disk.
    void save_package(const std::string& path, const Tokenizer& tokenizer,
                      const std::vector<double>& initial_event_dist,
                      nn::Precision precision = nn::Precision::kFp32) const;

    struct Package {
        std::unique_ptr<CptGpt> model;
        Tokenizer tokenizer;
        std::vector<double> initial_event_dist;
        // True when the checkpoint carried quantized sections; the loaded
        // model then already has_quantized_weights() installed verbatim.
        bool quantized = false;
    };
    static Package load_package(const std::string& path, cellular::Generation generation,
                                const CptGptConfig& config);

private:
    // Shared tail of decode_step/decode_window: runs the three heads over the
    // backbone hidden rows and de-interleaves the interarrival outputs.
    const DecodeOutput& run_heads(const nn::Tensor& hidden, DecodeScratch& scratch) const;
    // Name -> quantized-matrix map mirroring the checkpoint parameter names
    // (e.g. "cptgpt.backbone.block0.attn.wq.weight"); requires quant_.
    std::vector<std::pair<std::string, nn::QuantLinear*>> quant_entries();
    // Installs exact checkpoint sections over the derived quantized weights.
    void install_quantized(const nn::QuantSections& sections);

    CptGptConfig config_;
    std::size_t num_events_;
    nn::Transformer backbone_;
    nn::Mlp event_head_;
    nn::Mlp ia_head_;
    nn::Mlp stop_head_;
    // Int8 decode-path mirror (quantize_weights()); shared_ptr so copies of a
    // CptGpt value would stay cheap, and so decoders can borrow it safely for
    // the model's lifetime.
    std::shared_ptr<CptGptQuant> quant_;
};

// Copies every parameter value of `src` into `dst` in place (both models
// must have identical architecture: parameter names and shapes are checked).
// This is how a pretrained model seeds per-slice fine-tuning (Design 3)
// without a save/load round trip through disk.
void copy_weights(const CptGpt& src, CptGpt& dst);

}  // namespace cpt::core
