#include "sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "spec_drafter.hpp"
#include "trace/columnar.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {

Sampler::Sampler(const CptGpt& model, const Tokenizer& tokenizer,
                 std::vector<double> initial_event_dist, SamplerConfig config)
    : model_(&model),
      tokenizer_(&tokenizer),
      initial_event_dist_(std::move(initial_event_dist)),
      config_(config) {
    CPT_CHECK_EQ(initial_event_dist_.size(), tokenizer.num_event_types(),
                 " Sampler: initial distribution size vs event vocabulary");
    CPT_CHECK_FINITE(initial_event_dist_, "Sampler: initial distribution");
    double total = 0.0;
    for (double p : initial_event_dist_) total += p;
    CPT_CHECK_GT(total, 0.0, " Sampler: degenerate initial distribution");
    CPT_CHECK(config_.top_p > 0.0 && config_.top_p <= 1.0, "Sampler: top_p must be in (0, 1], got ",
              config_.top_p);
    if (config_.batch == 0) config_.batch = 1;
    if (config_.precision == nn::Precision::kInt8W8A32) {
        CPT_CHECK(model.has_quantized_weights(),
                  "Sampler: precision int8_w8a32 requires CptGpt::quantize_weights() (or a "
                  "quantized checkpoint) before constructing the sampler");
    }
    config_.max_stream_len = std::min(config_.max_stream_len, model.config().max_seq_len);
    CPT_CHECK_GE(config_.max_stream_len, std::size_t{2},
                 " Sampler: max_stream_len must be >= 2 (after clamping to max_seq_len)");
    if (config_.spec_k > 1) {
        CPT_CHECK(config_.drafter != nullptr, "Sampler: spec_k > 1 requires a drafter");
        CPT_CHECK(model.config().distribution_head,
                  "Sampler: speculative decode requires the distribution head (the Δt "
                  "rejection test needs the predicted normal, not a point estimate)");
        // More than one round's worth of drafts per stream is pure waste; the
        // clamp also keeps the verify window within the decoder context.
        config_.spec_k = std::min(config_.spec_k, config_.max_stream_len);
    }
}

namespace {

// Reusable buffers for sample_logits, so the per-token sampling loop does
// not allocate in steady state.
struct SampleScratch {
    std::vector<double> probs;
    std::vector<std::size_t> order;
};

// Samples from logits with temperature and nucleus (top-p) truncation.
// temperature == 0 is exact greedy decoding: the argmax index (lowest index
// on ties), consuming no randomness — the byte-stable mode the speculative
// decode identity tests pin against.
std::size_t sample_logits(std::span<const float> logits, double temperature, double top_p,
                          util::Rng& rng, SampleScratch& scratch) {
    if (temperature <= 0.0) {
        std::size_t best = 0;
        for (std::size_t i = 1; i < logits.size(); ++i) {
            if (logits[i] > logits[best]) best = i;
        }
        return best;
    }
    auto& probs = scratch.probs;
    probs.resize(logits.size());
    double mx = -1e30;
    for (float l : logits) mx = std::max(mx, static_cast<double>(l));
    double total = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        probs[i] = std::exp((static_cast<double>(logits[i]) - mx) / std::max(temperature, 1e-3));
        total += probs[i];
    }
    for (double& p : probs) p /= total;
    if (top_p < 1.0) {
        // Keep the smallest prefix (by descending probability) whose mass
        // reaches top_p; zero out the tail.
        auto& order = scratch.order;
        order.resize(probs.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
        double mass = 0.0;
        std::size_t keep = 0;
        while (keep < order.size() && mass < top_p) {
            mass += probs[order[keep]];
            ++keep;
        }
        for (std::size_t i = keep; i < order.size(); ++i) probs[order[i]] = 0.0;
    }
    return rng.categorical(std::span<const double>(probs));
}

// One stream's next (event, interarrival, stop) draw from row `i` of a
// decode-step prediction. Factored out so generate_batch and SlotBatch
// consume randomness in exactly the same order — the byte-identity between
// the two is a documented contract (tests/serve_test.cpp).
struct RowSample {
    cellular::EventId event;
    double interarrival;
    bool stop;
};

RowSample sample_row(const CptGpt::DecodeOutput& pred, std::size_t i, std::size_t num_events,
                     bool dist_head, const Tokenizer& tokenizer, double temperature,
                     double top_p, util::Rng& rng, SampleScratch& scratch) {
    RowSample out;
    const auto ev_logits = pred.event_logits.data().subspan(i * num_events, num_events);
    out.event = static_cast<cellular::EventId>(
        sample_logits(ev_logits, temperature, top_p, rng, scratch));

    const float mu = pred.ia_mu[i];
    double scaled;
    if (dist_head && temperature > 0.0) {
        const double sigma = std::exp(0.5 * static_cast<double>(pred.ia_logvar[i]));
        scaled = rng.normal(static_cast<double>(mu), sigma);
    } else {
        // Ablation mode, or greedy decoding (temperature == 0): the
        // predicted mean, no draw.
        scaled = static_cast<double>(mu);
    }
    out.interarrival = tokenizer.unscale_interarrival(scaled);

    const auto stop_logits = pred.stop_logits.data().subspan(i * 2, 2);
    out.stop = sample_logits(stop_logits, temperature, top_p, rng, scratch) == 1;
    return out;
}

// Accumulates wall-clock into `*slot` on destruction; no-op when `slot` is
// null, so untimed generate_batch calls never touch the clock.
class StageTimer {
public:
    explicit StageTimer(double* slot)
        : slot_(slot), t0_(slot ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{}) {}
    ~StageTimer() {
        if (slot_) {
            *slot_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
                          .count();
        }
    }
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

private:
    double* slot_;
    std::chrono::steady_clock::time_point t0_;
};

// One in-flight stream of a batched decode. `next_token` holds the last
// committed token, fed to the decoder on the next round.
struct ActiveStream {
    trace::Stream stream;
    util::Rng rng;
    std::vector<float> next_token;
    double t = 0.0;
};

ActiveStream bootstrap_stream(const Tokenizer& tokenizer, std::span<const double> initial_dist,
                              const SamplerConfig& config, util::Rng rng,
                              const std::string& ue_prefix, std::size_t serial) {
    ActiveStream a{.stream = {}, .rng = rng, .next_token = {}, .t = 0.0};
    char id[64];
    std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), serial);
    a.stream.ue_id = id;
    a.stream.device = config.device;
    a.stream.hour_of_day = config.hour_of_day;
    // Bootstrap token (§4.5): sampled initial event, interarrival 0, stop 0.
    const std::size_t d_token = tokenizer.d_token();
    const auto first_event = static_cast<cellular::EventId>(a.rng.categorical(initial_dist));
    a.next_token.resize(d_token, 0.0f);
    tokenizer.encode_token(first_event, 0.0, false,
                           std::span<float>(a.next_token.data(), d_token));
    a.stream.events.push_back({0.0, first_event});
    return a;
}

// ---- Speculative decode (DESIGN.md §16) ------------------------------------

constexpr double kSqrt2 = 1.4142135623730951;
constexpr double kSqrt2Pi = 2.5066282746310002;

// Target model's Δt measure at a clamped scaled value v: the clamp-atom
// probability mass when v sits on a boundary, the normal density otherwise —
// the same atom/interior split SpecDrafter::ia_proposal uses, so accept
// ratios always compare mass to mass or density to density.
double ia_target(double mu, double sigma, double v, bool atom) {
    if (atom) {
        if (v <= 0.0) return 0.5 * std::erfc(mu / (sigma * kSqrt2));    // P(z <= 0)
        return 0.5 * std::erfc((1.0 - mu) / (sigma * kSqrt2));          // P(z >= 1)
    }
    const double z = (v - mu) / sigma;
    return std::exp(-0.5 * z * z) / (sigma * kSqrt2Pi);
}

// Residual Δt draw after a rejected proposal: iterative rejection against the
// leftover measure max(0, p - q). Each try draws z from the target and keeps
// it with probability 1 - q(x)/p(x) at x = clamp(z). Capped at 16 tries: the
// per-try acceptance equals the proposal's total rejection mass, which is
// exactly the probability this path runs at all, so chains long enough to hit
// the cap mean q ≈ p pointwise and the final draw is already close to
// target-distributed; the cap keeps the draw deterministically bounded.
double residual_ia(double mu, double sigma, const SpecDrafter& drafter, cellular::EventId prev,
                   cellular::EventId next, util::Rng& rng) {
    double z = 0.0;
    for (int iter = 0; iter < 16; ++iter) {
        z = rng.normal(mu, sigma);
        const double x = std::clamp(z, 0.0, 1.0);
        const bool atom = x <= 0.0 || x >= 1.0;
        const double p = ia_target(mu, sigma, x, atom);
        if (p <= 0.0) continue;
        const double w = 1.0 - drafter.ia_proposal(prev, next, x, nullptr) / p;
        if (w > 0.0 && rng.uniform() < w) break;
    }
    return z;
}

// One position of the speculative accept chain: draws the committed token
// from row `i` of `pred` and reports whether it reproduced `candidate` (the
// drafted token), so the chain can continue. candidate == nullptr is a plain
// draw (the bonus position after a fully accepted window) consuming
// randomness exactly like sample_row.
//
// The event and stop components use the sample-and-compare form of
// speculative rejection, valid because the drafter's proposal for them is
// deterministic: sampling e ~ p and accepting iff e == e_draft accepts with
// probability p(e_draft), and the law conditioned on a mismatch is exactly
// the rejection-sampling residual — so the committed event is the sampled
// one in both outcomes and the output distribution is untouched. Δt has a
// continuous proposal, so it runs the standard accept test u < p(v)/q(v)
// against the drafter's density and falls back to residual_ia() on
// rejection. The draft never proposes stop, so a sampled stop simply ends
// the chain (and the stream) at the current event.
struct SpecSample {
    RowSample s;
    bool accepted = false;
};

SpecSample spec_sample_position(const CptGpt::DecodeOutput& pred, std::size_t i,
                                std::size_t num_events, const Tokenizer& tokenizer,
                                double temperature, double top_p, const SpecDrafter& drafter,
                                const SpecDrafter::Draft* candidate, cellular::EventId prev,
                                util::Rng& rng, SampleScratch& scratch) {
    SpecSample out;
    const auto ev_logits = pred.event_logits.data().subspan(i * num_events, num_events);
    out.s.event = static_cast<cellular::EventId>(
        sample_logits(ev_logits, temperature, top_p, rng, scratch));
    const bool ev_ok = candidate != nullptr && out.s.event == candidate->event;

    const double mu = static_cast<double>(pred.ia_mu[i]);
    const double sigma = std::exp(0.5 * static_cast<double>(pred.ia_logvar[i]));
    bool ia_ok = false;
    double scaled;
    if (ev_ok) {
        const double v = static_cast<double>(candidate->scaled_ia);
        const double p = ia_target(mu, sigma, v, candidate->atom);
        ia_ok = rng.uniform() * candidate->q < p;  // u < p/q without the divide; q > 0
        scaled = ia_ok ? v : residual_ia(mu, sigma, drafter, prev, out.s.event, rng);
    } else {
        scaled = rng.normal(mu, sigma);
    }
    out.s.interarrival = tokenizer.unscale_interarrival(scaled);

    const auto stop_logits = pred.stop_logits.data().subspan(i * 2, 2);
    out.s.stop = sample_logits(stop_logits, temperature, top_p, rng, scratch) == 1;
    out.accepted = ev_ok && ia_ok && !out.s.stop;
    return out;
}

// Drafts `d` tokens ahead of `stream`'s committed events; later drafts
// condition on earlier ones (`ctx` carries the rolling event window).
void draft_row(const SpecDrafter& drafter, const trace::Stream& stream, std::size_t d,
               util::Rng& rng, SpecDrafter::Scratch& scratch,
               std::vector<cellular::EventId>& ctx, SpecDrafter::Draft* out) {
    ctx.clear();
    const std::size_t have = stream.events.size();
    const std::size_t take = std::min(drafter.order(), have);
    for (std::size_t k = have - take; k < have; ++k) ctx.push_back(stream.events[k].type);
    for (std::size_t j = 0; j < d; ++j) {
        out[j] = drafter.draft(std::span<const cellular::EventId>(ctx), rng, scratch);
        ctx.push_back(out[j].event);
        if (ctx.size() > drafter.order()) ctx.erase(ctx.begin());
    }
}

}  // namespace

std::vector<trace::Stream> Sampler::generate_batch(std::span<util::Rng> rngs,
                                                   const std::string& ue_prefix,
                                                   std::size_t first_serial,
                                                   StageTimes* times) const {
    if (spec_enabled()) return generate_batch_spec(rngs, ue_prefix, first_serial, times);
    const std::size_t batch = rngs.size();
    const std::size_t d_token = tokenizer_->d_token();
    const std::size_t num_events = tokenizer_->num_event_types();
    const bool dist_head = model_->config().distribution_head;

    std::vector<ActiveStream> active;
    active.reserve(batch);
    {
        StageTimer timer(times ? &times->bootstrap : nullptr);
        for (std::size_t i = 0; i < batch; ++i) {
            active.push_back(bootstrap_stream(*tokenizer_, initial_event_dist_, config_,
                                              rngs[i], ue_prefix, first_serial + i));
        }
    }

    // Incremental decoding: each step feeds one new token per active stream
    // into the KV-cached decoder; finished streams are compacted away.
    // Everything on the per-step path — the input tensor, the decoder and
    // head scratch, and the sampling buffers — is allocated once up front,
    // so the steady-state loop is allocation-free outside of stream output.
    nn::TransformerDecoder decoder = model_->make_decoder(batch, config_.precision);
    CptGpt::DecodeScratch decode_scratch = model_->make_decode_scratch(batch, config_.precision);
    SampleScratch sample_scratch;
    nn::Tensor input_full({batch, d_token});
    nn::Tensor input = input_full;
    std::vector<std::size_t> keep_rows;
    keep_rows.reserve(batch);
    std::vector<trace::Stream> done;
    done.reserve(batch);
    while (!active.empty() && decoder.length() + 1 < config_.max_stream_len) {
        const std::size_t b = active.size();
        if (input.dim(0) != b) input = input_full.first_rows(b);
        {
            auto dst = input.data();
            for (std::size_t i = 0; i < b; ++i) {
                std::copy(active[i].next_token.begin(), active[i].next_token.end(),
                          dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
            }
        }
        const CptGpt::DecodeOutput* pred = nullptr;
        {
            StageTimer timer(times ? &times->decode : nullptr);
            pred = &model_->decode_step(decoder, input, decode_scratch);
        }
        if (times) ++times->steps;

        keep_rows.clear();
        std::size_t live = 0;  // rows of `active` kept, compacted in place
        {
            StageTimer timer(times ? &times->sample : nullptr);
            for (std::size_t i = 0; i < b; ++i) {
                ActiveStream& a = active[i];
                const RowSample s = sample_row(*pred, i, num_events, dist_head, *tokenizer_,
                                               config_.temperature, config_.top_p, a.rng,
                                               sample_scratch);
                a.t += s.interarrival;
                a.stream.events.push_back({a.t, s.event});
                if (s.stop || a.stream.events.size() >= config_.max_stream_len) {
                    done.push_back(std::move(a.stream));
                    continue;
                }
                tokenizer_->encode_token(s.event, s.interarrival, false,
                                         std::span<float>(a.next_token.data(), d_token));
                keep_rows.push_back(i);
                if (live != i) active[live] = std::move(a);
                ++live;
            }
        }
        if (live != b) {
            StageTimer timer(times ? &times->compact : nullptr);
            decoder.compact(keep_rows);
            active.resize(live);
        }
    }
    for (auto& a : active) done.push_back(std::move(a.stream));  // hit the length cap
    return done;
}

std::vector<trace::Stream> Sampler::generate_batch_spec(std::span<util::Rng> rngs,
                                                        const std::string& ue_prefix,
                                                        std::size_t first_serial,
                                                        StageTimes* times) const {
    const std::size_t batch = rngs.size();
    const std::size_t d_token = tokenizer_->d_token();
    const std::size_t num_events = tokenizer_->num_event_types();
    const bool dist_head = model_->config().distribution_head;
    const std::size_t max_t = model_->config().max_seq_len;
    const std::size_t d = config_.spec_k - 1;  // drafted tokens per round
    const SpecDrafter& drafter = *config_.drafter;

    std::vector<ActiveStream> active;
    active.reserve(batch);
    {
        StageTimer timer(times ? &times->bootstrap : nullptr);
        for (std::size_t i = 0; i < batch; ++i) {
            active.push_back(bootstrap_stream(*tokenizer_, initial_event_dist_, config_,
                                              rngs[i], ue_prefix, first_serial + i));
        }
    }

    nn::TransformerDecoder decoder = model_->make_decoder(batch, config_.precision, d);
    CptGpt::DecodeScratch decode_scratch =
        model_->make_decode_scratch(batch * d, config_.precision);
    SampleScratch sample_scratch;
    SpecDrafter::Scratch draft_scratch;
    nn::Tensor input_full({batch, d_token});
    nn::Tensor input = input_full;
    nn::Tensor window_full({batch * d, d_token});
    std::vector<SpecDrafter::Draft> drafts(batch * d);
    std::vector<std::size_t> counts;
    std::vector<std::uint8_t> drafted(batch);
    std::vector<std::uint8_t> matched(batch);
    std::vector<std::uint8_t> finished(batch);
    std::vector<cellular::EventId> ctx;
    std::vector<std::size_t> keep_rows;
    keep_rows.reserve(batch);
    std::vector<trace::Stream> done;
    done.reserve(batch);

    while (!active.empty()) {
        const std::size_t b = active.size();
        // ---- Draft: propose d tokens per eligible row. Rows decoding
        // greedily (temperature == 0), rows one commit from their cap, and
        // rows whose verify window would overflow the KV context sit the
        // round out as plain one-token rows.
        {
            StageTimer timer(times ? &times->draft : nullptr);
            for (std::size_t i = 0; i < b; ++i) {
                ActiveStream& a = active[i];
                const std::size_t events = a.stream.events.size();
                const bool eligible = config_.temperature > 0.0 &&
                                      events + 1 < config_.max_stream_len &&
                                      events + d <= max_t;
                drafted[i] = eligible ? 1 : 0;
                if (!eligible) continue;
                if (config_.spec_force_reject) {
                    // Keep the stream RNG byte-identical to the plain path:
                    // these drafts only exist to exercise verify + rollback.
                    util::Rng throwaway(0x5eed);
                    draft_row(drafter, a.stream, d, throwaway, draft_scratch, ctx,
                              &drafts[i * d]);
                } else {
                    draft_row(drafter, a.stream, d, a.rng, draft_scratch, ctx, &drafts[i * d]);
                }
                if (times) times->spec_proposed += d;
            }
        }

        // ---- Pass A: the regular one-token step — bit-exact with the plain
        // path since the GEMM shapes are identical — doubling as the
        // verifier of the first draft.
        if (input.dim(0) != b) input = input_full.first_rows(b);
        {
            auto dst = input.data();
            for (std::size_t i = 0; i < b; ++i) {
                std::copy(active[i].next_token.begin(), active[i].next_token.end(),
                          dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
            }
        }
        const CptGpt::DecodeOutput* pred = nullptr;
        {
            StageTimer timer(times ? &times->decode : nullptr);
            pred = &model_->decode_step(decoder, input, decode_scratch);
        }
        if (times) ++times->steps;

        {
            StageTimer timer(times ? &times->sample : nullptr);
            for (std::size_t i = 0; i < b; ++i) {
                ActiveStream& a = active[i];
                SpecSample r;
                if (drafted[i] != 0 && !config_.spec_force_reject) {
                    r = spec_sample_position(*pred, i, num_events, *tokenizer_,
                                             config_.temperature, config_.top_p, drafter,
                                             &drafts[i * d], a.stream.events.back().type,
                                             a.rng, sample_scratch);
                } else {
                    r.s = sample_row(*pred, i, num_events, dist_head, *tokenizer_,
                                     config_.temperature, config_.top_p, a.rng,
                                     sample_scratch);
                }
                a.t += r.s.interarrival;
                a.stream.events.push_back({a.t, r.s.event});
                finished[i] =
                    r.s.stop || a.stream.events.size() >= config_.max_stream_len ? 1 : 0;
                matched[i] = r.accepted && finished[i] == 0 ? 1 : 0;
                if (matched[i] != 0 && times) ++times->spec_accepted;
                if (finished[i] == 0) {
                    tokenizer_->encode_token(r.s.event, r.s.interarrival, false,
                                             std::span<float>(a.next_token.data(), d_token));
                }
            }
        }

        // ---- Pass B: one packed multi-token forward verifies the remaining
        // drafts of every row whose pass-A token matched its first draft.
        counts.assign(b, 0);
        std::size_t wrows = 0;
        for (std::size_t i = 0; i < b; ++i) {
            const bool verify = matched[i] != 0 ||
                                (config_.spec_verify_all && drafted[i] != 0 &&
                                 finished[i] == 0);
            if (verify) {
                counts[i] = d;
                wrows += d;
            }
        }
        const CptGpt::DecodeOutput* pred_w = nullptr;
        if (wrows > 0) {
            StageTimer timer(times ? &times->verify : nullptr);
            nn::Tensor window = window_full.first_rows(wrows);
            auto dst = window.data();
            std::size_t wb = 0;
            for (std::size_t i = 0; i < b; ++i) {
                if (counts[i] == 0) continue;
                for (std::size_t j = 0; j < d; ++j) {
                    const SpecDrafter::Draft& c = drafts[i * d + j];
                    tokenizer_->encode_token(
                        c.event,
                        tokenizer_->unscale_interarrival(static_cast<double>(c.scaled_ia)),
                        false, dst.subspan((wb + j) * d_token, d_token));
                }
                wb += d;
            }
            pred_w = &model_->decode_window(decoder, window, counts, decode_scratch);
            if (times) ++times->verify_steps;
        }
        if (wrows > 0) {
            StageTimer timer(times ? &times->sample : nullptr);
            std::size_t base = 0;
            for (std::size_t i = 0; i < b; ++i) {
                if (counts[i] == 0) continue;
                ActiveStream& a = active[i];
                const std::size_t len_a = decoder.row_length(i) - d;  // before the window
                if (matched[i] == 0) {
                    decoder.rollback_row(i, len_a);  // verify_all row: discard everything
                    base += d;
                    continue;
                }
                // Sequential accept chain over window positions: position j's
                // logits follow draft j; its candidate is draft j+1, except
                // the last position, which samples a free bonus token.
                std::size_t valid = 1;  // draft 0 was committed in pass A and stays fed
                for (std::size_t j = 0; j < d; ++j) {
                    const SpecDrafter::Draft* cand =
                        j + 1 < d ? &drafts[i * d + j + 1] : nullptr;
                    const SpecSample r = spec_sample_position(
                        *pred_w, base + j, num_events, *tokenizer_, config_.temperature,
                        config_.top_p, drafter, cand, drafts[i * d + j].event, a.rng,
                        sample_scratch);
                    a.t += r.s.interarrival;
                    a.stream.events.push_back({a.t, r.s.event});
                    finished[i] =
                        r.s.stop || a.stream.events.size() >= config_.max_stream_len ? 1 : 0;
                    if (r.accepted) {
                        valid = j + 2;
                        if (times) ++times->spec_accepted;
                    } else {
                        valid = j + 1;
                    }
                    if (finished[i] != 0) break;
                    if (!r.accepted) {
                        // Rejected (or the bonus position): this token is the
                        // new pending token; later drafts are dead context.
                        tokenizer_->encode_token(
                            r.s.event, r.s.interarrival, false,
                            std::span<float>(a.next_token.data(), d_token));
                        break;
                    }
                }
                if (finished[i] == 0) decoder.rollback_row(i, len_a + valid);
                base += d;
            }
        }

        // ---- Retire finished rows and compact the survivors.
        keep_rows.clear();
        std::size_t live = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (finished[i] != 0) {
                done.push_back(std::move(active[i].stream));
                continue;
            }
            keep_rows.push_back(i);
            if (live != i) active[live] = std::move(active[i]);
            ++live;
        }
        if (live != b) {
            StageTimer timer(times ? &times->compact : nullptr);
            decoder.compact(keep_rows);
            active.resize(live);
        }
    }
    return done;
}

// ---- SlotBatch: continuous-batching decode session -------------------------

struct Sampler::SlotBatch::Impl {
    struct Slot {
        trace::Stream stream;
        util::Rng rng{0};
        std::vector<float> next_token;
        double t = 0.0;
        std::uint64_t ticket = 0;
        std::size_t max_len = 0;
        double temperature = 1.0;
        double top_p = 1.0;
    };

    explicit Impl(const Sampler& s, std::size_t cap)
        : sampler(&s),
          capacity(cap),
          spec_w(s.spec_enabled() ? s.config_.spec_k - 1 : 1),
          decoder(s.model_->make_decoder(cap, s.config_.precision, spec_w)),
          scratch(s.model_->make_decode_scratch(cap * spec_w, s.config_.precision)),
          input_full({cap, s.tokenizer_->d_token()}),
          input(input_full),
          window_full({cap * spec_w, s.tokenizer_->d_token()}) {
        decoder.reset();  // start with every slot free
        slots.reserve(cap);
        keep_rows.reserve(cap);
        if (s.spec_enabled()) {
            drafts.resize(cap * spec_w);
            drafted.resize(cap);
            matched.resize(cap);
            finished.resize(cap);
        }
    }

    // Speculative variant of step(), taken when the sampler has spec_k > 1:
    // the same draft + verify + rollback round as generate_batch_spec, with
    // per-slot temperature / top_p / max_len (DESIGN.md §16).
    std::size_t step_spec(std::vector<Finished>& out);

    const Sampler* sampler;
    std::size_t capacity;
    std::size_t spec_w;  // verify window = spec_k - 1 (1 when not speculating)
    nn::TransformerDecoder decoder;
    CptGpt::DecodeScratch scratch;
    SampleScratch sample_scratch;
    nn::Tensor input_full;
    nn::Tensor input;
    nn::Tensor window_full;  // packed verify-window tokens (spec only)
    std::vector<SpecDrafter::Draft> drafts;
    std::vector<std::size_t> counts;
    std::vector<std::uint8_t> drafted;
    std::vector<std::uint8_t> matched;
    std::vector<std::uint8_t> finished;
    std::vector<cellular::EventId> ctx;
    SpecDrafter::Scratch draft_scratch;
    std::vector<Slot> slots;  // index == decoder row
    std::vector<std::size_t> keep_rows;
    StageTimes times;  // accumulated over every step(); see stage_times()
};

Sampler::SlotBatch::SlotBatch(const Sampler& sampler, std::size_t capacity)
    : impl_(std::make_unique<Impl>(sampler, capacity)) {
    CPT_CHECK_GT(capacity, std::size_t{0}, " SlotBatch: capacity must be > 0");
}

Sampler::SlotBatch::~SlotBatch() = default;
Sampler::SlotBatch::SlotBatch(SlotBatch&&) noexcept = default;
Sampler::SlotBatch& Sampler::SlotBatch::operator=(SlotBatch&&) noexcept = default;

std::size_t Sampler::SlotBatch::capacity() const { return impl_->capacity; }
std::size_t Sampler::SlotBatch::live() const { return impl_->slots.size(); }
std::size_t Sampler::SlotBatch::free_slots() const { return impl_->capacity - live(); }

std::size_t Sampler::SlotBatch::admissible_len() const {
    // Every decoder row owns an independent KV context starting at local
    // position 0 (nn/infer.hpp), so a fresh slot always has the full config
    // cap available — invariant in batch occupancy and residents' progress.
    return impl_->sampler->config_.max_stream_len;
}

void Sampler::SlotBatch::admit(util::Rng rng, std::string ue_id, std::uint64_t ticket,
                               AdmitParams params) {
    Impl& im = *impl_;
    CPT_CHECK_GT(free_slots(), std::size_t{0}, " SlotBatch::admit: no free slot");
    const std::size_t max_len = std::min(params.max_len, im.sampler->config_.max_stream_len);
    CPT_CHECK_GE(max_len, std::size_t{2}, " SlotBatch::admit: max_len must be >= 2");
    CPT_CHECK_LE(max_len, admissible_len(),
                 " SlotBatch::admit: stream cannot fit in the remaining context");
    if (params.top_p > 0.0) {
        CPT_CHECK_LE(params.top_p, 1.0, " SlotBatch::admit: top_p must be in (0, 1]");
    }
    im.decoder.admit(1);

    const Sampler& s = *im.sampler;
    const std::size_t d_token = s.tokenizer_->d_token();
    Impl::Slot slot;
    slot.rng = rng;
    slot.ticket = ticket;
    slot.max_len = max_len;
    slot.temperature = params.temperature > 0.0 ? params.temperature : s.config_.temperature;
    slot.top_p = params.top_p > 0.0 ? params.top_p : s.config_.top_p;
    slot.stream.ue_id = std::move(ue_id);
    slot.stream.device = s.config_.device;
    slot.stream.hour_of_day = s.config_.hour_of_day;
    // Bootstrap token (§4.5), identical to generate_batch: sampled initial
    // event, interarrival 0, stop 0.
    const auto first_event = static_cast<cellular::EventId>(
        slot.rng.categorical(std::span<const double>(s.initial_event_dist_)));
    slot.next_token.resize(d_token, 0.0f);
    s.tokenizer_->encode_token(first_event, 0.0, false,
                               std::span<float>(slot.next_token.data(), d_token));
    slot.stream.events.push_back({0.0, first_event});
    im.slots.push_back(std::move(slot));
}

std::size_t Sampler::SlotBatch::step(std::vector<Finished>& out) {
    Impl& im = *impl_;
    if (im.slots.empty()) return 0;
    if (im.sampler->spec_enabled()) return im.step_spec(out);
    const Sampler& s = *im.sampler;
    const std::size_t b = im.slots.size();
    const std::size_t d_token = s.tokenizer_->d_token();
    const std::size_t num_events = s.tokenizer_->num_event_types();
    const bool dist_head = s.model_->config().distribution_head;

    if (im.input.dim(0) != b) im.input = im.input_full.first_rows(b);
    {
        auto dst = im.input.data();
        for (std::size_t i = 0; i < b; ++i) {
            std::copy(im.slots[i].next_token.begin(), im.slots[i].next_token.end(),
                      dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
        }
    }
    const CptGpt::DecodeOutput* pred = nullptr;
    {
        StageTimer timer(&im.times.decode);
        pred = &s.model_->decode_step(im.decoder, im.input, im.scratch);
    }
    ++im.times.steps;

    im.keep_rows.clear();
    std::size_t finished = 0;
    std::size_t live = 0;
    {
        StageTimer timer(&im.times.sample);
        for (std::size_t i = 0; i < b; ++i) {
            Impl::Slot& slot = im.slots[i];
            const RowSample rs = sample_row(*pred, i, num_events, dist_head, *s.tokenizer_,
                                            slot.temperature, slot.top_p, slot.rng,
                                            im.sample_scratch);
            slot.t += rs.interarrival;
            slot.stream.events.push_back({slot.t, rs.event});
            if (rs.stop || slot.stream.events.size() >= slot.max_len) {
                out.push_back({std::move(slot.stream), slot.ticket, false});
                ++finished;
                continue;
            }
            s.tokenizer_->encode_token(rs.event, rs.interarrival, false,
                                       std::span<float>(slot.next_token.data(), d_token));
            im.keep_rows.push_back(i);
            if (live != i) im.slots[live] = std::move(slot);
            ++live;
        }
    }
    if (live != b) {
        StageTimer timer(&im.times.compact);
        im.decoder.compact(im.keep_rows);
        im.slots.resize(live);
    }
    return finished;
}

std::size_t Sampler::SlotBatch::Impl::step_spec(std::vector<Finished>& out) {
    const Sampler& s = *sampler;
    const SamplerConfig& cfg = s.config_;
    const std::size_t b = slots.size();
    const std::size_t d_token = s.tokenizer_->d_token();
    const std::size_t num_events = s.tokenizer_->num_event_types();
    const bool dist_head = s.model_->config().distribution_head;
    const std::size_t max_t = s.model_->config().max_seq_len;
    const std::size_t d = spec_w;
    const SpecDrafter& drafter = *cfg.drafter;

    // ---- Draft (same eligibility as generate_batch_spec, per-slot knobs).
    {
        StageTimer timer(&times.draft);
        for (std::size_t i = 0; i < b; ++i) {
            Slot& slot = slots[i];
            const std::size_t events = slot.stream.events.size();
            const bool eligible =
                slot.temperature > 0.0 && events + 1 < slot.max_len && events + d <= max_t;
            drafted[i] = eligible ? 1 : 0;
            if (!eligible) continue;
            if (cfg.spec_force_reject) {
                util::Rng throwaway(0x5eed);
                draft_row(drafter, slot.stream, d, throwaway, draft_scratch, ctx,
                          &drafts[i * d]);
            } else {
                draft_row(drafter, slot.stream, d, slot.rng, draft_scratch, ctx,
                          &drafts[i * d]);
            }
            times.spec_proposed += d;
        }
    }

    // ---- Pass A.
    if (input.dim(0) != b) input = input_full.first_rows(b);
    {
        auto dst = input.data();
        for (std::size_t i = 0; i < b; ++i) {
            std::copy(slots[i].next_token.begin(), slots[i].next_token.end(),
                      dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
        }
    }
    const CptGpt::DecodeOutput* pred = nullptr;
    {
        StageTimer timer(&times.decode);
        pred = &s.model_->decode_step(decoder, input, scratch);
    }
    ++times.steps;

    {
        StageTimer timer(&times.sample);
        for (std::size_t i = 0; i < b; ++i) {
            Slot& slot = slots[i];
            SpecSample r;
            if (drafted[i] != 0 && !cfg.spec_force_reject) {
                r = spec_sample_position(*pred, i, num_events, *s.tokenizer_,
                                         slot.temperature, slot.top_p, drafter,
                                         &drafts[i * d], slot.stream.events.back().type,
                                         slot.rng, sample_scratch);
            } else {
                r.s = sample_row(*pred, i, num_events, dist_head, *s.tokenizer_,
                                 slot.temperature, slot.top_p, slot.rng, sample_scratch);
            }
            slot.t += r.s.interarrival;
            slot.stream.events.push_back({slot.t, r.s.event});
            finished[i] = r.s.stop || slot.stream.events.size() >= slot.max_len ? 1 : 0;
            matched[i] = r.accepted && finished[i] == 0 ? 1 : 0;
            if (matched[i] != 0) ++times.spec_accepted;
            if (finished[i] == 0) {
                s.tokenizer_->encode_token(r.s.event, r.s.interarrival, false,
                                           std::span<float>(slot.next_token.data(), d_token));
            }
        }
    }

    // ---- Pass B.
    counts.assign(b, 0);
    std::size_t wrows = 0;
    for (std::size_t i = 0; i < b; ++i) {
        const bool verify = matched[i] != 0 ||
                            (cfg.spec_verify_all && drafted[i] != 0 && finished[i] == 0);
        if (verify) {
            counts[i] = d;
            wrows += d;
        }
    }
    const CptGpt::DecodeOutput* pred_w = nullptr;
    if (wrows > 0) {
        StageTimer timer(&times.verify);
        nn::Tensor window = window_full.first_rows(wrows);
        auto dst = window.data();
        std::size_t wb = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (counts[i] == 0) continue;
            for (std::size_t j = 0; j < d; ++j) {
                const SpecDrafter::Draft& c = drafts[i * d + j];
                s.tokenizer_->encode_token(
                    c.event,
                    s.tokenizer_->unscale_interarrival(static_cast<double>(c.scaled_ia)),
                    false, dst.subspan((wb + j) * d_token, d_token));
            }
            wb += d;
        }
        pred_w = &s.model_->decode_window(decoder, window, counts, scratch);
        ++times.verify_steps;
    }
    if (wrows > 0) {
        StageTimer timer(&times.sample);
        std::size_t base = 0;
        for (std::size_t i = 0; i < b; ++i) {
            if (counts[i] == 0) continue;
            Slot& slot = slots[i];
            const std::size_t len_a = decoder.row_length(i) - d;  // before the window
            if (matched[i] == 0) {
                decoder.rollback_row(i, len_a);  // verify_all row: discard everything
                base += d;
                continue;
            }
            std::size_t valid = 1;  // draft 0 was committed in pass A and stays fed
            for (std::size_t j = 0; j < d; ++j) {
                const SpecDrafter::Draft* cand = j + 1 < d ? &drafts[i * d + j + 1] : nullptr;
                const SpecSample r = spec_sample_position(
                    *pred_w, base + j, num_events, *s.tokenizer_, slot.temperature,
                    slot.top_p, drafter, cand, drafts[i * d + j].event, slot.rng,
                    sample_scratch);
                slot.t += r.s.interarrival;
                slot.stream.events.push_back({slot.t, r.s.event});
                finished[i] = r.s.stop || slot.stream.events.size() >= slot.max_len ? 1 : 0;
                if (r.accepted) {
                    valid = j + 2;
                    ++times.spec_accepted;
                } else {
                    valid = j + 1;
                }
                if (finished[i] != 0) break;
                if (!r.accepted) {
                    s.tokenizer_->encode_token(
                        r.s.event, r.s.interarrival, false,
                        std::span<float>(slot.next_token.data(), d_token));
                    break;
                }
            }
            if (finished[i] == 0) decoder.rollback_row(i, len_a + valid);
            base += d;
        }
    }

    // ---- Retire finished streams and compact the survivors.
    keep_rows.clear();
    std::size_t done = 0;
    std::size_t live = 0;
    for (std::size_t i = 0; i < b; ++i) {
        Slot& slot = slots[i];
        if (finished[i] != 0) {
            out.push_back({std::move(slot.stream), slot.ticket, false});
            ++done;
            continue;
        }
        keep_rows.push_back(i);
        if (live != i) slots[live] = std::move(slot);
        ++live;
    }
    if (live != b) {
        StageTimer timer(&times.compact);
        decoder.compact(keep_rows);
        slots.resize(live);
    }
    return done;
}

const Sampler::StageTimes& Sampler::SlotBatch::stage_times() const { return impl_->times; }

std::size_t Sampler::SlotBatch::evict(const std::function<bool(std::uint64_t)>& pred,
                                      std::vector<Finished>& out) {
    Impl& im = *impl_;
    im.keep_rows.clear();
    std::size_t live = 0;
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < im.slots.size(); ++i) {
        Impl::Slot& slot = im.slots[i];
        if (pred(slot.ticket)) {
            out.push_back({std::move(slot.stream), slot.ticket, true});
            ++dropped;
            continue;
        }
        im.keep_rows.push_back(i);
        if (live != i) im.slots[live] = std::move(slot);
        ++live;
    }
    if (dropped > 0) {
        im.decoder.compact(im.keep_rows);
        im.slots.resize(live);
    }
    return dropped;
}

trace::Stream Sampler::sample_stream(const std::string& ue_id, util::Rng& rng) const {
    util::Rng forked = rng.fork(0);
    auto streams = generate_batch(std::span(&forked, 1), "tmp", 0);
    streams.front().ue_id = ue_id;
    return streams.front();
}

std::size_t Sampler::generate_impl(std::size_t n, util::Rng& rng, const std::string& ue_prefix,
                                   const std::function<void(trace::Stream&&)>& sink) const {
    std::size_t kept = 0;
    std::size_t serial = 0;
    while (kept < n) {
        const std::size_t want = n - kept;
        // One round is several decode batches so multiple workers can run
        // whole batches concurrently. Round size depends only on `want`, never
        // on the thread count, and every stream's RNG is forked here —
        // serially, salted by absolute serial index — so stream content is
        // invariant to both the round structure and CPT_THREADS.
        const std::size_t round = std::min(4 * config_.batch, want + want / 8 + 1);
        std::vector<util::Rng> rngs;
        rngs.reserve(round);
        for (std::size_t i = 0; i < round; ++i) rngs.push_back(rng.fork(serial + i));

        const std::size_t chunks = (round + config_.batch - 1) / config_.batch;
        std::vector<std::vector<trace::Stream>> parts(chunks);
        util::global_pool().parallel_for(chunks, 1, [&](std::size_t c0, std::size_t c1) {
            for (std::size_t c = c0; c < c1; ++c) {
                const std::size_t b0 = c * config_.batch;
                const std::size_t b1 = std::min(b0 + config_.batch, round);
                parts[c] = generate_batch(std::span(rngs).subspan(b0, b1 - b0), ue_prefix,
                                          serial + b0);
            }
        });
        serial += round;
        for (auto& part : parts) {
            for (auto& s : part) {
                if (s.length() >= 2 && kept < n) {
                    sink(std::move(s));
                    ++kept;
                }
            }
        }
        if (kept < n && serial > 20 * n + 100) {
            // Degenerate model: nearly all draws are shorter than 2 events.
            // Give up with a diagnostic instead of looping forever (documented
            // in sampler.hpp).
            util::warnf("Sampler::generate gave up after %zu draws with only "
                        "%zu/%zu usable streams (model emits stop immediately?)",
                        serial, kept, n);
            break;
        }
    }
    return kept;
}

trace::Dataset Sampler::generate(std::size_t n, util::Rng& rng,
                                 const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = tokenizer_->generation();
    ds.streams.reserve(n);
    generate_impl(n, rng, ue_prefix,
                  [&](trace::Stream&& s) { ds.streams.push_back(std::move(s)); });
    return ds;
}

std::size_t Sampler::generate_to(trace::ColumnarWriter& writer, std::size_t n, util::Rng& rng,
                                 const std::string& ue_prefix) const {
    CPT_CHECK(writer.generation() == tokenizer_->generation(),
              "Sampler::generate_to: writer generation does not match the model's generation");
    return generate_impl(n, rng, ue_prefix,
                         [&](trace::Stream&& s) { writer.append(std::move(s)); });
}

}  // namespace cpt::core
