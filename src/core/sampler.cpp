#include "sampler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "trace/columnar.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {

Sampler::Sampler(const CptGpt& model, const Tokenizer& tokenizer,
                 std::vector<double> initial_event_dist, SamplerConfig config)
    : model_(&model),
      tokenizer_(&tokenizer),
      initial_event_dist_(std::move(initial_event_dist)),
      config_(config) {
    CPT_CHECK_EQ(initial_event_dist_.size(), tokenizer.num_event_types(),
                 " Sampler: initial distribution size vs event vocabulary");
    CPT_CHECK_FINITE(initial_event_dist_, "Sampler: initial distribution");
    double total = 0.0;
    for (double p : initial_event_dist_) total += p;
    CPT_CHECK_GT(total, 0.0, " Sampler: degenerate initial distribution");
    CPT_CHECK(config_.top_p > 0.0 && config_.top_p <= 1.0, "Sampler: top_p must be in (0, 1], got ",
              config_.top_p);
    if (config_.batch == 0) config_.batch = 1;
    if (config_.precision == nn::Precision::kInt8W8A32) {
        CPT_CHECK(model.has_quantized_weights(),
                  "Sampler: precision int8_w8a32 requires CptGpt::quantize_weights() (or a "
                  "quantized checkpoint) before constructing the sampler");
    }
    config_.max_stream_len = std::min(config_.max_stream_len, model.config().max_seq_len);
    CPT_CHECK_GE(config_.max_stream_len, std::size_t{2},
                 " Sampler: max_stream_len must be >= 2 (after clamping to max_seq_len)");
}

namespace {

// Reusable buffers for sample_logits, so the per-token sampling loop does
// not allocate in steady state.
struct SampleScratch {
    std::vector<double> probs;
    std::vector<std::size_t> order;
};

// Samples from logits with temperature and nucleus (top-p) truncation.
std::size_t sample_logits(std::span<const float> logits, double temperature, double top_p,
                          util::Rng& rng, SampleScratch& scratch) {
    auto& probs = scratch.probs;
    probs.resize(logits.size());
    double mx = -1e30;
    for (float l : logits) mx = std::max(mx, static_cast<double>(l));
    double total = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        probs[i] = std::exp((static_cast<double>(logits[i]) - mx) / std::max(temperature, 1e-3));
        total += probs[i];
    }
    for (double& p : probs) p /= total;
    if (top_p < 1.0) {
        // Keep the smallest prefix (by descending probability) whose mass
        // reaches top_p; zero out the tail.
        auto& order = scratch.order;
        order.resize(probs.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
        double mass = 0.0;
        std::size_t keep = 0;
        while (keep < order.size() && mass < top_p) {
            mass += probs[order[keep]];
            ++keep;
        }
        for (std::size_t i = keep; i < order.size(); ++i) probs[order[i]] = 0.0;
    }
    return rng.categorical(std::span<const double>(probs));
}

// One stream's next (event, interarrival, stop) draw from row `i` of a
// decode-step prediction. Factored out so generate_batch and SlotBatch
// consume randomness in exactly the same order — the byte-identity between
// the two is a documented contract (tests/serve_test.cpp).
struct RowSample {
    cellular::EventId event;
    double interarrival;
    bool stop;
};

RowSample sample_row(const CptGpt::DecodeOutput& pred, std::size_t i, std::size_t num_events,
                     bool dist_head, const Tokenizer& tokenizer, double temperature,
                     double top_p, util::Rng& rng, SampleScratch& scratch) {
    RowSample out;
    const auto ev_logits = pred.event_logits.data().subspan(i * num_events, num_events);
    out.event = static_cast<cellular::EventId>(
        sample_logits(ev_logits, temperature, top_p, rng, scratch));

    const float mu = pred.ia_mu[i];
    double scaled;
    if (dist_head) {
        const double sigma = std::exp(0.5 * static_cast<double>(pred.ia_logvar[i]));
        scaled = rng.normal(static_cast<double>(mu), sigma);
    } else {
        scaled = static_cast<double>(mu);
    }
    out.interarrival = tokenizer.unscale_interarrival(scaled);

    const auto stop_logits = pred.stop_logits.data().subspan(i * 2, 2);
    out.stop = sample_logits(stop_logits, temperature, top_p, rng, scratch) == 1;
    return out;
}

// Accumulates wall-clock into `*slot` on destruction; no-op when `slot` is
// null, so untimed generate_batch calls never touch the clock.
class StageTimer {
public:
    explicit StageTimer(double* slot)
        : slot_(slot), t0_(slot ? std::chrono::steady_clock::now()
                                : std::chrono::steady_clock::time_point{}) {}
    ~StageTimer() {
        if (slot_) {
            *slot_ += std::chrono::duration<double>(std::chrono::steady_clock::now() - t0_)
                          .count();
        }
    }
    StageTimer(const StageTimer&) = delete;
    StageTimer& operator=(const StageTimer&) = delete;

private:
    double* slot_;
    std::chrono::steady_clock::time_point t0_;
};

}  // namespace

std::vector<trace::Stream> Sampler::generate_batch(std::span<util::Rng> rngs,
                                                   const std::string& ue_prefix,
                                                   std::size_t first_serial,
                                                   StageTimes* times) const {
    const std::size_t batch = rngs.size();
    const std::size_t d_token = tokenizer_->d_token();
    const std::size_t num_events = tokenizer_->num_event_types();
    const bool dist_head = model_->config().distribution_head;

    struct Active {
        trace::Stream stream;
        util::Rng rng;
        std::vector<float> next_token;  // the token to feed on the next step
        double t = 0.0;
    };
    std::vector<Active> active;
    active.reserve(batch);
    {
        StageTimer timer(times ? &times->bootstrap : nullptr);
        for (std::size_t i = 0; i < batch; ++i) {
            Active a{.stream = {}, .rng = rngs[i], .next_token = {}, .t = 0.0};
            char id[64];
            std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), first_serial + i);
            a.stream.ue_id = id;
            a.stream.device = config_.device;
            a.stream.hour_of_day = config_.hour_of_day;
            // Bootstrap token (§4.5): sampled initial event, interarrival 0,
            // stop 0.
            const auto first_event = static_cast<cellular::EventId>(
                a.rng.categorical(std::span<const double>(initial_event_dist_)));
            a.next_token.resize(d_token, 0.0f);
            tokenizer_->encode_token(first_event, 0.0, false,
                                     std::span<float>(a.next_token.data(), d_token));
            a.stream.events.push_back({0.0, first_event});
            active.push_back(std::move(a));
        }
    }

    // Incremental decoding: each step feeds one new token per active stream
    // into the KV-cached decoder; finished streams are compacted away.
    // Everything on the per-step path — the input tensor, the decoder and
    // head scratch, and the sampling buffers — is allocated once up front,
    // so the steady-state loop is allocation-free outside of stream output.
    nn::TransformerDecoder decoder = model_->make_decoder(batch, config_.precision);
    CptGpt::DecodeScratch decode_scratch = model_->make_decode_scratch(batch, config_.precision);
    SampleScratch sample_scratch;
    nn::Tensor input_full({batch, d_token});
    nn::Tensor input = input_full;
    std::vector<std::size_t> keep_rows;
    keep_rows.reserve(batch);
    std::vector<trace::Stream> done;
    done.reserve(batch);
    while (!active.empty() && decoder.length() + 1 < config_.max_stream_len) {
        const std::size_t b = active.size();
        if (input.dim(0) != b) input = input_full.first_rows(b);
        {
            auto dst = input.data();
            for (std::size_t i = 0; i < b; ++i) {
                std::copy(active[i].next_token.begin(), active[i].next_token.end(),
                          dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
            }
        }
        const CptGpt::DecodeOutput* pred = nullptr;
        {
            StageTimer timer(times ? &times->decode : nullptr);
            pred = &model_->decode_step(decoder, input, decode_scratch);
        }
        if (times) ++times->steps;

        keep_rows.clear();
        std::size_t live = 0;  // rows of `active` kept, compacted in place
        {
            StageTimer timer(times ? &times->sample : nullptr);
            for (std::size_t i = 0; i < b; ++i) {
                Active& a = active[i];
                const RowSample s = sample_row(*pred, i, num_events, dist_head, *tokenizer_,
                                               config_.temperature, config_.top_p, a.rng,
                                               sample_scratch);
                a.t += s.interarrival;
                a.stream.events.push_back({a.t, s.event});
                if (s.stop || a.stream.events.size() >= config_.max_stream_len) {
                    done.push_back(std::move(a.stream));
                    continue;
                }
                tokenizer_->encode_token(s.event, s.interarrival, false,
                                         std::span<float>(a.next_token.data(), d_token));
                keep_rows.push_back(i);
                if (live != i) active[live] = std::move(a);
                ++live;
            }
        }
        if (live != b) {
            StageTimer timer(times ? &times->compact : nullptr);
            decoder.compact(keep_rows);
            active.resize(live);
        }
    }
    for (auto& a : active) done.push_back(std::move(a.stream));  // hit the length cap
    return done;
}

// ---- SlotBatch: continuous-batching decode session -------------------------

struct Sampler::SlotBatch::Impl {
    struct Slot {
        trace::Stream stream;
        util::Rng rng{0};
        std::vector<float> next_token;
        double t = 0.0;
        std::uint64_t ticket = 0;
        std::size_t max_len = 0;
        double temperature = 1.0;
        double top_p = 1.0;
    };

    explicit Impl(const Sampler& s, std::size_t cap)
        : sampler(&s),
          capacity(cap),
          decoder(s.model_->make_decoder(cap, s.config_.precision)),
          scratch(s.model_->make_decode_scratch(cap, s.config_.precision)),
          input_full({cap, s.tokenizer_->d_token()}),
          input(input_full) {
        decoder.reset();  // start with every slot free
        slots.reserve(cap);
        keep_rows.reserve(cap);
    }

    const Sampler* sampler;
    std::size_t capacity;
    nn::TransformerDecoder decoder;
    CptGpt::DecodeScratch scratch;
    SampleScratch sample_scratch;
    nn::Tensor input_full;
    nn::Tensor input;
    std::vector<Slot> slots;  // index == decoder row
    std::vector<std::size_t> keep_rows;
    StageTimes times;  // accumulated over every step(); see stage_times()
};

Sampler::SlotBatch::SlotBatch(const Sampler& sampler, std::size_t capacity)
    : impl_(std::make_unique<Impl>(sampler, capacity)) {
    CPT_CHECK_GT(capacity, std::size_t{0}, " SlotBatch: capacity must be > 0");
}

Sampler::SlotBatch::~SlotBatch() = default;
Sampler::SlotBatch::SlotBatch(SlotBatch&&) noexcept = default;
Sampler::SlotBatch& Sampler::SlotBatch::operator=(SlotBatch&&) noexcept = default;

std::size_t Sampler::SlotBatch::capacity() const { return impl_->capacity; }
std::size_t Sampler::SlotBatch::live() const { return impl_->slots.size(); }
std::size_t Sampler::SlotBatch::free_slots() const { return impl_->capacity - live(); }

std::size_t Sampler::SlotBatch::admissible_len() const {
    const std::size_t cap = impl_->sampler->config_.max_stream_len;
    if (impl_->slots.empty()) return cap;  // admit() rewinds the context first
    // A stream of length L admitted at position s consumes positions
    // s .. s+L-2, so it fits iff L <= max_seq_len - s + 1.
    const std::size_t max_t = impl_->sampler->model_->config().max_seq_len;
    const std::size_t s = impl_->decoder.length();
    return std::min(cap, max_t - s + 1);
}

void Sampler::SlotBatch::admit(util::Rng rng, std::string ue_id, std::uint64_t ticket,
                               AdmitParams params) {
    Impl& im = *impl_;
    CPT_CHECK_GT(free_slots(), std::size_t{0}, " SlotBatch::admit: no free slot");
    if (im.slots.empty() && im.decoder.length() > 0) im.decoder.reset();
    const std::size_t max_len = std::min(params.max_len, im.sampler->config_.max_stream_len);
    CPT_CHECK_GE(max_len, std::size_t{2}, " SlotBatch::admit: max_len must be >= 2");
    CPT_CHECK_LE(max_len, admissible_len(),
                 " SlotBatch::admit: stream cannot fit in the remaining context");
    if (params.top_p > 0.0) {
        CPT_CHECK_LE(params.top_p, 1.0, " SlotBatch::admit: top_p must be in (0, 1]");
    }
    im.decoder.admit(1);

    const Sampler& s = *im.sampler;
    const std::size_t d_token = s.tokenizer_->d_token();
    Impl::Slot slot;
    slot.rng = rng;
    slot.ticket = ticket;
    slot.max_len = max_len;
    slot.temperature = params.temperature > 0.0 ? params.temperature : s.config_.temperature;
    slot.top_p = params.top_p > 0.0 ? params.top_p : s.config_.top_p;
    slot.stream.ue_id = std::move(ue_id);
    slot.stream.device = s.config_.device;
    slot.stream.hour_of_day = s.config_.hour_of_day;
    // Bootstrap token (§4.5), identical to generate_batch: sampled initial
    // event, interarrival 0, stop 0.
    const auto first_event = static_cast<cellular::EventId>(
        slot.rng.categorical(std::span<const double>(s.initial_event_dist_)));
    slot.next_token.resize(d_token, 0.0f);
    s.tokenizer_->encode_token(first_event, 0.0, false,
                               std::span<float>(slot.next_token.data(), d_token));
    slot.stream.events.push_back({0.0, first_event});
    im.slots.push_back(std::move(slot));
}

std::size_t Sampler::SlotBatch::step(std::vector<Finished>& out) {
    Impl& im = *impl_;
    if (im.slots.empty()) return 0;
    const Sampler& s = *im.sampler;
    const std::size_t b = im.slots.size();
    const std::size_t d_token = s.tokenizer_->d_token();
    const std::size_t num_events = s.tokenizer_->num_event_types();
    const bool dist_head = s.model_->config().distribution_head;

    if (im.input.dim(0) != b) im.input = im.input_full.first_rows(b);
    {
        auto dst = im.input.data();
        for (std::size_t i = 0; i < b; ++i) {
            std::copy(im.slots[i].next_token.begin(), im.slots[i].next_token.end(),
                      dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
        }
    }
    const CptGpt::DecodeOutput* pred = nullptr;
    {
        StageTimer timer(&im.times.decode);
        pred = &s.model_->decode_step(im.decoder, im.input, im.scratch);
    }
    ++im.times.steps;

    im.keep_rows.clear();
    std::size_t finished = 0;
    std::size_t live = 0;
    {
        StageTimer timer(&im.times.sample);
        for (std::size_t i = 0; i < b; ++i) {
            Impl::Slot& slot = im.slots[i];
            const RowSample rs = sample_row(*pred, i, num_events, dist_head, *s.tokenizer_,
                                            slot.temperature, slot.top_p, slot.rng,
                                            im.sample_scratch);
            slot.t += rs.interarrival;
            slot.stream.events.push_back({slot.t, rs.event});
            if (rs.stop || slot.stream.events.size() >= slot.max_len) {
                out.push_back({std::move(slot.stream), slot.ticket, false});
                ++finished;
                continue;
            }
            s.tokenizer_->encode_token(rs.event, rs.interarrival, false,
                                       std::span<float>(slot.next_token.data(), d_token));
            im.keep_rows.push_back(i);
            if (live != i) im.slots[live] = std::move(slot);
            ++live;
        }
    }
    if (live != b) {
        StageTimer timer(&im.times.compact);
        im.decoder.compact(im.keep_rows);
        im.slots.resize(live);
    }
    return finished;
}

const Sampler::StageTimes& Sampler::SlotBatch::stage_times() const { return impl_->times; }

std::size_t Sampler::SlotBatch::evict(const std::function<bool(std::uint64_t)>& pred,
                                      std::vector<Finished>& out) {
    Impl& im = *impl_;
    im.keep_rows.clear();
    std::size_t live = 0;
    std::size_t dropped = 0;
    for (std::size_t i = 0; i < im.slots.size(); ++i) {
        Impl::Slot& slot = im.slots[i];
        if (pred(slot.ticket)) {
            out.push_back({std::move(slot.stream), slot.ticket, true});
            ++dropped;
            continue;
        }
        im.keep_rows.push_back(i);
        if (live != i) im.slots[live] = std::move(slot);
        ++live;
    }
    if (dropped > 0) {
        im.decoder.compact(im.keep_rows);
        im.slots.resize(live);
    }
    return dropped;
}

trace::Stream Sampler::sample_stream(const std::string& ue_id, util::Rng& rng) const {
    util::Rng forked = rng.fork(0);
    auto streams = generate_batch(std::span(&forked, 1), "tmp", 0);
    streams.front().ue_id = ue_id;
    return streams.front();
}

std::size_t Sampler::generate_impl(std::size_t n, util::Rng& rng, const std::string& ue_prefix,
                                   const std::function<void(trace::Stream&&)>& sink) const {
    std::size_t kept = 0;
    std::size_t serial = 0;
    while (kept < n) {
        const std::size_t want = n - kept;
        // One round is several decode batches so multiple workers can run
        // whole batches concurrently. Round size depends only on `want`, never
        // on the thread count, and every stream's RNG is forked here —
        // serially, salted by absolute serial index — so stream content is
        // invariant to both the round structure and CPT_THREADS.
        const std::size_t round = std::min(4 * config_.batch, want + want / 8 + 1);
        std::vector<util::Rng> rngs;
        rngs.reserve(round);
        for (std::size_t i = 0; i < round; ++i) rngs.push_back(rng.fork(serial + i));

        const std::size_t chunks = (round + config_.batch - 1) / config_.batch;
        std::vector<std::vector<trace::Stream>> parts(chunks);
        util::global_pool().parallel_for(chunks, 1, [&](std::size_t c0, std::size_t c1) {
            for (std::size_t c = c0; c < c1; ++c) {
                const std::size_t b0 = c * config_.batch;
                const std::size_t b1 = std::min(b0 + config_.batch, round);
                parts[c] = generate_batch(std::span(rngs).subspan(b0, b1 - b0), ue_prefix,
                                          serial + b0);
            }
        });
        serial += round;
        for (auto& part : parts) {
            for (auto& s : part) {
                if (s.length() >= 2 && kept < n) {
                    sink(std::move(s));
                    ++kept;
                }
            }
        }
        if (kept < n && serial > 20 * n + 100) {
            // Degenerate model: nearly all draws are shorter than 2 events.
            // Give up with a diagnostic instead of looping forever (documented
            // in sampler.hpp).
            util::warnf("Sampler::generate gave up after %zu draws with only "
                        "%zu/%zu usable streams (model emits stop immediately?)",
                        serial, kept, n);
            break;
        }
    }
    return kept;
}

trace::Dataset Sampler::generate(std::size_t n, util::Rng& rng,
                                 const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = tokenizer_->generation();
    ds.streams.reserve(n);
    generate_impl(n, rng, ue_prefix,
                  [&](trace::Stream&& s) { ds.streams.push_back(std::move(s)); });
    return ds;
}

std::size_t Sampler::generate_to(trace::ColumnarWriter& writer, std::size_t n, util::Rng& rng,
                                 const std::string& ue_prefix) const {
    CPT_CHECK(writer.generation() == tokenizer_->generation(),
              "Sampler::generate_to: writer generation does not match the model's generation");
    return generate_impl(n, rng, ue_prefix,
                         [&](trace::Stream&& s) { writer.append(std::move(s)); });
}

}  // namespace cpt::core
