#include "sampler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {

Sampler::Sampler(const CptGpt& model, const Tokenizer& tokenizer,
                 std::vector<double> initial_event_dist, SamplerConfig config)
    : model_(&model),
      tokenizer_(&tokenizer),
      initial_event_dist_(std::move(initial_event_dist)),
      config_(config) {
    CPT_CHECK_EQ(initial_event_dist_.size(), tokenizer.num_event_types(),
                 " Sampler: initial distribution size vs event vocabulary");
    CPT_CHECK_FINITE(initial_event_dist_, "Sampler: initial distribution");
    double total = 0.0;
    for (double p : initial_event_dist_) total += p;
    CPT_CHECK_GT(total, 0.0, " Sampler: degenerate initial distribution");
    CPT_CHECK(config_.top_p > 0.0 && config_.top_p <= 1.0, "Sampler: top_p must be in (0, 1], got ",
              config_.top_p);
    if (config_.batch == 0) config_.batch = 1;
    config_.max_stream_len = std::min(config_.max_stream_len, model.config().max_seq_len);
    CPT_CHECK_GE(config_.max_stream_len, std::size_t{2},
                 " Sampler: max_stream_len must be >= 2 (after clamping to max_seq_len)");
}

namespace {

// Reusable buffers for sample_logits, so the per-token sampling loop does
// not allocate in steady state.
struct SampleScratch {
    std::vector<double> probs;
    std::vector<std::size_t> order;
};

// Samples from logits with temperature and nucleus (top-p) truncation.
std::size_t sample_logits(std::span<const float> logits, double temperature, double top_p,
                          util::Rng& rng, SampleScratch& scratch) {
    auto& probs = scratch.probs;
    probs.resize(logits.size());
    double mx = -1e30;
    for (float l : logits) mx = std::max(mx, static_cast<double>(l));
    double total = 0.0;
    for (std::size_t i = 0; i < logits.size(); ++i) {
        probs[i] = std::exp((static_cast<double>(logits[i]) - mx) / std::max(temperature, 1e-3));
        total += probs[i];
    }
    for (double& p : probs) p /= total;
    if (top_p < 1.0) {
        // Keep the smallest prefix (by descending probability) whose mass
        // reaches top_p; zero out the tail.
        auto& order = scratch.order;
        order.resize(probs.size());
        std::iota(order.begin(), order.end(), 0);
        std::sort(order.begin(), order.end(),
                  [&](std::size_t a, std::size_t b) { return probs[a] > probs[b]; });
        double mass = 0.0;
        std::size_t keep = 0;
        while (keep < order.size() && mass < top_p) {
            mass += probs[order[keep]];
            ++keep;
        }
        for (std::size_t i = keep; i < order.size(); ++i) probs[order[i]] = 0.0;
    }
    return rng.categorical(std::span<const double>(probs));
}

}  // namespace

std::vector<trace::Stream> Sampler::generate_batch(std::span<util::Rng> rngs,
                                                   const std::string& ue_prefix,
                                                   std::size_t first_serial) const {
    const std::size_t batch = rngs.size();
    const std::size_t d_token = tokenizer_->d_token();
    const std::size_t num_events = tokenizer_->num_event_types();
    const bool dist_head = model_->config().distribution_head;

    struct Active {
        trace::Stream stream;
        util::Rng rng;
        std::vector<float> next_token;  // the token to feed on the next step
        double t = 0.0;
    };
    std::vector<Active> active;
    active.reserve(batch);
    for (std::size_t i = 0; i < batch; ++i) {
        Active a{.stream = {}, .rng = rngs[i], .next_token = {}, .t = 0.0};
        char id[64];
        std::snprintf(id, sizeof(id), "%s-%06zu", ue_prefix.c_str(), first_serial + i);
        a.stream.ue_id = id;
        a.stream.device = config_.device;
        a.stream.hour_of_day = config_.hour_of_day;
        // Bootstrap token (§4.5): sampled initial event, interarrival 0, stop 0.
        const auto first_event = static_cast<cellular::EventId>(
            a.rng.categorical(std::span<const double>(initial_event_dist_)));
        a.next_token.resize(d_token, 0.0f);
        tokenizer_->encode_token(first_event, 0.0, false,
                                 std::span<float>(a.next_token.data(), d_token));
        a.stream.events.push_back({0.0, first_event});
        active.push_back(std::move(a));
    }

    // Incremental decoding: each step feeds one new token per active stream
    // into the KV-cached decoder; finished streams are compacted away.
    // Everything on the per-step path — the input tensor, the decoder and
    // head scratch, and the sampling buffers — is allocated once up front,
    // so the steady-state loop is allocation-free outside of stream output.
    nn::TransformerDecoder decoder = model_->make_decoder(batch);
    CptGpt::DecodeScratch decode_scratch = model_->make_decode_scratch(batch);
    SampleScratch sample_scratch;
    nn::Tensor input_full({batch, d_token});
    nn::Tensor input = input_full;
    std::vector<std::size_t> keep_rows;
    keep_rows.reserve(batch);
    std::vector<trace::Stream> done;
    done.reserve(batch);
    while (!active.empty() && decoder.length() + 1 < config_.max_stream_len) {
        const std::size_t b = active.size();
        if (input.dim(0) != b) input = input_full.first_rows(b);
        {
            auto dst = input.data();
            for (std::size_t i = 0; i < b; ++i) {
                std::copy(active[i].next_token.begin(), active[i].next_token.end(),
                          dst.begin() + static_cast<std::ptrdiff_t>(i * d_token));
            }
        }
        const auto& pred = model_->decode_step(decoder, input, decode_scratch);

        keep_rows.clear();
        std::size_t live = 0;  // rows of `active` kept, compacted in place
        for (std::size_t i = 0; i < b; ++i) {
            Active& a = active[i];
            const auto ev_logits = pred.event_logits.data().subspan(i * num_events, num_events);
            const auto event = static_cast<cellular::EventId>(sample_logits(
                ev_logits, config_.temperature, config_.top_p, a.rng, sample_scratch));

            const float mu = pred.ia_mu[i];
            double scaled;
            if (dist_head) {
                const double sigma = std::exp(0.5 * static_cast<double>(pred.ia_logvar[i]));
                scaled = a.rng.normal(static_cast<double>(mu), sigma);
            } else {
                scaled = static_cast<double>(mu);
            }
            const double interarrival = tokenizer_->unscale_interarrival(scaled);
            a.t += interarrival;

            const auto stop_logits = pred.stop_logits.data().subspan(i * 2, 2);
            const bool stop = sample_logits(stop_logits, config_.temperature, config_.top_p,
                                            a.rng, sample_scratch) == 1;

            a.stream.events.push_back({a.t, event});
            if (stop || a.stream.events.size() >= config_.max_stream_len) {
                done.push_back(std::move(a.stream));
                continue;
            }
            tokenizer_->encode_token(event, interarrival, false,
                                     std::span<float>(a.next_token.data(), d_token));
            keep_rows.push_back(i);
            if (live != i) active[live] = std::move(a);
            ++live;
        }
        if (live != b) {
            decoder.compact(keep_rows);
            active.resize(live);
        }
    }
    for (auto& a : active) done.push_back(std::move(a.stream));  // hit the length cap
    return done;
}

trace::Stream Sampler::sample_stream(const std::string& ue_id, util::Rng& rng) const {
    util::Rng forked = rng.fork(0);
    auto streams = generate_batch(std::span(&forked, 1), "tmp", 0);
    streams.front().ue_id = ue_id;
    return streams.front();
}

trace::Dataset Sampler::generate(std::size_t n, util::Rng& rng,
                                 const std::string& ue_prefix) const {
    trace::Dataset ds;
    ds.generation = tokenizer_->generation();
    std::size_t serial = 0;
    while (ds.streams.size() < n) {
        const std::size_t want = n - ds.streams.size();
        // One round is several decode batches so multiple workers can run
        // whole batches concurrently. Round size depends only on `want`, never
        // on the thread count, and every stream's RNG is forked here —
        // serially, salted by absolute serial index — so stream content is
        // invariant to both the round structure and CPT_THREADS.
        const std::size_t round = std::min(4 * config_.batch, want + want / 8 + 1);
        std::vector<util::Rng> rngs;
        rngs.reserve(round);
        for (std::size_t i = 0; i < round; ++i) rngs.push_back(rng.fork(serial + i));

        const std::size_t chunks = (round + config_.batch - 1) / config_.batch;
        std::vector<std::vector<trace::Stream>> parts(chunks);
        util::global_pool().parallel_for(chunks, 1, [&](std::size_t c0, std::size_t c1) {
            for (std::size_t c = c0; c < c1; ++c) {
                const std::size_t b0 = c * config_.batch;
                const std::size_t b1 = std::min(b0 + config_.batch, round);
                parts[c] = generate_batch(std::span(rngs).subspan(b0, b1 - b0), ue_prefix,
                                          serial + b0);
            }
        });
        serial += round;
        for (auto& part : parts) {
            for (auto& s : part) {
                if (s.length() >= 2 && ds.streams.size() < n) ds.streams.push_back(std::move(s));
            }
        }
        if (ds.streams.size() < n && serial > 20 * n + 100) {
            // Degenerate model: nearly all draws are shorter than 2 events.
            // Give up with a diagnostic instead of looping forever (documented
            // in sampler.hpp).
            util::warnf("Sampler::generate gave up after %zu draws with only "
                        "%zu/%zu usable streams (model emits stop immediately?)",
                        serial, ds.streams.size(), n);
            break;
        }
    }
    return ds;
}

}  // namespace cpt::core
