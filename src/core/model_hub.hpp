// ModelHub — directory-based registry of released CPT-GPT packages.
//
// The paper's operational architecture (§4.5, Fig. 4) has the operator train
// per-hour / per-device models and "package together and release to the
// public" the weights plus the initial-event-type distribution. The hub is
// that release directory: one checkpoint per (device type, hour), plus a
// plain-text manifest, so downstream users can fetch the right model for the
// traffic slice they want to synthesize.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "model.hpp"

namespace cpt::core {

struct ModelHubEntry {
    trace::DeviceType device = trace::DeviceType::kPhone;
    int hour_of_day = 0;
    std::string file;  // checkpoint filename within the hub directory
};

class ModelHub {
public:
    // Opens (and creates if necessary) the hub rooted at `directory`. The
    // manifest is loaded if present.
    explicit ModelHub(std::string directory);

    // Publishes a trained model for a (device, hour) slice, overwriting any
    // previous release for that slice, and updates the manifest.
    // Precision::kInt8W8A32 releases an int8 weight-quantized checkpoint
    // (serialize v2, ~4x smaller); load() then installs the quantized payload
    // verbatim so cpt-serve never holds fp32 decode weights for the slice.
    void publish(const CptGpt& model, const Tokenizer& tokenizer,
                 const std::vector<double>& initial_event_dist, trace::DeviceType device,
                 int hour_of_day, nn::Precision precision = nn::Precision::kFp32);

    // True when a release exists for the slice.
    bool has(trace::DeviceType device, int hour_of_day) const;

    // Loads the release for a slice; throws std::out_of_range if absent.
    CptGpt::Package load(trace::DeviceType device, int hour_of_day,
                         const CptGptConfig& config) const;

    // Loads the release for the slice, falling back to the nearest published
    // hour for the same device (cyclic distance); nullopt if the device has
    // no releases at all. Mirrors how an operator would serve "the 3am model"
    // when only peak hours were retrained.
    std::optional<CptGpt::Package> load_nearest(trace::DeviceType device, int hour_of_day,
                                                const CptGptConfig& config) const;

    const std::vector<ModelHubEntry>& entries() const { return entries_; }
    const std::string& directory() const { return directory_; }

private:
    std::string manifest_path() const;
    void save_manifest() const;
    void load_manifest();

    std::string directory_;
    std::vector<ModelHubEntry> entries_;
};

}  // namespace cpt::core
