#include "spec_drafter.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace cpt::core {

namespace {

// Transitions with fewer observations than this fall back to the per-next
// (then global) histogram: a 4-sample histogram is mostly holes, and holes
// turn into rejections.
constexpr std::uint64_t kMinPairCount = 8;

}  // namespace

SpecDrafter SpecDrafter::fit(const trace::Dataset& ds, const Tokenizer& tokenizer,
                             const Options& opts) {
    CPT_CHECK(!ds.streams.empty(), "SpecDrafter::fit: empty dataset");
    SpecDrafter d;
    d.order_ = std::max<std::size_t>(opts.order, 1);
    d.buckets_ = std::max<std::size_t>(opts.buckets, 1);
    d.num_events_ = tokenizer.num_event_types();
    const std::size_t e = d.num_events_;

    // Event model: longest context first so draft() can back off in order.
    d.indexes_.reserve(d.order_);
    for (std::size_t n = d.order_ + 1; n >= 2; --n) {
        d.indexes_.emplace_back(ds, n);
    }
    d.unigram_.assign(e, 0.0);

    // Δt model: accumulate raw counts, then normalize every histogram.
    const auto blank = [&] {
        IaHist h;
        h.mass.assign(d.buckets_, 0.0);
        return h;
    };
    d.pair_.assign(e * e, blank());
    d.next_.assign(e, blank());
    d.global_ = blank();
    const auto tally = [&](IaHist& h, double scaled) {
        if (scaled <= 0.0) {
            h.atom0 += 1.0;
        } else if (scaled >= 1.0) {
            h.atom1 += 1.0;
        } else {
            const auto b = std::min<std::size_t>(
                d.buckets_ - 1, static_cast<std::size_t>(scaled * static_cast<double>(d.buckets_)));
            h.mass[b] += 1.0;
        }
        ++h.count;
    };
    double total_events = 0.0;
    for (const auto& s : ds.streams) {
        const auto ia = s.interarrivals();
        for (std::size_t k = 0; k < s.events.size(); ++k) {
            const cellular::EventId ev = s.events[k].type;
            CPT_CHECK_LT(std::size_t{ev}, e, " SpecDrafter::fit: event id outside vocabulary");
            d.unigram_[ev] += 1.0;
            total_events += 1.0;
            if (k == 0) continue;  // the first token's Δt is defined 0 — never drafted
            const cellular::EventId prev = s.events[k - 1].type;
            const double scaled = tokenizer.scale_interarrival(ia[k]);
            tally(d.pair_[std::size_t{prev} * e + ev], scaled);
            tally(d.next_[ev], scaled);
            tally(d.global_, scaled);
        }
    }
    if (total_events > 0.0) {
        for (double& u : d.unigram_) u /= total_events;
    }
    const auto normalize = [](IaHist& h) {
        if (h.count == 0) return;
        const double inv = 1.0 / static_cast<double>(h.count);
        h.atom0 *= inv;
        h.atom1 *= inv;
        for (double& m : h.mass) m *= inv;
    };
    for (auto& h : d.pair_) normalize(h);
    for (auto& h : d.next_) normalize(h);
    normalize(d.global_);
    return d;
}

const SpecDrafter::IaHist& SpecDrafter::hist_for(cellular::EventId prev,
                                                 cellular::EventId next) const {
    const IaHist& p = pair_[std::size_t{prev} * num_events_ + next];
    if (p.count >= kMinPairCount) return p;
    const IaHist& n = next_[next];
    if (n.count >= kMinPairCount) return n;
    return global_;
}

double SpecDrafter::ia_proposal(cellular::EventId prev, cellular::EventId next, double v,
                                bool* atom) const {
    const IaHist& h = hist_for(prev, next);
    if (v <= 0.0) {
        if (atom != nullptr) *atom = true;
        return h.atom0;
    }
    if (v >= 1.0) {
        if (atom != nullptr) *atom = true;
        return h.atom1;
    }
    if (atom != nullptr) *atom = false;
    const auto b = std::min<std::size_t>(
        buckets_ - 1, static_cast<std::size_t>(v * static_cast<double>(buckets_)));
    return h.mass[b] * static_cast<double>(buckets_);
}

SpecDrafter::Draft SpecDrafter::draft(std::span<const cellular::EventId> context,
                                      util::Rng& rng, Scratch& scratch) const {
    CPT_CHECK(!context.empty(), "SpecDrafter::draft: empty context");

    // Event: longest matching context wins; ties inside a distribution go to
    // the lowest event id (NgramIndex fills probs by id).
    Draft out;
    const double* probs = nullptr;
    std::size_t probs_len = 0;
    for (const auto& index : indexes_) {
        if (index.next_event_distribution(context, scratch.probs)) {
            probs = scratch.probs.data();
            probs_len = scratch.probs.size();
            break;
        }
    }
    if (probs == nullptr) {
        probs = unigram_.data();
        probs_len = unigram_.size();
    }
    std::size_t best = 0;
    for (std::size_t i = 1; i < probs_len; ++i) {
        if (probs[i] > probs[best]) best = i;
    }
    out.event = static_cast<cellular::EventId>(best);

    // Δt: one categorical walk over {atom0, buckets..., atom1} plus a
    // within-bucket uniform for interior draws. q is re-evaluated through
    // ia_proposal() so the reported density always matches the bucket the
    // drawn value actually lands in.
    const cellular::EventId prev = context.back();
    const IaHist& h = hist_for(prev, out.event);
    double v;
    if (h.count == 0) {
        // Degenerate (empty bootstrap histograms): propose the lower atom
        // with q = 1 so the rejection test simply consults the model.
        v = 0.0;
    } else {
        double r = rng.uniform();
        if (r < h.atom0) {
            v = 0.0;
        } else {
            r -= h.atom0;
            v = 1.0;  // falls through to the upper atom when no bucket absorbs r
            const double width = 1.0 / static_cast<double>(buckets_);
            for (std::size_t b = 0; b < buckets_; ++b) {
                if (r < h.mass[b]) {
                    v = (static_cast<double>(b) + rng.uniform()) * width;
                    // Guard the open interval: a within-bucket draw of
                    // exactly 0 or a rounding to the next boundary would
                    // reclassify the value as an atom / neighbor bucket.
                    v = std::clamp(v, width * 1e-9, 1.0 - width * 1e-9);
                    break;
                }
                r -= h.mass[b];
            }
        }
    }
    out.scaled_ia = static_cast<float>(v);
    bool atom = false;
    out.q = h.count == 0 ? 1.0 : ia_proposal(prev, out.event, out.scaled_ia, &atom);
    out.atom = atom;
    return out;
}

}  // namespace cpt::core
