// Speculative-decode drafter (DESIGN.md §16): a context-conditioned n-gram
// table that proposes the next (event, Δt) token for pennies, so the
// transformer can verify several positions per forward instead of one.
//
// No extra NN training is involved. The event model is the conditional
// next-event distribution of trace::NgramIndex with backoff (longest matching
// event context wins, down to the unigram marginal), taken at its argmax —
// a deterministic proposal, so the verifier's acceptance probability for the
// event component is simply the target model's probability of that event.
// The Δt model is a per-transition histogram over the tokenizer's scaled
// interarrival space: discrete atoms at the clamp boundaries {0, 1} plus
// uniform-density interior buckets. Proposals are drawn from that mixture
// with the caller's per-stream RNG, and ia_proposal() evaluates the proposal
// density q(v) (or atom mass) the verifier's rejection test and residual
// sampling need.
//
// The drafter is fit either on training traces or on a small set of streams
// the target model itself generated (self-bootstrap — what cpt-serve does at
// slice spin-up, where no training data is available). The latter makes q
// track the model's own conditionals, which is what maximizes acceptance.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tokenizer.hpp"
#include "trace/ngram.hpp"
#include "util/rng.hpp"

namespace cpt::core {

class SpecDrafter {
public:
    struct Options {
        std::size_t order = 2;     // longest event context the event model conditions on
        std::size_t buckets = 24;  // interior Δt histogram buckets (scaled space)
    };

    // Builds the n-gram tables from `ds` (every stream, every position).
    // Interarrivals are mapped through `tokenizer`'s scaling so the
    // histograms live in the same clamped space the model's tokens do.
    static SpecDrafter fit(const trace::Dataset& ds, const Tokenizer& tokenizer,
                           const Options& opts);
    static SpecDrafter fit(const trace::Dataset& ds, const Tokenizer& tokenizer) {
        return fit(ds, tokenizer, Options());
    }

    // One proposed token. `scaled_ia` is the clamped scaled interarrival the
    // token would carry (the sampler unscales it to seconds when committing);
    // `q` is the proposal density (interior) or mass (atom) at scaled_ia.
    struct Draft {
        cellular::EventId event = 0;
        float scaled_ia = 0.0f;
        double q = 0.0;
        bool atom = false;
    };

    // Reusable per-caller buffers so drafting stays allocation-free in the
    // decode hot loop.
    struct Scratch {
        std::vector<double> probs;
    };

    // Proposes the token following `context` (committed event types, most
    // recent last; must be non-empty). Deterministic given the context and
    // the RNG state; consumes 1 draw for an atom proposal, 2 for an interior
    // one.
    Draft draft(std::span<const cellular::EventId> context, util::Rng& rng,
                Scratch& scratch) const;

    // Proposal density (interior) or mass (atom) of the Δt model for
    // transition prev->next at scaled value v; `*atom` reports which case
    // applied. This is the q(·) in the verifier's accept ratio min(1, p/q)
    // and residual weight 1 - q/p.
    double ia_proposal(cellular::EventId prev, cellular::EventId next, double v,
                       bool* atom) const;

    std::size_t order() const { return order_; }
    std::size_t num_event_types() const { return num_events_; }

private:
    // Δt histogram in scaled space: clamp atoms + uniform interior buckets.
    // Masses sum to 1 once count > 0.
    struct IaHist {
        double atom0 = 0.0;
        double atom1 = 0.0;
        std::vector<double> mass;
        std::uint64_t count = 0;
    };

    SpecDrafter() = default;
    const IaHist& hist_for(cellular::EventId prev, cellular::EventId next) const;

    std::size_t order_ = 2;
    std::size_t buckets_ = 24;
    std::size_t num_events_ = 0;
    // Event model: n-gram indexes for n = order_+1 down to 2 (longest first)
    // plus the unigram marginal as the final fallback.
    std::vector<trace::NgramIndex> indexes_;
    std::vector<double> unigram_;
    // Δt model: per-(prev, next) transition histograms with per-next and
    // global backoff for thin transitions.
    std::vector<IaHist> pair_;  // [num_events_ * num_events_]
    std::vector<IaHist> next_;  // [num_events_]
    IaHist global_;
};

}  // namespace cpt::core
