// Tests for the toy MCN simulator (downstream consumer of synthesized traces).
#include <gtest/gtest.h>

#include "mcn/simulator.hpp"
#include "trace/synthetic.hpp"

namespace cpt::mcn {
namespace {

namespace lte = cellular::lte;

trace::Dataset world(std::size_t phones, std::uint64_t seed = 51) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {phones, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

TEST(NfCostModelTest, AttachIsTheHeaviestProcedure) {
    const NfCostModel m;
    EXPECT_GT(m.service_us(lte::kAtch), m.service_us(lte::kSrvReq));
    EXPECT_GT(m.service_us(lte::kHo), m.service_us(lte::kS1ConnRel));
}

TEST(NfCostModelTest, MessageDerivedCostsPreserveProcedureOrdering) {
    const auto m = NfCostModel::from_messages(cellular::Generation::kLte4G, 50.0);
    // Derived from TS 23.401 message counts: attach > service request >
    // release; everything positive.
    EXPECT_GT(m.atch_us, m.srv_req_us);
    EXPECT_GT(m.srv_req_us, m.s1_rel_us * 0.5);
    for (double c : {m.atch_us, m.dtch_us, m.srv_req_us, m.s1_rel_us, m.ho_us, m.tau_us}) {
        EXPECT_GT(c, 0.0);
    }
    // Scaling is linear in the per-message cost.
    const auto m2 = NfCostModel::from_messages(cellular::Generation::kLte4G, 100.0);
    EXPECT_NEAR(m2.atch_us, 2.0 * m.atch_us, 1e-9);
}

TEST(SimulatorTest, EmptyDatasetYieldsEmptyReport) {
    trace::Dataset empty;
    const auto r = simulate(empty);
    EXPECT_EQ(r.events_processed, 0u);
}

TEST(SimulatorTest, ProcessesEveryEvent) {
    const auto ds = world(100);
    const auto r = simulate(ds);
    EXPECT_EQ(r.events_processed, ds.total_events());
    EXPECT_GT(r.makespan_s, 100.0);
    EXPECT_GT(r.latency_p50_ms, 0.0);
    EXPECT_LE(r.latency_p50_ms, r.latency_p95_ms);
    EXPECT_LE(r.latency_p95_ms, r.latency_p99_ms);
    EXPECT_GT(r.peak_connected_ues, 0u);
    EXPECT_LE(r.peak_connected_ues, ds.streams.size());
}

TEST(SimulatorTest, FewerWorkersRaiseLatency) {
    const auto ds = world(300);
    McnConfig scarce;
    scarce.workers = 1;
    scarce.stochastic_service = false;
    // Inflate costs so a single worker is meaningfully loaded.
    scarce.costs.srv_req_us = 50000.0;
    scarce.costs.s1_rel_us = 50000.0;
    McnConfig ample = scarce;
    ample.workers = 16;
    const auto r1 = simulate(ds, scarce);
    const auto r2 = simulate(ds, ample);
    EXPECT_GT(r1.latency_p95_ms, r2.latency_p95_ms);
    EXPECT_GT(r1.mean_utilization, r2.mean_utilization);
}

TEST(SimulatorTest, AutoscalerReactsToLoad) {
    const auto ds = world(400);
    McnConfig cfg;
    cfg.workers = 1;
    cfg.autoscale = true;
    cfg.autoscale_interval_s = 120.0;
    cfg.target_utilization = 0.3;
    // Heavy procedures so a single worker saturates and the scaler must act.
    cfg.costs.srv_req_us = 200000.0;
    cfg.costs.s1_rel_us = 200000.0;
    const auto r = simulate(ds, cfg);
    EXPECT_GT(r.worker_trajectory.size(), 1u) << "autoscaler should have acted";
}

TEST(SimulatorTest, DeterministicWithoutStochasticService) {
    const auto ds = world(80);
    McnConfig cfg;
    cfg.stochastic_service = false;
    const auto a = simulate(ds, cfg);
    const auto b = simulate(ds, cfg);
    EXPECT_DOUBLE_EQ(a.latency_p99_ms, b.latency_p99_ms);
    EXPECT_EQ(a.peak_connected_ues, b.peak_connected_ues);
}

TEST(SimulatorTest, RejectsZeroWorkers) {
    McnConfig cfg;
    cfg.workers = 0;
    EXPECT_THROW(simulate(world(10), cfg), std::invalid_argument);
}

TEST(SimulatorTest, MessageDerivedCostsDriveSimulation) {
    const auto ds = world(60);
    McnConfig cfg;
    cfg.costs = NfCostModel::from_messages(cellular::Generation::kLte4G, 2000.0);
    cfg.stochastic_service = false;
    const auto r = simulate(ds, cfg);
    EXPECT_EQ(r.events_processed, ds.total_events());
    EXPECT_GT(r.latency_p50_ms, 0.0);
}

TEST(SimulatorTest, RenderIncludesKeyRows) {
    const auto r = simulate(world(50));
    const std::string text = r.render();
    EXPECT_NE(text.find("latency p99"), std::string::npos);
    EXPECT_NE(text.find("peak CONNECTED UEs"), std::string::npos);
}

}  // namespace
}  // namespace cpt::mcn
