// Tests for speculative multi-token decode (DESIGN.md §16). Three layers:
//
//   * decoder KV-rollback property — feeding a speculative window through
//     TransformerDecoder::step_window and rolling every row back must leave
//     the decoder byte-identical to one that never saw the window, across
//     subsequent steps, compact(), and admit() (free-list reuse included);
//   * sampler identity pins — spec_force_reject + spec_verify_all (every
//     draft rejected, every rollback taken) is byte-identical to the plain
//     spec_k = 1 path; greedy decoding (temperature == 0) is byte-identical
//     at every spec_k by construction; spec_k = 1 with a drafter attached
//     degenerates to the plain path exactly;
//   * scheduler pins — SlotBatch at spec_k > 1 reproduces generate_batch
//     byte-for-byte, and a stream's content is a pure function of its
//     admit() Rng under admit/evict churn with mixed per-engine spec_k
//     (batch composition and admission timing cannot perturb content).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/spec_drafter.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace cpt {
namespace {

core::CptGptConfig tiny_config() {
    core::CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 32;
    cfg.head_hidden = 16;
    return cfg;
}

std::vector<trace::Stream> sorted_by_ue(std::vector<trace::Stream> streams) {
    std::sort(streams.begin(), streams.end(),
              [](const trace::Stream& a, const trace::Stream& b) { return a.ue_id < b.ue_id; });
    return streams;
}

void expect_streams_identical(const trace::Stream& a, const trace::Stream& b) {
    EXPECT_EQ(a.ue_id, b.ue_id);
    ASSERT_EQ(a.events.size(), b.events.size()) << a.ue_id;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        // Byte-identical, not approximately equal: the determinism contract.
        EXPECT_EQ(a.events[i].timestamp, b.events[i].timestamp) << a.ue_id << " event " << i;
        EXPECT_EQ(a.events[i].type, b.events[i].type) << a.ue_id << " event " << i;
    }
}

void expect_outputs_identical(const core::CptGpt::DecodeOutput& a,
                              const core::CptGpt::DecodeOutput& b, const char* what) {
    const auto ea = a.event_logits.data();
    const auto eb = b.event_logits.data();
    ASSERT_EQ(ea.size(), eb.size()) << what;
    for (std::size_t i = 0; i < ea.size(); ++i) EXPECT_EQ(ea[i], eb[i]) << what << " logit " << i;
    const auto ma = a.ia_mu.data();
    const auto mb = b.ia_mu.data();
    ASSERT_EQ(ma.size(), mb.size()) << what;
    for (std::size_t i = 0; i < ma.size(); ++i) EXPECT_EQ(ma[i], mb[i]) << what << " mu " << i;
    const auto va = a.ia_logvar.data();
    const auto vb = b.ia_logvar.data();
    ASSERT_EQ(va.size(), vb.size()) << what;
    for (std::size_t i = 0; i < va.size(); ++i) EXPECT_EQ(va[i], vb[i]) << what << " logvar " << i;
    const auto sa = a.stop_logits.data();
    const auto sb = b.stop_logits.data();
    ASSERT_EQ(sa.size(), sb.size()) << what;
    for (std::size_t i = 0; i < sa.size(); ++i) EXPECT_EQ(sa[i], sb[i]) << what << " stop " << i;
}

// Shared tiny model + drafter: built once per test process.
struct SpecFixture : ::testing::Test {
    static void SetUpTestSuite() {
        trace::SyntheticWorldConfig w;
        w.population = {40, 0, 0};
        data = std::make_unique<trace::Dataset>(trace::SyntheticWorldGenerator(w).generate());
        tokenizer = std::make_unique<core::Tokenizer>(core::Tokenizer::fit(*data));
        util::Rng rng(21);
        model = std::make_unique<core::CptGpt>(*tokenizer, tiny_config(), rng);
        drafter =
            std::make_unique<core::SpecDrafter>(core::SpecDrafter::fit(*data, *tokenizer));
    }
    static void TearDownTestSuite() {
        drafter.reset();
        model.reset();
        tokenizer.reset();
        data.reset();
    }

    static core::SamplerConfig base_config(std::size_t batch) {
        core::SamplerConfig sc;
        sc.batch = batch;
        sc.device = trace::DeviceType::kPhone;
        sc.hour_of_day = 9;
        return sc;
    }
    static core::SamplerConfig spec_config(std::size_t k, std::size_t batch) {
        auto sc = base_config(batch);
        sc.spec_k = k;
        sc.drafter = drafter.get();
        return sc;
    }
    static std::vector<util::Rng> forked(std::uint64_t seed, std::size_t n) {
        util::Rng root(seed);
        std::vector<util::Rng> rngs;
        rngs.reserve(n);
        for (std::size_t i = 0; i < n; ++i) rngs.push_back(root.fork(i));
        return rngs;
    }

    static std::unique_ptr<trace::Dataset> data;
    static std::unique_ptr<core::Tokenizer> tokenizer;
    static std::unique_ptr<core::CptGpt> model;
    static std::unique_ptr<core::SpecDrafter> drafter;
};
std::unique_ptr<trace::Dataset> SpecFixture::data;
std::unique_ptr<core::Tokenizer> SpecFixture::tokenizer;
std::unique_ptr<core::CptGpt> SpecFixture::model;
std::unique_ptr<core::SpecDrafter> SpecFixture::drafter;

// ---- decoder KV-rollback property ------------------------------------------

// Writes a deterministic synthetic token into `dst` (no model semantics
// needed: the decoder is a pure function of its token inputs).
void fill_token(const core::Tokenizer& tok, std::size_t salt, std::span<float> dst) {
    const auto ev = static_cast<cellular::EventId>(salt % tok.num_event_types());
    tok.encode_token(ev, 0.05 * static_cast<double>(salt % 7), false, dst);
}

TEST_F(SpecFixture, WindowPlusFullRollbackLeavesDecoderByteIdentical) {
    constexpr std::size_t kBatch = 3;
    constexpr std::size_t kMaxWindow = 4;
    // `probe` never sees a window; `spec` interleaves window-feed + rollback
    // between every lockstep decode step. Every decode_step output must stay
    // byte-identical — that is the KV-rollback contract rounds rely on.
    auto probe = model->make_decoder(kBatch);
    auto spec = model->make_decoder(kBatch, nn::Precision::kFp32, kMaxWindow);
    auto probe_scratch = model->make_decode_scratch(kBatch);
    auto spec_scratch = model->make_decode_scratch(kBatch * kMaxWindow);

    const std::size_t d_token = tokenizer->d_token();
    nn::Tensor step_tok({kBatch, d_token});
    nn::Tensor window_full({kBatch * kMaxWindow, d_token});

    auto feed_step = [&](std::size_t salt) {
        auto dst = step_tok.data();
        for (std::size_t r = 0; r < step_tok.dim(0); ++r) {
            fill_token(*tokenizer, salt + 13 * r, dst.subspan(r * d_token, d_token));
        }
        const auto& a = model->decode_step(probe, step_tok, probe_scratch);
        const auto& b = model->decode_step(spec, step_tok, spec_scratch);
        expect_outputs_identical(a, b, ("step salt=" + std::to_string(salt)).c_str());
    };
    // Feeds a speculative window into `spec` only, then rolls every row all
    // the way back — observationally a no-op if rollback is exact.
    auto feed_window_and_rollback = [&](std::vector<std::size_t> counts, std::size_t salt) {
        counts.resize(spec.batch(), 0);
        std::vector<std::size_t> before(spec.batch());
        for (std::size_t r = 0; r < spec.batch(); ++r) before[r] = spec.row_length(r);
        std::size_t wrows = 0;
        for (auto c : counts) wrows += c;
        ASSERT_GT(wrows, 0u);
        nn::Tensor window = window_full.first_rows(wrows);
        auto dst = window.data();
        for (std::size_t i = 0; i < wrows; ++i) {
            fill_token(*tokenizer, salt + 31 * i, dst.subspan(i * d_token, d_token));
        }
        model->decode_window(spec, window, counts, spec_scratch);
        for (std::size_t r = 0; r < spec.batch(); ++r) {
            ASSERT_EQ(spec.row_length(r), before[r] + counts[r]);
            spec.rollback_row(r, before[r]);
            ASSERT_EQ(spec.row_length(r), before[r]);
        }
    };

    for (std::size_t s = 0; s < 4; ++s) feed_step(s);
    feed_window_and_rollback({2, 0, 3}, 100);
    feed_step(4);
    feed_window_and_rollback({4, 1, 2}, 200);
    feed_step(5);

    // compact() both to rows {0, 2}: rollback must also hold after the
    // logical->physical remap.
    probe.compact({0, 2});
    spec.compact({0, 2});
    step_tok = step_tok.first_rows(2);
    feed_step(6);
    feed_window_and_rollback({3, 2}, 300);
    feed_step(7);

    // admit() a fresh row (recycled physical row from the free list): its
    // empty context must window + roll back like any other.
    ASSERT_EQ(probe.admit(1), 2u);
    ASSERT_EQ(spec.admit(1), 2u);
    step_tok = nn::Tensor({kBatch, d_token});
    feed_step(8);
    feed_window_and_rollback({1, 2, 4}, 400);
    feed_step(9);
}

// ---- sampler identity pins --------------------------------------------------

TEST_F(SpecFixture, ForcedAllRejectIsByteIdenticalToPlainPath) {
    constexpr std::size_t kStreams = 10;
    const auto dist = data->initial_event_distribution();
    const core::Sampler plain(*model, *tokenizer, dist, base_config(6));
    auto cfg = spec_config(4, 6);
    cfg.spec_force_reject = true;  // drafting runs, every candidate rejects
    cfg.spec_verify_all = true;    // verify forward + full rollback still run
    const core::Sampler spec(*model, *tokenizer, dist, cfg);

    auto r_plain = forked(42, kStreams);
    auto r_spec = forked(42, kStreams);
    const auto want = sorted_by_ue(plain.generate_batch(std::span(r_plain), "rej", 0));
    core::Sampler::StageTimes times;
    const auto got = sorted_by_ue(spec.generate_batch(std::span(r_spec), "rej", 0, &times));
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) expect_streams_identical(want[i], got[i]);

    // The knobs must actually have exercised the speculative machinery.
    EXPECT_GT(times.spec_proposed, 0u);
    EXPECT_EQ(times.spec_accepted, 0u);
    EXPECT_GT(times.verify_steps, 0u);

    // Same identity through the SlotBatch scheduler (step_spec path), under
    // continuous refill: capacity below the stream count, so late streams
    // are admitted as earlier ones retire. The reference is the *plain*
    // sampler's SlotBatch under the identical schedule — decoder outputs
    // carry low-bit dependence on the live batch size, so the plain
    // generate_batch (which runs all rows at once) is only byte-comparable
    // at equal admission, which SlotBatchSpecMatchesGenerateBatch covers.
    auto run_slots = [&](const core::Sampler& sampler) {
        auto rngs = forked(42, kStreams);
        auto batch = sampler.make_slot_batch(6);
        std::vector<core::Sampler::SlotBatch::Finished> finished;
        std::size_t next = 0;
        while (next < kStreams || batch.live() > 0) {
            while (next < kStreams && batch.free_slots() > 0) {
                char id[64];
                std::snprintf(id, sizeof(id), "rej-%06zu", next);
                batch.admit(rngs[next], id, next);
                ++next;
            }
            batch.step(finished);
        }
        std::vector<trace::Stream> streams;
        for (auto& f : finished) {
            EXPECT_FALSE(f.evicted);
            streams.push_back(std::move(f.stream));
        }
        return sorted_by_ue(std::move(streams));
    };
    const auto want_slots = run_slots(plain);
    const auto got_slots = run_slots(spec);
    ASSERT_EQ(want_slots.size(), kStreams);
    ASSERT_EQ(got_slots.size(), kStreams);
    for (std::size_t i = 0; i < kStreams; ++i) {
        expect_streams_identical(want_slots[i], got_slots[i]);
    }
}

TEST_F(SpecFixture, GreedyDecodingIsByteIdenticalAtEverySpecK) {
    constexpr std::size_t kStreams = 8;
    const auto dist = data->initial_event_distribution();
    auto plain_cfg = base_config(4);
    plain_cfg.temperature = 0.0;  // argmax events, mean interarrival
    const core::Sampler plain(*model, *tokenizer, dist, plain_cfg);
    auto r_plain = forked(7, kStreams);
    const auto want = sorted_by_ue(plain.generate_batch(std::span(r_plain), "greedy", 0));

    for (std::size_t k : {std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
        auto cfg = spec_config(k, 4);
        cfg.temperature = 0.0;
        const core::Sampler spec(*model, *tokenizer, dist, cfg);
        auto r_spec = forked(7, kStreams);
        core::Sampler::StageTimes times;
        const auto got =
            sorted_by_ue(spec.generate_batch(std::span(r_spec), "greedy", 0, &times));
        ASSERT_EQ(want.size(), got.size()) << "spec_k=" << k;
        for (std::size_t i = 0; i < want.size(); ++i) expect_streams_identical(want[i], got[i]);
        // Greedy rows never speculate, so no drafts may have been proposed.
        EXPECT_EQ(times.spec_proposed, 0u) << "spec_k=" << k;
        EXPECT_EQ(times.verify_steps, 0u) << "spec_k=" << k;
    }
}

TEST_F(SpecFixture, SpecK1DegeneratesToPlainPathExactly) {
    constexpr std::size_t kStreams = 8;
    const auto dist = data->initial_event_distribution();
    const core::Sampler plain(*model, *tokenizer, dist, base_config(4));
    // spec_k = 1 with a drafter attached must take the plain path verbatim.
    const core::Sampler spec1(*model, *tokenizer, dist, spec_config(1, 4));
    auto r_plain = forked(3, kStreams);
    auto r_spec = forked(3, kStreams);
    const auto want = sorted_by_ue(plain.generate_batch(std::span(r_plain), "k1", 0));
    core::Sampler::StageTimes times;
    const auto got = sorted_by_ue(spec1.generate_batch(std::span(r_spec), "k1", 0, &times));
    ASSERT_EQ(want.size(), got.size());
    for (std::size_t i = 0; i < want.size(); ++i) expect_streams_identical(want[i], got[i]);
    EXPECT_EQ(times.spec_proposed, 0u);
    EXPECT_EQ(times.verify_steps, 0u);

    // An oversized spec_k clamps to max_stream_len (itself clamped to the
    // model context) instead of overrunning the decoder window arena.
    const core::Sampler clamped(*model, *tokenizer, dist, spec_config(1000, 4));
    EXPECT_EQ(clamped.config().spec_k, clamped.config().max_stream_len);
}

// ---- scheduler pins ----------------------------------------------------------

TEST_F(SpecFixture, SlotBatchSpecMatchesGenerateBatchByteForByte) {
    constexpr std::size_t kStreams = 8;
    const auto dist = data->initial_event_distribution();
    const core::Sampler spec(*model, *tokenizer, dist, spec_config(4, kStreams));

    auto rngs = forked(11, kStreams);
    auto rngs_copy = rngs;
    const auto want = sorted_by_ue(spec.generate_batch(std::span(rngs_copy), "pin", 0));
    ASSERT_EQ(want.size(), kStreams);

    auto batch = spec.make_slot_batch(kStreams);
    char id[64];
    for (std::size_t i = 0; i < kStreams; ++i) {
        std::snprintf(id, sizeof(id), "pin-%06zu", i);
        batch.admit(rngs[i], id, i);
    }
    std::vector<core::Sampler::SlotBatch::Finished> finished;
    while (batch.live() > 0) batch.step(finished);
    ASSERT_EQ(finished.size(), kStreams);
    std::vector<trace::Stream> got;
    for (auto& f : finished) {
        EXPECT_FALSE(f.evicted);
        got.push_back(std::move(f.stream));
    }
    got = sorted_by_ue(std::move(got));
    for (std::size_t i = 0; i < kStreams; ++i) expect_streams_identical(want[i], got[i]);

    const auto& times = batch.stage_times();
    EXPECT_GT(times.spec_proposed, 0u);
    EXPECT_GT(times.steps, 0u);
}

TEST_F(SpecFixture, ChurnWithMixedSpecKIsDeterministicAndForceRejectInert) {
    const auto dist = data->initial_event_distribution();
    // Engines over the same weights at mixed spec_k, as cpt-serve runs with
    // per-slice overrides. Each runs an admit/evict churn schedule: capacity
    // 3 for 6 streams (continuous refill) with the first live stream evicted
    // mid-decode once a couple of steps have run.
    constexpr std::size_t kStreams = 6;
    const auto rngs = forked(99, kStreams);

    auto run_churn = [&](const core::Sampler& sampler) {
        auto batch = sampler.make_slot_batch(3);
        std::vector<core::Sampler::SlotBatch::Finished> finished;
        std::size_t next = 0;
        bool evicted_one = false;
        std::size_t steps = 0;
        while (next < kStreams || batch.live() > 0) {
            while (next < kStreams && batch.free_slots() > 0) {
                char id[64];
                std::snprintf(id, sizeof(id), "churn-%06zu", next);
                batch.admit(rngs[next], id, next);
                ++next;
            }
            batch.step(finished);
            if (!evicted_one && ++steps >= 2 && batch.live() > 0) {
                // Deadline-style eviction: drop the lowest live ticket. The
                // retired set is deterministic, so so is the choice.
                std::vector<bool> retired(kStreams, false);
                for (const auto& f : finished) retired[f.ticket] = true;
                for (std::size_t t = 0; t < next && !evicted_one; ++t) {
                    if (retired[t]) continue;
                    evicted_one = batch.evict([t](std::uint64_t x) { return x == t; },
                                              finished) == 1;
                }
            }
        }
        EXPECT_TRUE(evicted_one);
        return finished;
    };

    // Forced-all-reject speculation through the identical churn schedule is
    // byte-identical to the plain engine, evictions and partial streams
    // included: rounds commit one token each, so admission, compaction, and
    // eviction unfold in lockstep with the plain path.
    const core::Sampler plain(*model, *tokenizer, dist, base_config(3));
    auto inert_cfg = spec_config(4, 3);
    inert_cfg.spec_force_reject = true;
    inert_cfg.spec_verify_all = true;
    const core::Sampler inert(*model, *tokenizer, dist, inert_cfg);
    const auto want = run_churn(plain);
    const auto inert_got = run_churn(inert);
    ASSERT_EQ(want.size(), kStreams);
    ASSERT_EQ(inert_got.size(), kStreams);
    for (std::size_t i = 0; i < kStreams; ++i) {
        EXPECT_EQ(want[i].ticket, inert_got[i].ticket);
        EXPECT_EQ(want[i].evicted, inert_got[i].evicted);
        expect_streams_identical(want[i].stream, inert_got[i].stream);
    }

    // Live speculation at mixed spec_k: each engine's churn (including which
    // ticket gets evicted and the evicted stream's partial content) must be
    // reproducible run-to-run.
    for (std::size_t k : {std::size_t{2}, std::size_t{4}}) {
        const core::Sampler spec(*model, *tokenizer, dist, spec_config(k, 3));
        const auto first = run_churn(spec);
        const auto again = run_churn(spec);
        ASSERT_EQ(first.size(), kStreams) << "spec_k=" << k;
        ASSERT_EQ(again.size(), kStreams) << "spec_k=" << k;
        std::size_t evictions = 0;
        for (std::size_t i = 0; i < kStreams; ++i) {
            EXPECT_EQ(first[i].ticket, again[i].ticket) << "spec_k=" << k;
            EXPECT_EQ(first[i].evicted, again[i].evicted) << "spec_k=" << k;
            expect_streams_identical(first[i].stream, again[i].stream);
            if (first[i].evicted) ++evictions;
        }
        EXPECT_EQ(evictions, 1u) << "spec_k=" << k;
    }
}

}  // namespace
}  // namespace cpt
