// Tests for the event vocabularies, the two-level 3GPP state machines, and
// the replay/validation engine, including randomized property tests.
#include <gtest/gtest.h>

#include "cellular/state_machine.hpp"
#include "util/rng.hpp"

namespace cpt::cellular {
namespace {

using enum SubState;

TEST(VocabularyTest, LteNamesAndIds) {
    const auto& v = vocabulary(Generation::kLte4G);
    EXPECT_EQ(v.size(), 6u);
    EXPECT_EQ(v.name(lte::kSrvReq), "SRV_REQ");
    EXPECT_EQ(v.name(lte::kS1ConnRel), "S1_CONN_REL");
    EXPECT_EQ(v.id("TAU"), lte::kTau);
    EXPECT_FALSE(v.id("REGISTER").has_value());
    EXPECT_THROW(v.name(99), std::out_of_range);
}

TEST(VocabularyTest, NrHasNoTau) {
    const auto& v = vocabulary(Generation::kNr5G);
    EXPECT_EQ(v.size(), 5u);
    EXPECT_FALSE(v.id("TAU").has_value());
    EXPECT_EQ(v.name(nr::kAnRel), "AN_REL");
}

TEST(StateMachineTest, TopStateMapping) {
    EXPECT_EQ(top_state_of(kConnActive), TopState::kConnected);
    EXPECT_EQ(top_state_of(kConnAfterHo), TopState::kConnected);
    EXPECT_EQ(top_state_of(kIdleS1RelS), TopState::kIdle);
    EXPECT_EQ(top_state_of(kIdleTauS), TopState::kIdle);
    EXPECT_EQ(top_state_of(kDeregistered), TopState::kDeregistered);
}

TEST(StateMachineTest, LteBasicCycle) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    // DEREG -ATCH-> CONN -S1_REL-> IDLE -SRV_REQ-> CONN -DTCH-> DEREG
    auto s = m.step(kDeregistered, lte::kAtch);
    ASSERT_TRUE(s);
    EXPECT_EQ(*s, kConnActive);
    s = m.step(*s, lte::kS1ConnRel);
    ASSERT_TRUE(s);
    EXPECT_EQ(*s, kIdleS1RelS);
    s = m.step(*s, lte::kSrvReq);
    ASSERT_TRUE(s);
    EXPECT_EQ(*s, kConnActive);
    s = m.step(*s, lte::kDtch);
    ASSERT_TRUE(s);
    EXPECT_EQ(*s, kDeregistered);
}

TEST(StateMachineTest, PaperViolationRulesHold) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    // Table 3's top violation categories must indeed be violations:
    EXPECT_FALSE(m.step(kIdleS1RelS, lte::kS1ConnRel));  // (S1_REL_S, S1_CONN_REL)
    EXPECT_FALSE(m.step(kIdleS1RelS, lte::kHo));         // (S1_REL_S, HO)
    EXPECT_FALSE(m.step(kConnActive, lte::kSrvReq));     // (CONNECTED, SRV_REQ)
    // Double attach and detach-while-deregistered are violations.
    EXPECT_FALSE(m.step(kConnActive, lte::kAtch));
    EXPECT_FALSE(m.step(kDeregistered, lte::kDtch));
    EXPECT_FALSE(m.step(kDeregistered, lte::kSrvReq));
}

TEST(StateMachineTest, HandoverSubstate) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    auto s = m.step(kConnActive, lte::kHo);
    ASSERT_TRUE(s);
    EXPECT_EQ(*s, kConnAfterHo);
    // TAU completes the handover back to CONN_ACTIVE.
    auto s2 = m.step(*s, lte::kTau);
    ASSERT_TRUE(s2);
    EXPECT_EQ(*s2, kConnActive);
    // Chained handovers stay in the handover sub-state.
    auto s3 = m.step(*s, lte::kHo);
    ASSERT_TRUE(s3);
    EXPECT_EQ(*s3, kConnAfterHo);
}

TEST(StateMachineTest, BootstrapHeuristic) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    EXPECT_EQ(m.bootstrap_state(lte::kAtch), kConnActive);
    EXPECT_EQ(m.bootstrap_state(lte::kDtch), kDeregistered);
    EXPECT_EQ(m.bootstrap_state(lte::kSrvReq), kConnActive);
    EXPECT_EQ(m.bootstrap_state(lte::kHo), kConnAfterHo);
    // TAU and S1_CONN_REL destinations depend on the source state.
    EXPECT_FALSE(m.bootstrap_state(lte::kTau));
    EXPECT_FALSE(m.bootstrap_state(lte::kS1ConnRel));
}

TEST(StateMachineTest, NrMachineRejectsReleaseWhileIdle) {
    const auto& m = StateMachine::for_generation(Generation::kNr5G);
    auto s = m.step(kDeregistered, nr::kRegister);
    ASSERT_TRUE(s);
    auto idle = m.step(*s, nr::kAnRel);
    ASSERT_TRUE(idle);
    EXPECT_FALSE(m.step(*idle, nr::kAnRel));
    EXPECT_FALSE(m.step(*idle, nr::kHo));
    EXPECT_TRUE(m.step(*idle, nr::kSrvReq));
}

TEST(StateMachineTest, EveryEventIsLegalSomewhere) {
    for (const auto gen : {Generation::kLte4G, Generation::kNr5G}) {
        const auto& m = StateMachine::for_generation(gen);
        for (std::size_t e = 0; e < m.num_events(); ++e) {
            EXPECT_TRUE(m.event_ever_legal(static_cast<EventId>(e)))
                << "generation " << static_cast<int>(gen) << " event " << e;
        }
    }
}

// ---- Replayer -----------------------------------------------------------------

std::vector<ControlEvent> make_events(std::initializer_list<std::pair<double, EventId>> list) {
    std::vector<ControlEvent> out;
    for (auto& [t, e] : list) out.push_back({t, e});
    return out;
}

TEST(ReplayerTest, ValidStreamHasNoViolations) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    StateMachineReplayer rep(m);
    const auto events = make_events({{0.0, lte::kSrvReq},
                                     {10.0, lte::kS1ConnRel},
                                     {100.0, lte::kSrvReq},
                                     {112.0, lte::kHo},
                                     {113.0, lte::kTau},
                                     {130.0, lte::kS1ConnRel}});
    const auto r = rep.replay(events);
    EXPECT_TRUE(r.bootstrapped);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.counted_events, 5u);  // bootstrap event excluded
    // Sojourns: CONNECTED 0->10 (10s), IDLE 10->100 (90s), CONNECTED 100->130 (30s).
    ASSERT_EQ(r.sojourn_connected.size(), 2u);
    EXPECT_DOUBLE_EQ(r.sojourn_connected[0], 10.0);
    EXPECT_DOUBLE_EQ(r.sojourn_connected[1], 30.0);
    ASSERT_EQ(r.sojourn_idle.size(), 1u);
    EXPECT_DOUBLE_EQ(r.sojourn_idle[0], 90.0);
}

TEST(ReplayerTest, ViolationCountedAndStateRetained) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    StateMachineReplayer rep(m);
    // SRV_REQ while already connected is the (CONNECTED, SRV_REQ) violation;
    // the machine stays CONNECTED, so the following S1_CONN_REL is legal.
    const auto events = make_events(
        {{0.0, lte::kSrvReq}, {5.0, lte::kSrvReq}, {9.0, lte::kS1ConnRel}});
    const auto r = rep.replay(events);
    EXPECT_EQ(r.violations, 1u);
    EXPECT_EQ(r.counted_events, 2u);
    const std::size_t key =
        static_cast<std::size_t>(kConnActive) * m.num_events() + lte::kSrvReq;
    EXPECT_EQ(r.violation_by_state_event[key], 1u);
    EXPECT_EQ(top_state_of(r.final_state), TopState::kIdle);
}

TEST(ReplayerTest, PreBootstrapEventsExcluded) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    StateMachineReplayer rep(m);
    // TAU and S1_CONN_REL cannot bootstrap; SRV_REQ can.
    const auto events = make_events(
        {{0.0, lte::kTau}, {1.0, lte::kS1ConnRel}, {2.0, lte::kSrvReq}, {3.0, lte::kS1ConnRel}});
    const auto r = rep.replay(events);
    EXPECT_EQ(r.pre_bootstrap_events, 2u);
    EXPECT_EQ(r.counted_events, 1u);
    EXPECT_EQ(r.violations, 0u);
}

TEST(ReplayerTest, NeverBootstrapsOnUnbootstrappableStream) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    StateMachineReplayer rep(m);
    const auto events = make_events({{0.0, lte::kTau}, {5.0, lte::kTau}});
    const auto r = rep.replay(events);
    EXPECT_FALSE(r.bootstrapped);
    EXPECT_EQ(r.pre_bootstrap_events, 2u);
    EXPECT_EQ(r.counted_events, 0u);
}

// Property: replaying a random LEGAL walk produces zero violations, and the
// recorded sojourn intervals sum to the span between the first and the last
// top-state change.
class ReplayerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReplayerPropertyTest, LegalWalksReplayCleanly) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    util::Rng rng(GetParam());
    // Random walk over legal transitions starting from a bootstrap event.
    std::vector<ControlEvent> events;
    SubState state = kConnActive;
    events.push_back({0.0, lte::kSrvReq});
    double t = 0.0;
    const std::size_t steps = 5 + rng.uniform_index(120);
    for (std::size_t i = 0; i < steps; ++i) {
        std::vector<EventId> legal;
        for (std::size_t e = 0; e < m.num_events(); ++e) {
            if (m.step(state, static_cast<EventId>(e))) legal.push_back(static_cast<EventId>(e));
        }
        ASSERT_FALSE(legal.empty());
        const EventId ev = legal[rng.uniform_index(legal.size())];
        t += rng.uniform(0.1, 60.0);
        events.push_back({t, ev});
        state = *m.step(state, ev);
    }
    StateMachineReplayer rep(m);
    const auto r = rep.replay(events);
    EXPECT_TRUE(r.bootstrapped);
    EXPECT_EQ(r.violations, 0u);
    EXPECT_EQ(r.counted_events, events.size() - 1);
    double sojourn_total = 0.0;
    for (double s : r.sojourn_connected) sojourn_total += s;
    for (double s : r.sojourn_idle) sojourn_total += s;
    for (double s : r.sojourn_deregistered) sojourn_total += s;
    EXPECT_LE(sojourn_total, t + 1e-9);
    for (double s : r.sojourn_connected) EXPECT_GE(s, 0.0);
    for (double s : r.sojourn_idle) EXPECT_GE(s, 0.0);
}

INSTANTIATE_TEST_SUITE_P(RandomWalks, ReplayerPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233));

// Property: injecting a single illegal event into a legal stream yields
// exactly one violation and leaves subsequent replay consistent.
class ViolationInjectionTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ViolationInjectionTest, SingleInjectionCountsOnce) {
    const auto& m = StateMachine::for_generation(Generation::kLte4G);
    util::Rng rng(GetParam() * 7919);
    std::vector<ControlEvent> events;
    SubState state = kConnActive;
    events.push_back({0.0, lte::kSrvReq});
    double t = 0.0;
    bool injected = false;
    for (std::size_t i = 0; i < 60; ++i) {
        std::vector<EventId> legal;
        std::vector<EventId> illegal;
        for (std::size_t e = 0; e < m.num_events(); ++e) {
            if (m.step(state, static_cast<EventId>(e))) {
                legal.push_back(static_cast<EventId>(e));
            } else {
                illegal.push_back(static_cast<EventId>(e));
            }
        }
        t += rng.uniform(0.1, 30.0);
        if (!injected && i == 30 && !illegal.empty()) {
            events.push_back({t, illegal[rng.uniform_index(illegal.size())]});
            injected = true;  // state unchanged: replayer stays put on violation
            continue;
        }
        const EventId ev = legal[rng.uniform_index(legal.size())];
        events.push_back({t, ev});
        state = *m.step(state, ev);
    }
    ASSERT_TRUE(injected);
    StateMachineReplayer rep(m);
    const auto r = rep.replay(events);
    EXPECT_EQ(r.violations, 1u);
}

INSTANTIATE_TEST_SUITE_P(Injections, ViolationInjectionTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace cpt::cellular
