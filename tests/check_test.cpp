// Tests for the CPT_CHECK invariant substrate: message formatting, exception
// hierarchy, operand capture, finite scans, and debug-check gating.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "util/check.hpp"
#include "util/log.hpp"

namespace cpt {
namespace {

TEST(CheckTest, PassingCheckDoesNotThrow) {
    EXPECT_NO_THROW(CPT_CHECK(1 + 1 == 2, "arithmetic broke"));
    EXPECT_NO_THROW(CPT_CHECK_EQ(4, 4));
    EXPECT_NO_THROW(CPT_CHECK_LT(1, 2, " ordering"));
}

TEST(CheckTest, FailureThrowsCheckError) {
    EXPECT_THROW(CPT_CHECK(false, "nope"), CheckError);
}

TEST(CheckTest, CheckErrorIsInvalidArgumentAndLogicError) {
    // The sweep converted throw sites that used to raise std::invalid_argument
    // and std::logic_error; both catch patterns must keep working.
    EXPECT_THROW(CPT_CHECK(false, "x"), std::invalid_argument);
    EXPECT_THROW(CPT_CHECK(false, "x"), std::logic_error);
}

TEST(CheckTest, MessageCarriesFileLineExprAndDetail) {
    try {
        CPT_CHECK(2 < 1, "custom detail ", 42);
        FAIL() << "did not throw";
    } catch (const CheckError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("check_test.cpp"), std::string::npos) << what;
        EXPECT_NE(what.find("CHECK failed"), std::string::npos) << what;
        EXPECT_NE(what.find("2 < 1"), std::string::npos) << what;
        EXPECT_NE(what.find("custom detail 42"), std::string::npos) << what;
    }
}

TEST(CheckTest, ComparisonMacroFormatsBothOperands) {
    const std::size_t got = 3;
    const std::size_t want = 7;
    try {
        CPT_CHECK_EQ(got, want, " widget count");
        FAIL() << "did not throw";
    } catch (const CheckError& e) {
        const std::string what = e.what();
        EXPECT_NE(what.find("(3 vs 7)"), std::string::npos) << what;
        EXPECT_NE(what.find("widget count"), std::string::npos) << what;
        EXPECT_NE(what.find("got == want"), std::string::npos) << what;
    }
}

TEST(CheckTest, ComparisonOperandsEvaluateOnce) {
    int calls = 0;
    auto next = [&calls] { return ++calls; };
    CPT_CHECK_LE(next(), 10);
    EXPECT_EQ(calls, 1);
}

TEST(CheckTest, FiniteAcceptsFiniteRange) {
    const std::vector<float> v{0.0f, -1.5f, 3e30f};
    EXPECT_NO_THROW(CPT_CHECK_FINITE(v, "vector"));
    EXPECT_NO_THROW(CPT_CHECK_FINITE(1.0, "scalar"));
}

TEST(CheckTest, FiniteRejectsNanAndNamesIndex) {
    std::vector<float> v{1.0f, 2.0f, std::numeric_limits<float>::quiet_NaN(), 4.0f};
    try {
        CPT_CHECK_FINITE(v, "loss buffer");
        FAIL() << "did not throw";
    } catch (const CheckError& e) {
        const std::string what = e.what();
        // The message names the buffer and the offending index.
        EXPECT_NE(what.find("loss buffer[2]"), std::string::npos) << what;
    }
}

TEST(CheckTest, FiniteRejectsInfinity) {
    const double inf = std::numeric_limits<double>::infinity();
    EXPECT_THROW(CPT_CHECK_FINITE(inf, "scalar"), CheckError);
    EXPECT_THROW(CPT_CHECK_FINITE(-inf, "scalar"), CheckError);
}

TEST(CheckTest, DebugChecksMatchBuildFlag) {
#ifdef CPT_DEBUG_CHECKS
    EXPECT_TRUE(util::kDebugChecksEnabled);
    EXPECT_THROW(CPT_DCHECK(false, "debug check"), CheckError);
#else
    EXPECT_FALSE(util::kDebugChecksEnabled);
    // Compiled out: neither the condition nor its side effects run.
    int evaluations = 0;
    CPT_DCHECK(++evaluations < 0, "never evaluated");
    EXPECT_EQ(evaluations, 0);
#endif
}

TEST(CheckTest, EnumOperandsFormatAsUnderlyingValue) {
    enum class Color : int { kRed = 1, kBlue = 5 };
    try {
        CPT_CHECK_EQ(Color::kRed, Color::kBlue);
        FAIL() << "did not throw";
    } catch (const CheckError& e) {
        EXPECT_NE(std::string(e.what()).find("(1 vs 5)"), std::string::npos) << e.what();
    }
}

TEST(LogTest, WarnPrefixIsStable) {
    // The helper centralizes the "[cpt] warning:" prefix the Sampler/Trainer
    // degenerate-input paths rely on; pin it so grepping logs keeps working.
    EXPECT_EQ(std::string(util::kWarnPrefix), "[cpt] warning: ");
    EXPECT_EQ(std::string(util::kInfoPrefix), "[cpt] info: ");
}

}  // namespace
}  // namespace cpt
