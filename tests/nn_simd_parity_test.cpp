// Parity and determinism contract of the runtime-dispatched SIMD kernel
// layer (util/cpu.hpp, nn/gemm.hpp, nn/kernels.hpp):
//   * every available tier agrees with the scalar tier within tolerance
//     (GEMM, the m = 1 decode GEMV, and the fused elementwise kernels);
//   * softmax is bit-identical across tiers (its exp/sum stage is scalar on
//     every tier by design);
//   * within a fixed tier, kernels and the full Sampler::generate pipeline
//     are byte-identical across thread counts.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <random>
#include <vector>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "nn/gemm.hpp"
#include "nn/kernels.hpp"
#include "trace/synthetic.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {
namespace {

using util::SimdTier;

class TierGuard {
public:
    explicit TierGuard(SimdTier tier) : prev_(util::set_simd_tier(tier)) {}
    ~TierGuard() { util::set_simd_tier(prev_); }
    TierGuard(const TierGuard&) = delete;
    TierGuard& operator=(const TierGuard&) = delete;

private:
    SimdTier prev_;
};

std::vector<SimdTier> available_tiers() {
    std::vector<SimdTier> tiers{SimdTier::kScalar};
    if (util::simd_tier_available(SimdTier::kSse2)) tiers.push_back(SimdTier::kSse2);
    if (util::simd_tier_available(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
    return tiers;
}

std::vector<float> random_floats(std::size_t n, std::mt19937& gen, float lo = -1.0f,
                                 float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    std::vector<float> v(n);
    for (float& x : v) x = dist(gen);
    return v;
}

void expect_near_all(const std::vector<float>& got, const std::vector<float>& want, float tol,
                     const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        ASSERT_NEAR(got[i], want[i], tol) << what << " index " << i;
    }
}

void expect_same_bits(const std::vector<float>& a, const std::vector<float>& b,
                      const char* what) {
    ASSERT_EQ(a.size(), b.size()) << what;
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0) << what;
}

using GemmFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t, std::size_t,
                        util::ThreadPool*);

// Every tier must agree with the scalar tier within tolerance, and with
// itself (bitwise) across thread counts — for all three layouts, including
// the m = 1 shapes routed to the GEMV fast path.
TEST(SimdParityTest, GemmAgreesAcrossTiers) {
    const GemmFn fns[] = {gemm_nn, gemm_nt, gemm_tn};
    const char* names[] = {"gemm_nn", "gemm_nt", "gemm_tn"};
    const std::size_t shapes[][3] = {
        {1, 64, 256}, {1, 128, 128}, {1, 9, 64},  {1, 300, 31},
        {4, 16, 16},  {37, 48, 70},  {128, 64, 256}, {33, 17, 255},
    };
    std::mt19937 gen(11);
    util::ThreadPool pool1(1);
    util::ThreadPool pool4(4);
    for (const auto& s : shapes) {
        const std::size_t m = s[0], k = s[1], n = s[2];
        const auto a = random_floats(m * k, gen);
        const auto b = random_floats(k * n, gen);
        const auto c0 = random_floats(m * n, gen);
        for (std::size_t f = 0; f < 3; ++f) {
            std::vector<float> scalar_out;
            for (SimdTier tier : available_tiers()) {
                TierGuard guard(tier);
                auto c1 = c0;
                fns[f](a.data(), b.data(), c1.data(), m, k, n, &pool1);
                auto c4 = c0;
                fns[f](a.data(), b.data(), c4.data(), m, k, n, &pool4);
                expect_same_bits(c1, c4, names[f]);
                if (tier == SimdTier::kScalar) {
                    scalar_out = std::move(c1);
                } else {
                    // Inputs are in [-1, 1] and k <= 300, so 5e-4 comfortably
                    // covers FMA/reassociation drift between tiers.
                    expect_near_all(c1, scalar_out, 5e-4f, names[f]);
                }
            }
        }
    }
}

TEST(SimdParityTest, SoftmaxIsBitIdenticalAcrossTiers) {
    std::mt19937 gen(5);
    for (std::size_t len : {1u, 3u, 8u, 17u, 64u, 300u}) {
        const auto in = random_floats(len, gen, -6.0f, 6.0f);
        std::vector<float> scalar_out;
        for (SimdTier tier : available_tiers()) {
            TierGuard guard(tier);
            std::vector<float> out(len);
            kernels::softmax_row(in.data(), out.data(), len, len);
            if (tier == SimdTier::kScalar) {
                scalar_out = std::move(out);
            } else {
                expect_same_bits(out, scalar_out, "softmax_row");
            }
        }
    }
}

TEST(SimdParityTest, FusedKernelsAgreeAcrossTiers) {
    std::mt19937 gen(7);
    const std::size_t rows = 13;
    const std::size_t d = 100;  // exercises both the vector body and the tail
    const auto x = random_floats(rows * d, gen);
    const auto gain = random_floats(d, gen, 0.5f, 1.5f);
    const auto bias = random_floats(d, gen);
    util::ThreadPool pool1(1);
    util::ThreadPool pool4(4);

    struct Ref {
        std::vector<float> ln, ln_stats, biased, bias_gelu;
        float dot = 0.0f;
        std::vector<float> axpy;
    } ref;
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);

        std::vector<float> ln(rows * d);
        std::vector<float> ln_stats(rows * 2);
        kernels::layer_norm_rows(x.data(), ln.data(), gain.data(), bias.data(), rows, d, 1e-5f,
                                 ln_stats.data(), &pool1);
        std::vector<float> ln4(rows * d);
        std::vector<float> ln_stats4(rows * 2);
        kernels::layer_norm_rows(x.data(), ln4.data(), gain.data(), bias.data(), rows, d, 1e-5f,
                                 ln_stats4.data(), &pool4);
        expect_same_bits(ln, ln4, "layer_norm_rows threads");
        expect_same_bits(ln_stats, ln_stats4, "layer_norm stats threads");

        auto biased = x;
        kernels::add_bias_rows(biased.data(), bias.data(), rows, d, &pool1);
        auto biased4 = x;
        kernels::add_bias_rows(biased4.data(), bias.data(), rows, d, &pool4);
        expect_same_bits(biased, biased4, "add_bias_rows threads");

        auto bg = x;
        kernels::bias_gelu_rows(bg.data(), bias.data(), rows, d, &pool1);

        const float dot = kernels::dot(x.data(), x.data() + d, d);
        std::vector<float> ax(x.begin(), x.begin() + static_cast<std::ptrdiff_t>(d));
        kernels::axpy(0.37f, x.data() + d, ax.data(), d);

        if (tier == SimdTier::kScalar) {
            ref = {std::move(ln), std::move(ln_stats), std::move(biased), std::move(bg), dot,
                   std::move(ax)};
            continue;
        }
        expect_near_all(ln, ref.ln, 1e-5f, "layer_norm_rows");
        expect_near_all(ln_stats, ref.ln_stats, 1e-4f, "layer_norm stats");
        expect_near_all(biased, ref.biased, 0.0f, "add_bias_rows");  // same op order
        expect_near_all(bg, ref.bias_gelu, 1e-6f, "bias_gelu_rows");
        EXPECT_NEAR(dot, ref.dot, 1e-4f);
        expect_near_all(ax, ref.axpy, 1e-6f, "axpy");
    }
}

// The end-to-end acceptance pin: within any fixed tier, Sampler::generate is
// byte-identical across thread counts.
TEST(SimdParityTest, SamplerGenerateThreadInvariantPerTier) {
    trace::SyntheticWorldConfig wcfg;
    wcfg.population = {30, 0, 0};
    wcfg.seed = 21;
    const auto world = trace::SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng init(3);
    core::CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 48;
    cfg.head_hidden = 24;
    core::CptGpt model(tok, cfg, init);  // untrained: the contract is structural
    core::SamplerConfig scfg;
    scfg.batch = 6;
    const core::Sampler sampler(model, tok, world.initial_event_distribution(), scfg);

    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        util::set_global_threads(1);
        util::Rng g1(42);
        const auto one = sampler.generate(20, g1);
        util::set_global_threads(4);
        util::Rng g4(42);
        const auto four = sampler.generate(20, g4);
        util::set_global_threads(1);
        ASSERT_GT(one.streams.size(), 0u);
        ASSERT_EQ(one.streams.size(), four.streams.size());
        for (std::size_t i = 0; i < one.streams.size(); ++i) {
            const auto& sa = one.streams[i];
            const auto& sb = four.streams[i];
            ASSERT_EQ(sa.events.size(), sb.events.size())
                << "tier " << util::simd_tier_name(tier) << " stream " << i;
            for (std::size_t j = 0; j < sa.events.size(); ++j) {
                EXPECT_EQ(sa.events[j].type, sb.events[j].type);
                EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.events[j].timestamp),
                          std::bit_cast<std::uint64_t>(sb.events[j].timestamp))
                    << "tier " << util::simd_tier_name(tier) << " stream " << i << " event " << j;
            }
        }
    }
}

TEST(SimdParityTest, SetSimdTierRejectsUnavailable) {
    if (util::simd_tier_available(SimdTier::kAvx2)) GTEST_SKIP() << "all tiers available";
    EXPECT_THROW(util::set_simd_tier(SimdTier::kAvx2), std::logic_error);
}

}  // namespace
}  // namespace cpt::nn
