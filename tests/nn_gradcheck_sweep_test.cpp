// Parameterized gradient-check sweep: random composite networks mixing many
// ops, checked against finite differences across seeds and shapes. This
// complements the per-op checks in nn_autograd_test with whole-graph
// coverage (op interactions, shared subexpressions, deep chains).
#include <gtest/gtest.h>

#include <cmath>

#include "nn/modules.hpp"

namespace cpt::nn {
namespace {

struct SweepParam {
    std::uint64_t seed;
    std::size_t batch;
    std::size_t seq;
    std::size_t d_model;
    std::size_t heads;
};

class GradSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(GradSweepTest, TransformerBlockGradientsMatchFiniteDifferences) {
    const auto p = GetParam();
    util::Rng rng(p.seed);
    TransformerBlock block(p.d_model, p.heads, p.d_model * 2, rng);
    Var x = make_param(Tensor::randn(rng, {p.batch, p.seq, p.d_model}, 0.5f));

    auto loss_fn = [&]() -> float {
        Var y = block.forward(x);
        return mean_all(mul(y, y))->value[0];
    };

    Var y = block.forward(x);
    Var loss = mean_all(mul(y, y));
    auto params = block.parameters();
    params.push_back(x);
    zero_grad(params);
    backward(loss);

    // Spot-check a sample of coordinates per parameter against central
    // differences (full sweeps are covered per-op; here we test composition).
    util::Rng pick(p.seed * 31 + 7);
    const float h = 1e-2f;
    for (auto& param : params) {
        auto w = param->value.data();
        ASSERT_EQ(param->grad.numel(), param->value.numel());
        for (int probe = 0; probe < 4; ++probe) {
            const std::size_t j = pick.uniform_index(w.size());
            const float orig = w[j];
            w[j] = orig + h;
            const float up = loss_fn();
            w[j] = orig - h;
            const float down = loss_fn();
            w[j] = orig;
            const float numeric = (up - down) / (2.0f * h);
            const float analytic = param->grad[j];
            EXPECT_NEAR(analytic, numeric, 8e-3f + 0.08f * std::abs(numeric))
                << "seed " << p.seed << " coord " << j;
        }
    }
}

TEST_P(GradSweepTest, LstmChainGradientsMatchFiniteDifferences) {
    const auto p = GetParam();
    util::Rng rng(p.seed + 1000);
    LstmCell cell(p.d_model, p.d_model, rng);
    Var x0 = make_param(Tensor::randn(rng, {p.batch, p.d_model}, 0.5f));

    auto run = [&]() {
        auto state = cell.zero_state(p.batch);
        Var h;
        for (std::size_t t = 0; t < p.seq; ++t) {
            state = cell.step(t == 0 ? x0 : state.h, state);
            h = state.h;
        }
        return mean_all(mul(h, h));
    };
    Var loss = run();
    auto params = cell.parameters();
    params.push_back(x0);
    zero_grad(params);
    backward(loss);

    util::Rng pick(p.seed * 17 + 3);
    const float h = 1e-2f;
    for (auto& param : params) {
        auto w = param->value.data();
        for (int probe = 0; probe < 3; ++probe) {
            const std::size_t j = pick.uniform_index(w.size());
            const float orig = w[j];
            w[j] = orig + h;
            const float up = run()->value[0];
            w[j] = orig - h;
            const float down = run()->value[0];
            w[j] = orig;
            const float numeric = (up - down) / (2.0f * h);
            EXPECT_NEAR(param->grad[j], numeric, 8e-3f + 0.08f * std::abs(numeric));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Shapes, GradSweepTest,
                         ::testing::Values(SweepParam{1, 2, 3, 8, 2},
                                           SweepParam{2, 1, 5, 12, 3},
                                           SweepParam{3, 3, 2, 16, 4},
                                           SweepParam{4, 2, 4, 8, 1},
                                           SweepParam{5, 1, 6, 6, 2}));

}  // namespace
}  // namespace cpt::nn
