#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/ascii.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace cpt::util {
namespace {

TEST(RngTest, Deterministic) {
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformRange) {
    Rng rng(5);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformIndexCoversAllValuesUnbiased) {
    Rng rng(6);
    std::vector<int> counts(7, 0);
    const int n = 70000;
    for (int i = 0; i < n; ++i) ++counts[rng.uniform_index(7)];
    for (int c : counts) {
        EXPECT_GT(c, n / 7 * 0.9);
        EXPECT_LT(c, n / 7 * 1.1);
    }
}

TEST(RngTest, NormalMoments) {
    Rng rng(7);
    std::vector<double> xs(50000);
    for (auto& x : xs) x = rng.normal(2.0, 3.0);
    const Summary s = summarize(xs);
    EXPECT_NEAR(s.mean, 2.0, 0.1);
    EXPECT_NEAR(s.stddev, 3.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
    Rng rng(8);
    std::vector<double> xs(50000);
    for (auto& x : xs) x = rng.exponential(0.5);
    EXPECT_NEAR(summarize(xs).mean, 2.0, 0.1);
}

TEST(RngTest, LognormalMedian) {
    Rng rng(9);
    std::vector<double> xs(50001);
    for (auto& x : xs) x = rng.lognormal(std::log(10.0), 0.9);
    std::sort(xs.begin(), xs.end());
    EXPECT_NEAR(xs[xs.size() / 2], 10.0, 0.5);
}

TEST(RngTest, CategoricalFollowsWeights) {
    Rng rng(10);
    const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i) ++counts[rng.categorical(std::span<const double>(w))];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / static_cast<double>(n), 0.6, 0.01);
}

TEST(RngTest, CategoricalRejectsDegenerateWeights) {
    Rng rng(11);
    const std::vector<double> zero{0.0, 0.0};
    const std::vector<double> negative{1.0, -0.5};
    EXPECT_THROW(rng.categorical(std::span<const double>(zero)), std::invalid_argument);
    EXPECT_THROW(rng.categorical(std::span<const double>(negative)), std::invalid_argument);
}

TEST(RngTest, ForkDecorrelates) {
    Rng parent(12);
    Rng a = parent.fork(1);
    Rng b = parent.fork(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i) {
        if (a.next_u64() == b.next_u64()) ++equal;
    }
    EXPECT_LT(equal, 2);
}

TEST(EcdfTest, EvaluatesStepFunction) {
    Ecdf cdf({1.0, 2.0, 3.0, 4.0});
    EXPECT_DOUBLE_EQ(cdf(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf(1.0), 0.25);
    EXPECT_DOUBLE_EQ(cdf(2.5), 0.5);
    EXPECT_DOUBLE_EQ(cdf(4.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf(9.0), 1.0);
}

TEST(EcdfTest, Quantiles) {
    Ecdf cdf({10.0, 20.0, 30.0, 40.0});
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 20.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 40.0);
}

TEST(MaxYDistanceTest, IdenticalSamplesGiveZero) {
    const std::vector<double> xs{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(max_cdf_y_distance(xs, xs), 0.0);
}

TEST(MaxYDistanceTest, DisjointSamplesGiveOne) {
    const std::vector<double> a{1, 2, 3};
    const std::vector<double> b{10, 20, 30};
    EXPECT_DOUBLE_EQ(max_cdf_y_distance(a, b), 1.0);
}

TEST(MaxYDistanceTest, KnownValue) {
    // F_a jumps to 1 at 1; F_b jumps 0.5 at 2, 1.0 at 3. At x=1 the gap is 1.
    const std::vector<double> a{1, 1};
    const std::vector<double> b{2, 3};
    EXPECT_DOUBLE_EQ(max_cdf_y_distance(a, b), 1.0);
    // Interleaved: a={1,3}, b={2,4}: at 1: 0.5-0=0.5.
    EXPECT_DOUBLE_EQ(max_cdf_y_distance(std::vector<double>{1.0, 3.0}, std::vector<double>{2.0, 4.0}),
                     0.5);
}

TEST(MaxYDistanceTest, SymmetricAndBounded) {
    Rng rng(13);
    std::vector<double> a(100);
    std::vector<double> b(137);
    for (auto& x : a) x = rng.normal();
    for (auto& x : b) x = rng.normal(0.3, 1.2);
    const double d1 = max_cdf_y_distance(a, b);
    const double d2 = max_cdf_y_distance(b, a);
    EXPECT_DOUBLE_EQ(d1, d2);
    EXPECT_GE(d1, 0.0);
    EXPECT_LE(d1, 1.0);
}

TEST(MaxYDistanceTest, EmptyHandling) {
    const std::vector<double> a{1.0};
    const std::vector<double> none;
    EXPECT_DOUBLE_EQ(max_cdf_y_distance(a, none), 1.0);
    EXPECT_DOUBLE_EQ(max_cdf_y_distance(none, none), 0.0);
}

TEST(HistogramTest, CountsSumToSampleSize) {
    Rng rng(14);
    std::vector<double> xs(1000);
    for (auto& x : xs) x = rng.lognormal(2.0, 1.0);
    const Histogram h = make_histogram(xs, 20, true);
    std::size_t total = 0;
    for (auto c : h.counts) total += c;
    EXPECT_EQ(total, xs.size());
    EXPECT_EQ(h.edges.size(), 21u);
}

TEST(StatsTest, NormalizeAndTotalVariation) {
    const std::vector<double> counts{2.0, 6.0, 2.0};
    const auto p = normalize(counts);
    EXPECT_DOUBLE_EQ(p[0], 0.2);
    EXPECT_DOUBLE_EQ(p[1], 0.6);
    const std::vector<double> q{0.2, 0.2, 0.6};
    EXPECT_NEAR(total_variation(p, q), 0.4, 1e-12);
}

TEST(CsvTest, SplitJoinRoundTrip) {
    const std::string line = "a,b,,d";
    const auto parts = split(line, ',');
    ASSERT_EQ(parts.size(), 4u);
    EXPECT_EQ(parts[2], "");
    EXPECT_EQ(join(parts, ','), line);
}

TEST(CsvTest, ParseStrict) {
    EXPECT_DOUBLE_EQ(parse_double(" 2.5 "), 2.5);
    EXPECT_EQ(parse_int("-42"), -42);
    EXPECT_THROW(parse_double("2.5x"), std::invalid_argument);
    EXPECT_THROW(parse_int(""), std::invalid_argument);
}

TEST(TextTableTest, RendersAlignedColumns) {
    TextTable t({"name", "value"});
    t.add_row({"alpha", "1"});
    t.add_row({"b", "22"});
    const std::string r = t.render();
    EXPECT_NE(r.find("alpha"), std::string::npos);
    EXPECT_NE(r.find("22"), std::string::npos);
    EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(AsciiTest, FmtHelpers) {
    EXPECT_EQ(fmt(1.2345, 2), "1.23");
    EXPECT_EQ(fmt_pct(0.123456, 1), "12.3%");
}

TEST(AsciiTest, CdfPlotMentionsLegend) {
    Ecdf cdf({1.0, 5.0, 25.0});
    const std::string plot = render_cdf_plot({{"real", cdf}});
    EXPECT_NE(plot.find("real"), std::string::npos);
}

TEST(LatencyHistogramTest, EmptyIsAllZero) {
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.quantile(0.5), 0.0);
}

TEST(LatencyHistogramTest, QuantilesWithinGrowthError) {
    // Uniform grid over [1ms, 1s): the bucketed quantile must sit within one
    // growth factor of the exact sample quantile.
    LatencyHistogram h;
    std::vector<double> xs;
    for (int i = 0; i < 1000; ++i) {
        const double x = 1e-3 + (1.0 - 1e-3) * i / 999.0;
        xs.push_back(x);
        h.record(x);
    }
    EXPECT_EQ(h.count(), 1000u);
    for (double q : {0.5, 0.95, 0.99}) {
        const double exact = quantile(xs, q);
        const double approx = h.quantile(q);
        // Upper-edge convention with growth 1.05; allow one bucket of slack
        // for rank discretization between the two quantile definitions.
        EXPECT_GE(approx, exact * 0.94) << q;
        EXPECT_LE(approx, exact * 1.12) << q;
    }
    const auto p = h.percentiles();
    EXPECT_EQ(p.p50, h.quantile(0.50));
    EXPECT_EQ(p.p95, h.quantile(0.95));
    EXPECT_EQ(p.p99, h.quantile(0.99));
    EXPECT_LE(p.p50, p.p95);
    EXPECT_LE(p.p95, p.p99);
}

TEST(LatencyHistogramTest, MeanMaxAndNegativeClamp) {
    LatencyHistogram h;
    h.record(0.010);
    h.record(0.030);
    h.record(-1.0);  // clamped to 0, lands in the underflow bucket
    EXPECT_EQ(h.count(), 3u);
    EXPECT_NEAR(h.total(), 0.040, 1e-12);
    EXPECT_NEAR(h.mean(), 0.040 / 3.0, 1e-12);
    EXPECT_NEAR(h.max(), 0.030, 1e-12);
    // The clamped negative sits in the underflow bucket, whose upper edge is
    // min_value — the lowest quantile reports that edge.
    EXPECT_NEAR(h.quantile(0.0), 1e-6, 1e-15);
}

TEST(LatencyHistogramTest, OverflowBucketReportsExactMax) {
    LatencyHistogram h(1e-6, 1.05, 16);  // tiny range: top edge ~ 2.1e-6
    h.record(123.0);
    EXPECT_NEAR(h.quantile(0.99), 123.0, 1e-9);
    EXPECT_NEAR(h.max(), 123.0, 1e-9);
}

TEST(LatencyHistogramTest, MergeMatchesCombinedRecording) {
    LatencyHistogram a, b, both;
    Rng rng(5);
    for (int i = 0; i < 500; ++i) {
        const double x = rng.exponential(0.05);
        (i % 2 == 0 ? a : b).record(x);
        both.record(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_NEAR(a.total(), both.total(), 1e-9);
    EXPECT_EQ(a.quantile(0.5), both.quantile(0.5));
    EXPECT_EQ(a.quantile(0.99), both.quantile(0.99));
    EXPECT_EQ(a.max(), both.max());

    LatencyHistogram other_geometry(1e-3, 1.1, 100);
    EXPECT_THROW(a.merge(other_geometry), std::invalid_argument);
}

TEST(CliTest, ParsesArgsWithFallback) {
    const char* argv[] = {"prog", "--ues=500", "--full"};
    Options opt(3, argv);
    EXPECT_EQ(opt.get_int("ues", 10), 500);
    EXPECT_TRUE(opt.get_flag("full"));
    EXPECT_EQ(opt.get_int("absent", 7), 7);
    EXPECT_EQ(opt.get("name", "x"), "x");
}

}  // namespace
}  // namespace cpt::util
