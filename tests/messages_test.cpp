// Tests for the event -> 3GPP message expansion.
#include <gtest/gtest.h>

#include "cellular/messages.hpp"

namespace cpt::cellular {
namespace {

TEST(MessagesTest, EveryEventHasASequence) {
    for (const auto gen : {Generation::kLte4G, Generation::kNr5G}) {
        const auto& vocab = vocabulary(gen);
        for (std::size_t e = 0; e < vocab.size(); ++e) {
            const auto msgs = messages_for(gen, static_cast<EventId>(e));
            EXPECT_FALSE(msgs.empty()) << vocab.name(static_cast<EventId>(e));
            for (const auto& m : msgs) {
                EXPECT_FALSE(m.name.empty());
                EXPECT_GT(m.bytes, 0u);
                EXPECT_NE(m.from, m.to);
            }
        }
    }
    EXPECT_THROW(messages_for(Generation::kLte4G, 99), std::invalid_argument);
}

TEST(MessagesTest, AttachIsTheHeaviestProcedure) {
    // Attach runs authentication + session establishment: most messages and
    // bytes of any 4G procedure (this is what justifies the MCN cost model).
    const auto attach_msgs = messages_for(Generation::kLte4G, lte::kAtch).size();
    const auto attach_bytes = total_bytes(Generation::kLte4G, lte::kAtch);
    for (EventId e = 0; e < lte::kNumEvents; ++e) {
        if (e == lte::kAtch) continue;
        EXPECT_GE(attach_msgs, messages_for(Generation::kLte4G, e).size());
        EXPECT_GT(attach_bytes, total_bytes(Generation::kLte4G, e));
    }
}

TEST(MessagesTest, ProceduresTouchTheMcn) {
    // Every sequence includes at least one MCN-side message (RAN-only events
    // are excluded from the model by construction, paper §2.1 note 1).
    for (const auto gen : {Generation::kLte4G, Generation::kNr5G}) {
        const auto& vocab = vocabulary(gen);
        for (std::size_t e = 0; e < vocab.size(); ++e) {
            EXPECT_GT(mcn_message_count(gen, static_cast<EventId>(e)), 0u);
        }
    }
}

TEST(MessagesTest, AuthenticationInvolvesHss) {
    bool hss_seen = false;
    for (const auto& m : messages_for(Generation::kLte4G, lte::kAtch)) {
        if (m.from == Entity::kHss || m.to == Entity::kHss) hss_seen = true;
    }
    EXPECT_TRUE(hss_seen);
    // Service request does not touch the HSS (no re-authentication).
    for (const auto& m : messages_for(Generation::kLte4G, lte::kSrvReq)) {
        EXPECT_NE(m.from, Entity::kHss);
        EXPECT_NE(m.to, Entity::kHss);
    }
}

TEST(MessagesTest, ExpandPreservesOrderAndSpacing) {
    const std::vector<ControlEvent> events{{0.0, lte::kSrvReq}, {10.0, lte::kS1ConnRel}};
    const auto msgs = expand(Generation::kLte4G, events, 0.005);
    const auto n_srv = messages_for(Generation::kLte4G, lte::kSrvReq).size();
    const auto n_rel = messages_for(Generation::kLte4G, lte::kS1ConnRel).size();
    ASSERT_EQ(msgs.size(), n_srv + n_rel);
    // Monotone timestamps; second procedure starts at its event time.
    double prev = -1.0;
    for (const auto& m : msgs) {
        EXPECT_GE(m.timestamp, prev);
        prev = m.timestamp;
    }
    EXPECT_DOUBLE_EQ(msgs[0].timestamp, 0.0);
    EXPECT_DOUBLE_EQ(msgs[n_srv].timestamp, 10.0);
    EXPECT_NEAR(msgs[1].timestamp, 0.005, 1e-12);
}

TEST(MessagesTest, FiveGHandoverHasNoTauFollowup) {
    // 5G has no TAU; the HO procedure is self-contained.
    const auto msgs = messages_for(Generation::kNr5G, nr::kHo);
    for (const auto& m : msgs) {
        EXPECT_EQ(m.name.find("TAU"), std::string_view::npos);
    }
}

}  // namespace
}  // namespace cpt::cellular
