// Finite-difference gradient checks for every differentiable op, plus
// structural tests of the tape (accumulation, pruning, shape validation).
#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/autograd.hpp"

namespace cpt::nn {
namespace {

using BuildFn = std::function<Var(const std::vector<Var>&)>;

// Checks d(loss)/d(leaf) for every element of every leaf against central
// finite differences. Loss must be scalar.
void check_gradients(const std::vector<Var>& leaves, const BuildFn& build, float h = 1e-2f,
                     float rel_tol = 6e-2f, float abs_tol = 6e-3f) {
    Var loss = build(leaves);
    ASSERT_EQ(loss->value.numel(), 1u);
    zero_grad(leaves);
    backward(loss);
    for (std::size_t li = 0; li < leaves.size(); ++li) {
        auto& leaf = leaves[li];
        ASSERT_TRUE(leaf->requires_grad);
        ASSERT_EQ(leaf->grad.numel(), leaf->value.numel()) << "no grad for leaf " << li;
        auto w = leaf->value.data();
        for (std::size_t j = 0; j < w.size(); ++j) {
            const float orig = w[j];
            w[j] = orig + h;
            const float up = build(leaves)->value[0];
            w[j] = orig - h;
            const float down = build(leaves)->value[0];
            w[j] = orig;
            const float numeric = (up - down) / (2.0f * h);
            const float analytic = leaf->grad[j];
            const float tol = abs_tol + rel_tol * std::abs(numeric);
            EXPECT_NEAR(analytic, numeric, tol) << "leaf " << li << " element " << j;
        }
    }
}

std::vector<Var> leaves_randn(util::Rng& rng, const std::vector<Shape>& shapes,
                              float stddev = 0.8f) {
    std::vector<Var> out;
    for (const auto& s : shapes) out.push_back(make_param(Tensor::randn(rng, s, stddev)));
    return out;
}

TEST(AutogradTest, AddSubMulScale) {
    util::Rng rng(7);
    auto leaves = leaves_randn(rng, {{3, 4}, {3, 4}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        return mean_all(mul(add(v[0], v[1]), sub(scale(v[0], 1.7f), add_scalar(v[1], 0.3f))));
    });
}

TEST(AutogradTest, AddBias) {
    util::Rng rng(8);
    auto leaves = leaves_randn(rng, {{2, 3, 4}, {4}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        return mean_all(mul(add_bias(v[0], v[1]), add_bias(v[0], v[1])));
    });
}

TEST(AutogradTest, Matmul2D) {
    util::Rng rng(9);
    auto leaves = leaves_randn(rng, {{3, 4}, {4, 2}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        return mean_all(matmul(v[0], v[1]));
    });
}

TEST(AutogradTest, MatmulBatched) {
    util::Rng rng(10);
    auto leaves = leaves_randn(rng, {{2, 3, 3, 4}, {2, 3, 4, 2}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        // Square the output so gradients are input-dependent.
        Var y = matmul(v[0], v[1]);
        return mean_all(mul(y, y));
    });
}

TEST(AutogradTest, TransposeReshape) {
    util::Rng rng(11);
    auto leaves = leaves_randn(rng, {{2, 3, 4}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var t = transpose_last2(v[0]);            // [2,4,3]
        Var r = reshape(t, {4, 6});
        return mean_all(mul(r, r));
    });
}

TEST(AutogradTest, SoftmaxLastdim) {
    util::Rng rng(12);
    auto leaves = leaves_randn(rng, {{3, 5}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var y = softmax_lastdim(v[0]);
        return mean_all(mul(y, y));
    });
}

TEST(AutogradTest, SoftmaxCausal) {
    util::Rng rng(13);
    auto leaves = leaves_randn(rng, {{2, 4, 4}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var y = softmax_causal(v[0]);
        return mean_all(mul(y, y));
    });
}

TEST(AutogradTest, SoftmaxCausalMasksUpperTriangle) {
    util::Rng rng(14);
    Var x = make_var(Tensor::randn(rng, {1, 3, 3}));
    Var y = softmax_causal(x);
    // Row r: entries with col > r must be exactly zero; the rest sum to 1.
    for (std::size_t r = 0; r < 3; ++r) {
        float total = 0.0f;
        for (std::size_t c = 0; c < 3; ++c) {
            const float p = y->value[r * 3 + c];
            if (c > r) {
                EXPECT_EQ(p, 0.0f);
            } else {
                EXPECT_GT(p, 0.0f);
                total += p;
            }
        }
        EXPECT_NEAR(total, 1.0f, 1e-5f);
    }
}

TEST(AutogradTest, LayerNorm) {
    util::Rng rng(15);
    auto leaves = leaves_randn(rng, {{2, 3, 6}, {6}, {6}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var y = layer_norm(v[0], v[1], v[2]);
        return mean_all(mul(y, y));
    }, 5e-3f, 8e-2f, 1e-2f);
}

TEST(AutogradTest, PointwiseOps) {
    util::Rng rng(16);
    auto leaves = leaves_randn(rng, {{3, 4}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var y = gelu(v[0]);
        y = add(y, sigmoid(v[0]));
        y = add(y, tanh_op(v[0]));
        y = add(y, relu(add_scalar(v[0], 0.31f)));  // offset keeps x away from the kink
        return mean_all(mul(y, y));
    });
}

TEST(AutogradTest, ExpLog) {
    util::Rng rng(17);
    auto leaves = leaves_randn(rng, {{3, 3}}, 0.4f);
    check_gradients(leaves, [](const std::vector<Var>& v) {
        // log of a strictly positive function of x.
        return mean_all(log_op(add_scalar(exp_op(v[0]), 0.5f)));
    });
}

TEST(AutogradTest, SliceConcat) {
    util::Rng rng(18);
    auto leaves = leaves_randn(rng, {{2, 6}, {2, 3}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var a = slice_lastdim(v[0], 1, 3);
        Var b = concat_lastdim({a, v[1]});
        return mean_all(mul(b, b));
    });
}

TEST(AutogradTest, AddPosition) {
    util::Rng rng(19);
    auto leaves = leaves_randn(rng, {{2, 3, 4}, {5, 4}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var y = add_position(v[0], v[1]);
        return mean_all(mul(y, y));
    });
}

TEST(AutogradTest, SplitMergeHeads) {
    util::Rng rng(20);
    auto leaves = leaves_randn(rng, {{2, 3, 8}});
    check_gradients(leaves, [](const std::vector<Var>& v) {
        Var y = merge_heads(split_heads(v[0], 2));
        // split followed by merge is the identity.
        return mean_all(mul(y, v[0]));
    });
}

TEST(AutogradTest, SplitHeadsLayout) {
    // Verify the permutation concretely on a hand-built tensor.
    std::vector<float> vals(2 * 2 * 4);
    for (std::size_t i = 0; i < vals.size(); ++i) vals[i] = static_cast<float>(i);
    Var x = make_var(Tensor::from(vals, {2, 2, 4}));  // [B=2, T=2, D=4]
    Var y = split_heads(x, 2);                        // [B=2, H=2, T=2, Dh=2]
    ASSERT_EQ(y->value.shape(), (Shape{2, 2, 2, 2}));
    // batch 0, head 0, t=0 should be elements {0, 1}; head 1 t=0 -> {2, 3};
    // head 0 t=1 -> {4, 5}.
    EXPECT_EQ(y->value[0], 0.0f);
    EXPECT_EQ(y->value[1], 1.0f);
    EXPECT_EQ(y->value[2], 4.0f);  // head 0, t=1, first
    EXPECT_EQ(y->value[4], 2.0f);  // head 1, t=0, first
}

TEST(AutogradTest, CrossEntropy) {
    util::Rng rng(21);
    auto leaves = leaves_randn(rng, {{4, 3}});
    const std::vector<int> targets{0, 2, kIgnoreIndex, 1};
    check_gradients(leaves, [&targets](const std::vector<Var>& v) {
        return cross_entropy(v[0], targets);
    });
}

TEST(AutogradTest, CrossEntropyIgnoresMaskedRows) {
    Var logits = make_param(Tensor::from({5.0f, -5.0f, 0.0f, 0.0f}, {2, 2}));
    Var loss_all = cross_entropy(logits, {0, 1});
    Var loss_masked = cross_entropy(logits, {0, kIgnoreIndex});
    // Row 0 predicts class 0 with huge confidence -> tiny loss; row 1 is
    // uniform -> log(2). Masking row 1 must remove that contribution.
    EXPECT_NEAR(loss_masked->value[0], 0.0f, 1e-3f);
    EXPECT_NEAR(loss_all->value[0], std::log(2.0f) / 2.0f, 1e-3f);
}

TEST(AutogradTest, GaussianNll) {
    util::Rng rng(22);
    auto leaves = leaves_randn(rng, {{4}, {4}});
    const Tensor target = Tensor::from({0.2f, -0.5f, 1.0f, 0.0f}, {4});
    const std::vector<float> mask{1.0f, 1.0f, 0.0f, 1.0f};
    check_gradients(leaves, [&](const std::vector<Var>& v) {
        return gaussian_nll(v[0], v[1], target, mask);
    });
}

TEST(AutogradTest, GaussianNllValue) {
    // Hand check: mu=0, logvar=0 (var=1), x=2 -> 0.5*(0 + 4) = 2.
    Var mu = make_param(Tensor::from({0.0f}, {1}));
    Var lv = make_param(Tensor::from({0.0f}, {1}));
    Var loss = gaussian_nll(mu, lv, Tensor::from({2.0f}, {1}), {1.0f});
    EXPECT_NEAR(loss->value[0], 2.0f, 1e-5f);
}

TEST(AutogradTest, MseMasked) {
    util::Rng rng(23);
    auto leaves = leaves_randn(rng, {{5}});
    const Tensor target = Tensor::from({0.1f, 0.2f, 0.3f, 0.4f, 0.5f}, {5});
    const std::vector<float> mask{1, 0, 1, 1, 0};
    check_gradients(leaves, [&](const std::vector<Var>& v) {
        return mse_masked(v[0], target, mask);
    });
}

TEST(AutogradTest, BceWithLogits) {
    util::Rng rng(24);
    auto leaves = leaves_randn(rng, {{6}});
    const std::vector<float> targets{1, 0, 1, 1, 0, 0};
    check_gradients(leaves, [&](const std::vector<Var>& v) {
        return bce_with_logits(v[0], targets);
    });
}

TEST(AutogradTest, GradAccumulatesAcrossBackwardCalls) {
    Var x = make_param(Tensor::from({2.0f}, {1}));
    Var l1 = mean_all(mul(x, x));
    backward(l1);
    const float g1 = x->grad[0];
    Var l2 = mean_all(mul(x, x));
    backward(l2);
    EXPECT_NEAR(x->grad[0], 2.0f * g1, 1e-5f);
    zero_grad(std::vector<Var>{x});
    EXPECT_EQ(x->grad[0], 0.0f);
}

TEST(AutogradTest, ConstantBranchesAreNotDifferentiated) {
    Var x = make_param(Tensor::from({1.0f, 2.0f}, {2}));
    Var c = make_var(Tensor::from({3.0f, 4.0f}, {2}));
    Var loss = mean_all(mul(x, c));
    backward(loss);
    EXPECT_EQ(c->grad.numel(), 0u);  // never allocated
    EXPECT_NEAR(x->grad[0], 1.5f, 1e-5f);
    EXPECT_NEAR(x->grad[1], 2.0f, 1e-5f);
}

TEST(AutogradTest, DiamondGraphAccumulates) {
    // loss = mean(x*x + x*x) -> dx = 4x/n
    Var x = make_param(Tensor::from({1.0f, -2.0f}, {2}));
    Var a = mul(x, x);
    Var loss = mean_all(add(a, a));
    backward(loss);
    EXPECT_NEAR(x->grad[0], 4.0f * 1.0f / 2.0f, 1e-5f);
    EXPECT_NEAR(x->grad[1], 4.0f * -2.0f / 2.0f, 1e-5f);
}

TEST(AutogradTest, BackwardRejectsNonScalarRoot) {
    Var x = make_param(Tensor::zeros({2, 2}));
    EXPECT_THROW(backward(mul(x, x)), std::invalid_argument);
}

TEST(AutogradTest, ShapeMismatchThrows) {
    Var a = make_var(Tensor::zeros({2, 3}));
    Var b = make_var(Tensor::zeros({3, 2}));
    EXPECT_THROW(add(a, b), std::invalid_argument);
    EXPECT_THROW(mul(a, b), std::invalid_argument);
    EXPECT_THROW(matmul(a, a), std::invalid_argument);
    EXPECT_THROW(slice_lastdim(a, 2, 2), std::invalid_argument);
}

}  // namespace
}  // namespace cpt::nn
