// Int8 weight-quantized decode tier + fp16 KV cache (DESIGN.md §12).
//
// The quantized matmul carries a STRONGER contract than the fp32 kernels:
// its integer dots are exact and its float epilogue is one fixed scalar
// expression, so gemm_q8_nt output must be BYTE-identical across
// scalar/sse2/avx2 and across thread counts. The fp16 converters must be
// bit-identical to IEEE binary16 round-to-nearest-even on every tier
// (hardware F16C and the software fallback agree). On top of the kernel
// contracts, this suite bounds the numeric drift the quantized pipeline may
// introduce: a per-logit error bound for gemv_q8 vs fp32, and a Table-2
// fidelity-drift bound for the int8 sampler vs the fp32 sampler on the same
// seeds. Runs under `ctest -L quant`; scripts/check.sh reruns it per SIMD
// tier (CPT_SIMD=scalar|sse2|avx2).
#include <gtest/gtest.h>

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <random>
#include <vector>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "metrics/fidelity.hpp"
#include "nn/fp16.hpp"
#include "nn/kernels.hpp"
#include "nn/quant.hpp"
#include "nn/serialize.hpp"
#include "trace/synthetic.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {
namespace {

using util::SimdTier;

class TierGuard {
public:
    explicit TierGuard(SimdTier tier) : prev_(util::set_simd_tier(tier)) {}
    ~TierGuard() { util::set_simd_tier(prev_); }
    TierGuard(const TierGuard&) = delete;
    TierGuard& operator=(const TierGuard&) = delete;

private:
    SimdTier prev_;
};

std::vector<SimdTier> available_tiers() {
    std::vector<SimdTier> tiers{SimdTier::kScalar};
    if (util::simd_tier_available(SimdTier::kSse2)) tiers.push_back(SimdTier::kSse2);
    if (util::simd_tier_available(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
    return tiers;
}

std::vector<float> random_floats(std::size_t n, std::mt19937& gen, float lo = -1.0f,
                                 float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    std::vector<float> v(n);
    for (float& x : v) x = dist(gen);
    return v;
}

// ---- Precision knob --------------------------------------------------------

TEST(PrecisionTest, NamesAndParsing) {
    EXPECT_STREQ(precision_name(Precision::kFp32), "fp32");
    EXPECT_STREQ(precision_name(Precision::kInt8W8A32), "int8_w8a32");
    EXPECT_EQ(parse_precision("fp32"), Precision::kFp32);
    EXPECT_EQ(parse_precision("int8"), Precision::kInt8W8A32);
    EXPECT_EQ(parse_precision("int8_w8a32"), Precision::kInt8W8A32);
    EXPECT_THROW(parse_precision("bf16"), std::invalid_argument);
}

// ---- fp16 converter --------------------------------------------------------

// decode(encode(h)) is lossless for every non-NaN half — the decoder is an
// exact widening and the encoder must invert it.
TEST(Fp16Test, RoundTripsEveryNonNanHalf) {
    for (std::uint32_t h = 0; h <= 0xffff; ++h) {
        const auto half = static_cast<std::uint16_t>(h);
        const bool is_nan = (half & 0x7c00u) == 0x7c00u && (half & 0x03ffu) != 0;
        if (is_nan) continue;
        const float widened = fp16_decode_one(half);
        EXPECT_EQ(fp16_encode_one(widened), half) << "half 0x" << std::hex << h;
    }
}

TEST(Fp16Test, EncodeMatchesIeeeRoundToNearestEven) {
    // Exact values.
    EXPECT_EQ(fp16_encode_one(0.0f), 0x0000u);
    EXPECT_EQ(fp16_encode_one(-0.0f), 0x8000u);
    EXPECT_EQ(fp16_encode_one(1.0f), 0x3c00u);
    EXPECT_EQ(fp16_encode_one(-2.0f), 0xc000u);
    EXPECT_EQ(fp16_encode_one(65504.0f), 0x7bffu);  // largest finite half
    // Overflow and ties. 65520 is the midpoint between 65504 and the first
    // unrepresentable step; RNE rounds it up into infinity.
    EXPECT_EQ(fp16_encode_one(65520.0f), 0x7c00u);
    EXPECT_EQ(fp16_encode_one(1e9f), 0x7c00u);
    EXPECT_EQ(fp16_encode_one(-1e9f), 0xfc00u);
    EXPECT_EQ(fp16_encode_one(std::numeric_limits<float>::infinity()), 0x7c00u);
    // Normal-range tie: 1 + 2^-11 is exactly between 0x3c00 and 0x3c01 ->
    // even (0x3c00); 1 + 3*2^-11 is between 0x3c01 and 0x3c02 -> even.
    EXPECT_EQ(fp16_encode_one(1.0f + 0x1.0p-11f), 0x3c00u);
    EXPECT_EQ(fp16_encode_one(1.0f + 0x3.0p-11f), 0x3c02u);
    // Subnormals: 2^-24 is the smallest half subnormal; 2^-25 ties to zero.
    EXPECT_EQ(fp16_encode_one(0x1.0p-24f), 0x0001u);
    EXPECT_EQ(fp16_encode_one(0x1.0p-25f), 0x0000u);
    EXPECT_EQ(fp16_encode_one(0x1.8p-24f), 0x0002u);  // tie -> even
    EXPECT_EQ(fp16_encode_one(-0x1.0p-24f), 0x8001u);
    // NaN stays NaN.
    const std::uint16_t qnan = fp16_encode_one(std::numeric_limits<float>::quiet_NaN());
    EXPECT_EQ(qnan & 0x7c00u, 0x7c00u);
    EXPECT_NE(qnan & 0x03ffu, 0u);
    // Round-trip error of a normal-range value is bounded by half a ulp
    // (2^-11 relative).
    std::mt19937 gen(3);
    for (int i = 0; i < 2000; ++i) {
        const float x = random_floats(1, gen, -1000.0f, 1000.0f)[0];
        const float back = fp16_decode_one(fp16_encode_one(x));
        EXPECT_LE(std::abs(back - x), std::abs(x) * 0x1.0p-11f + 0x1.0p-25f) << x;
    }
}

// The encoder must produce the same bits on every tier (hardware F16C on
// avx2, software everywhere else), and the widening kernels must agree with
// the scalar tier within FMA drift.
TEST(Fp16Test, KernelsAgreeAcrossTiers) {
    std::mt19937 gen(9);
    for (std::size_t n : {1u, 7u, 8u, 64u, 100u, 300u}) {
        const auto src = random_floats(n, gen, -4.0f, 4.0f);
        const auto other = random_floats(n, gen, -2.0f, 2.0f);

        std::vector<std::uint16_t> scalar_bits;
        float scalar_dot = 0.0f;
        std::vector<float> scalar_axpy;
        for (SimdTier tier : available_tiers()) {
            TierGuard guard(tier);
            std::vector<std::uint16_t> bits(n);
            kernels::fp16_encode(src.data(), bits.data(), n);
            const float d = kernels::dot_f16(other.data(), bits.data(), n);
            auto ax = other;
            kernels::axpy_f16(0.37f, bits.data(), ax.data(), n);
            if (tier == SimdTier::kScalar) {
                scalar_bits = std::move(bits);
                scalar_dot = d;
                scalar_axpy = std::move(ax);
                continue;
            }
            ASSERT_EQ(std::memcmp(bits.data(), scalar_bits.data(), n * sizeof(std::uint16_t)), 0)
                << "fp16_encode tier " << util::simd_tier_name(tier) << " n=" << n;
            EXPECT_NEAR(d, scalar_dot, 1e-3f) << "dot_f16 n=" << n;
            for (std::size_t i = 0; i < n; ++i) {
                EXPECT_NEAR(ax[i], scalar_axpy[i], 1e-5f) << "axpy_f16 n=" << n << " i=" << i;
            }
        }
    }
}

// ---- int8 weight quantization ----------------------------------------------

TEST(QuantTest, WeightQuantizationErrorBoundedByHalfScale) {
    std::mt19937 gen(17);
    const std::size_t out = 13, in = 100;
    const auto w = random_floats(out * in, gen, -2.0f, 2.0f);
    std::vector<std::int8_t> wq(out * in);
    std::vector<float> scale(out);
    quantize_weights_rowwise(w.data(), out, in, wq.data(), scale.data());
    std::vector<float> back(out * in);
    dequantize_weights_rowwise(wq.data(), scale.data(), out, in, back.data());
    for (std::size_t r = 0; r < out; ++r) {
        float wmax = 0.0f;
        for (std::size_t j = 0; j < in; ++j) wmax = std::max(wmax, std::abs(w[r * in + j]));
        EXPECT_NEAR(scale[r], wmax / 127.0f, wmax * 1e-6f);
        for (std::size_t j = 0; j < in; ++j) {
            EXPECT_LE(std::abs(back[r * in + j] - w[r * in + j]), scale[r] * 0.5f + 1e-7f);
        }
    }
    std::vector<std::int32_t> rowsum(out);
    rowsums_q8(wq.data(), out, in, rowsum.data());
    for (std::size_t r = 0; r < out; ++r) {
        std::int32_t want = 0;
        for (std::size_t j = 0; j < in; ++j) want += wq[r * in + j];
        EXPECT_EQ(rowsum[r], want);
    }
}

// Per-logit error bound of the quantized matmul against an fp64 reference:
// with activation step sa = amax/63 and weight step sw = wmax/127,
//   |c_q - c_fp| <= k * (amax*sw/2 + (wmax + sw/2)*sa/2)
// (each product loses at most |x|*sw/2 + |w_hat|*sa/2). The 1.05 slack
// absorbs the float epilogue rounding.
TEST(QuantTest, GemvQ8PerLogitErrorBound) {
    std::mt19937 gen(23);
    util::ThreadPool pool(2);
    for (const auto& shape : {std::pair<std::size_t, std::size_t>{64, 48},
                              std::pair<std::size_t, std::size_t>{128, 130},
                              std::pair<std::size_t, std::size_t>{9, 600}}) {
        const std::size_t k = shape.first, n = shape.second;
        const std::size_t rows = 3;
        const auto x = random_floats(rows * k, gen, -3.0f, 3.0f);
        const auto w = random_floats(n * k, gen, -1.5f, 1.5f);

        std::vector<std::int8_t> wq(n * k);
        std::vector<float> wscale(n);
        std::vector<std::int32_t> rowsum(n);
        quantize_weights_rowwise(w.data(), n, k, wq.data(), wscale.data());
        rowsums_q8(wq.data(), n, k, rowsum.data());
        QuantScratch qs;
        quantize_activations(x.data(), rows, k, qs, &pool);
        std::vector<float> c(rows * n, 0.0f);
        gemm_q8_nt(qs.qa.data(), qs.ascale.data(), wq.data(), wscale.data(), rowsum.data(),
                   c.data(), rows, k, n, &pool);

        for (std::size_t r = 0; r < rows; ++r) {
            float amax = 0.0f;
            for (std::size_t j = 0; j < k; ++j) amax = std::max(amax, std::abs(x[r * k + j]));
            const double sa = amax / 63.0;
            for (std::size_t col = 0; col < n; ++col) {
                double ref = 0.0;
                float wmax = 0.0f;
                for (std::size_t j = 0; j < k; ++j) {
                    ref += static_cast<double>(x[r * k + j]) * w[col * k + j];
                    wmax = std::max(wmax, std::abs(w[col * k + j]));
                }
                const double sw = wmax / 127.0;
                const double bound =
                    static_cast<double>(k) * (amax * sw * 0.5 + (wmax + sw * 0.5) * sa * 0.5);
                EXPECT_LE(std::abs(c[r * n + col] - ref), 1.05 * bound + 1e-6)
                    << "k=" << k << " n=" << n << " row=" << r << " col=" << col;
            }
        }
    }
}

// The tentpole determinism contract: byte-identical output across every
// available tier AND across thread counts (integer dots are exact; the
// epilogue is one fixed scalar expression compiled without FMA).
TEST(QuantTest, GemmQ8ByteIdenticalAcrossTiersAndThreads) {
    std::mt19937 gen(31);
    util::ThreadPool pool1(1);
    util::ThreadPool pool4(4);
    const std::size_t shapes[][3] = {
        {1, 16, 16}, {1, 128, 128}, {3, 100, 260}, {5, 513, 37}, {32, 128, 1024},
    };
    for (const auto& s : shapes) {
        const std::size_t m = s[0], k = s[1], n = s[2];
        const auto x = random_floats(m * k, gen, -2.0f, 2.0f);
        const auto w = random_floats(n * k, gen);
        const auto c0 = random_floats(m * n, gen);
        std::vector<std::int8_t> wq(n * k);
        std::vector<float> wscale(n);
        std::vector<std::int32_t> rowsum(n);
        quantize_weights_rowwise(w.data(), n, k, wq.data(), wscale.data());
        rowsums_q8(wq.data(), n, k, rowsum.data());

        std::vector<float> reference;
        std::vector<std::uint8_t> reference_qa;
        for (SimdTier tier : available_tiers()) {
            TierGuard guard(tier);
            for (util::ThreadPool* pool : {&pool1, &pool4}) {
                QuantScratch qs;
                quantize_activations(x.data(), m, k, qs, pool);
                auto c = c0;
                gemm_q8_nt(qs.qa.data(), qs.ascale.data(), wq.data(), wscale.data(),
                           rowsum.data(), c.data(), m, k, n, pool);
                if (reference.empty()) {
                    reference = std::move(c);
                    reference_qa = qs.qa;
                    continue;
                }
                ASSERT_EQ(std::memcmp(qs.qa.data(), reference_qa.data(), qs.qa.size()), 0)
                    << "activation codes, tier " << util::simd_tier_name(tier);
                ASSERT_EQ(std::memcmp(c.data(), reference.data(), c.size() * sizeof(float)), 0)
                    << "gemm_q8_nt tier " << util::simd_tier_name(tier) << " m=" << m
                    << " k=" << k << " n=" << n;
            }
        }
    }
}

// ---- decoder numeric modes -------------------------------------------------

TransformerConfig tiny_backbone() {
    TransformerConfig cfg;
    cfg.d_token = 7;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 2;
    cfg.max_seq_len = 16;
    return cfg;
}

// fp16 KV storage alone perturbs the attention inputs by at most half a ulp
// (2^-11 relative), so the decoder output stays close to the fp32 decoder.
TEST(QuantDecoderTest, KvFp16TracksFp32Decoder) {
    util::Rng rng(11);
    const Transformer model(tiny_backbone(), rng);
    const std::size_t b = 3;
    TransformerDecoder fp32(model, b);
    DecodeOptions opts;
    opts.kv_fp16 = true;
    TransformerDecoder half(model, b, opts);
    EXPECT_FALSE(half.quantized());
    EXPECT_TRUE(half.kv_fp16());
    EXPECT_EQ(half.kv_bytes() * 2, fp32.kv_bytes());

    for (std::size_t t = 0; t < 12; ++t) {
        const Tensor x = Tensor::randn(rng, {b, 7}, 0.6f);
        const Tensor& hf = fp32.step(x);
        const Tensor& hh = half.step(x);
        for (std::size_t i = 0; i < hf.numel(); ++i) {
            EXPECT_NEAR(hh[i], hf[i], 2e-2f) << "t=" << t << " i=" << i;
        }
    }
}

TEST(QuantDecoderTest, Int8DecoderTracksFp32Decoder) {
    util::Rng rng(13);
    const Transformer model(tiny_backbone(), rng);
    const TransformerQuant quant = TransformerQuant::from(model);
    const std::size_t b = 2;
    TransformerDecoder fp32(model, b);
    DecodeOptions opts;
    opts.quant = &quant;
    opts.kv_fp16 = true;
    TransformerDecoder q8(model, b, opts);
    EXPECT_TRUE(q8.quantized());

    double worst = 0.0;
    for (std::size_t t = 0; t < 12; ++t) {
        const Tensor x = Tensor::randn(rng, {b, 7}, 0.6f);
        const Tensor& hf = fp32.step(x);
        const Tensor& hq = q8.step(x);
        for (std::size_t i = 0; i < hf.numel(); ++i) {
            worst = std::max(worst, static_cast<double>(std::abs(hq[i] - hf[i])));
        }
    }
    // 7-bit activations + 8-bit weights through 2 blocks of a LayerNorm'd
    // residual stream: drift stays well under the logit scale.
    EXPECT_LT(worst, 0.3);
    EXPECT_GT(worst, 0.0);  // the modes genuinely differ
}

// Acceptance pin: the quantized decode is byte-identical across CPT_THREADS
// within every tier.
TEST(QuantDecoderTest, Int8DecodeThreadInvariantPerTier) {
    util::Rng rng(17);
    const Transformer model(tiny_backbone(), rng);
    const TransformerQuant quant = TransformerQuant::from(model);
    DecodeOptions opts;
    opts.quant = &quant;
    opts.kv_fp16 = true;
    const std::size_t b = 4;
    const std::size_t steps = 10;
    const Tensor seq = Tensor::randn(rng, {b, steps, 7}, 0.6f);

    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> one;
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            util::set_global_threads(threads);
            TransformerDecoder dec(model, b, opts);
            std::vector<float> flat;
            for (std::size_t t = 0; t < steps; ++t) {
                Tensor x({b, 7});
                for (std::size_t r = 0; r < b; ++r) {
                    for (std::size_t j = 0; j < 7; ++j) x[r * 7 + j] = seq[(r * steps + t) * 7 + j];
                }
                const Tensor& h = dec.step(x);
                flat.insert(flat.end(), h.data().begin(), h.data().end());
            }
            if (threads == 1) {
                one = std::move(flat);
            } else {
                ASSERT_EQ(std::memcmp(flat.data(), one.data(), one.size() * sizeof(float)), 0)
                    << "tier " << util::simd_tier_name(tier);
            }
        }
        util::set_global_threads(1);
    }
}

// ---- model + sampler plumbing ----------------------------------------------

core::CptGptConfig small_model_config() {
    core::CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 48;
    cfg.head_hidden = 24;
    return cfg;
}

TEST(QuantModelTest, PrecisionKnobRequiresQuantizedWeights) {
    const core::Tokenizer tok(cellular::Generation::kLte4G, 0.0, 8.0);
    util::Rng rng(5);
    core::CptGpt model(tok, small_model_config(), rng);
    EXPECT_FALSE(model.has_quantized_weights());
    EXPECT_THROW(model.make_decoder(2, Precision::kInt8W8A32), std::exception);
    model.quantize_weights();
    ASSERT_TRUE(model.has_quantized_weights());
    auto dec = model.make_decoder(2, Precision::kInt8W8A32);
    EXPECT_TRUE(dec.quantized());
    EXPECT_TRUE(dec.kv_fp16());
    // The quantized mirror is ~4x smaller than the fp32 matrices it shadows.
    std::size_t fp32_matrix_bytes = 0;
    for (const auto& np : model.named_parameters()) {
        const auto& n = np.name;
        if (n.size() > 7 && n.compare(n.size() - 7, 7, ".weight") == 0) {
            fp32_matrix_bytes += np.param->value.numel() * sizeof(float);
        }
    }
    EXPECT_LT(model.quantized_weights().weight_bytes(), fp32_matrix_bytes / 2);
}

// The int8 sampler must stay thread-invariant within each tier (same
// contract as fp32 generate; acceptance criterion of the quantized path).
TEST(QuantModelTest, Int8SamplerThreadInvariantPerTier) {
    trace::SyntheticWorldConfig wcfg;
    wcfg.population = {20, 0, 0};
    wcfg.seed = 33;
    const auto world = trace::SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng init(3);
    core::CptGpt model(tok, small_model_config(), init);
    model.quantize_weights();
    core::SamplerConfig scfg;
    scfg.batch = 6;
    scfg.precision = Precision::kInt8W8A32;
    const core::Sampler sampler(model, tok, world.initial_event_distribution(), scfg);

    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        util::set_global_threads(1);
        util::Rng g1(42);
        const auto one = sampler.generate(16, g1);
        util::set_global_threads(4);
        util::Rng g4(42);
        const auto four = sampler.generate(16, g4);
        util::set_global_threads(1);
        ASSERT_GT(one.streams.size(), 0u);
        ASSERT_EQ(one.streams.size(), four.streams.size());
        for (std::size_t i = 0; i < one.streams.size(); ++i) {
            const auto& sa = one.streams[i];
            const auto& sb = four.streams[i];
            ASSERT_EQ(sa.events.size(), sb.events.size())
                << "tier " << util::simd_tier_name(tier) << " stream " << i;
            for (std::size_t j = 0; j < sa.events.size(); ++j) {
                EXPECT_EQ(sa.events[j].type, sb.events[j].type);
                EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.events[j].timestamp),
                          std::bit_cast<std::uint64_t>(sb.events[j].timestamp));
            }
        }
    }
}

// Fidelity-drift bound (acceptance criterion): generating the same seeds in
// int8 vs fp32 must leave the Table-2 metrics nearly unchanged — the
// quantized sampler's traffic is distributionally the fp32 sampler's traffic.
TEST(QuantModelTest, FidelityDriftBounded) {
    trace::SyntheticWorldConfig wcfg;
    wcfg.population = {30, 0, 0};
    wcfg.seed = 7;
    const auto world = trace::SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng init(9);
    core::CptGpt model(tok, small_model_config(), init);
    model.quantize_weights();

    core::SamplerConfig fp_cfg;
    fp_cfg.batch = 32;
    const core::Sampler fp_sampler(model, tok, world.initial_event_distribution(), fp_cfg);
    core::SamplerConfig q_cfg = fp_cfg;
    q_cfg.precision = Precision::kInt8W8A32;
    const core::Sampler q_sampler(model, tok, world.initial_event_distribution(), q_cfg);

    const std::size_t n = 220;
    util::Rng ga(1234);
    const auto fp_ds = fp_sampler.generate(n, ga);
    util::Rng gb(1234);
    const auto q_ds = q_sampler.generate(n, gb);
    ASSERT_GT(fp_ds.streams.size(), n / 2);
    ASSERT_GT(q_ds.streams.size(), n / 2);

    const auto rep = metrics::evaluate_fidelity(q_ds, fp_ds);
    EXPECT_LE(rep.maxy_sojourn_connected, 0.15);
    EXPECT_LE(rep.maxy_sojourn_idle, 0.15);
    EXPECT_LE(rep.maxy_flow_length_all, 0.15);
    EXPECT_LE(rep.max_breakdown_diff(), 0.05);
    const auto fp_viol = metrics::semantic_violations(fp_ds);
    const auto q_viol = metrics::semantic_violations(q_ds);
    EXPECT_LE(std::abs(fp_viol.event_fraction() - q_viol.event_fraction()), 0.05);
    EXPECT_LE(std::abs(fp_viol.stream_fraction() - q_viol.stream_fraction()), 0.10);
}

// ---- quantized checkpoints (serialize v2) ----------------------------------

class QuantSerializeTest : public ::testing::Test {
protected:
    std::string temp_path(const char* name) {
        const ::testing::TestInfo* info = ::testing::UnitTest::GetInstance()->current_test_info();
        return ::testing::TempDir() + info->test_case_name() + "_" + info->name() + "_" + name;
    }
};

TEST_F(QuantSerializeTest, QuantizedPackageRoundTripsExactPayload) {
    const core::Tokenizer tok(cellular::Generation::kLte4G, -1.0, 7.0);
    util::Rng rng(21);
    core::CptGpt model(tok, small_model_config(), rng);
    model.quantize_weights();
    const std::vector<double> dist(model.num_event_types(),
                                   1.0 / static_cast<double>(model.num_event_types()));
    const std::string path = temp_path("hub.ckpt");
    model.save_package(path, tok, dist, Precision::kInt8W8A32);

    auto pkg = core::CptGpt::load_package(path, cellular::Generation::kLte4G,
                                          small_model_config());
    EXPECT_TRUE(pkg.quantized);
    ASSERT_TRUE(pkg.model->has_quantized_weights());
    EXPECT_NEAR(pkg.tokenizer.min_log_interarrival(), -1.0, 1e-6);
    EXPECT_NEAR(pkg.tokenizer.max_log_interarrival(), 7.0, 1e-6);

    // The loaded quantized payload is EXACTLY the original model's (install
    // path, not re-quantization).
    const auto& a = model.quantized_weights();
    const auto& b = pkg.model->quantized_weights();
    ASSERT_EQ(a.backbone.blocks.size(), b.backbone.blocks.size());
    EXPECT_EQ(a.backbone.input_proj.wq, b.backbone.input_proj.wq);
    EXPECT_EQ(a.backbone.input_proj.scale, b.backbone.input_proj.scale);
    for (std::size_t i = 0; i < a.backbone.blocks.size(); ++i) {
        EXPECT_EQ(a.backbone.blocks[i].wq.wq, b.backbone.blocks[i].wq.wq);
        EXPECT_EQ(a.backbone.blocks[i].wo.scale, b.backbone.blocks[i].wo.scale);
        EXPECT_EQ(a.backbone.blocks[i].mlp.fc1.wq, b.backbone.blocks[i].mlp.fc1.wq);
        EXPECT_EQ(a.backbone.blocks[i].mlp.fc2.rowsum, b.backbone.blocks[i].mlp.fc2.rowsum);
    }
    EXPECT_EQ(a.event_head.fc1.wq, b.event_head.fc1.wq);
    EXPECT_EQ(a.stop_head.fc2.scale, b.stop_head.fc2.scale);

    // And int8 decoding through the loaded package is byte-identical to the
    // original model's.
    auto dec_a = model.make_decoder(2, Precision::kInt8W8A32);
    auto dec_b = pkg.model->make_decoder(2, Precision::kInt8W8A32);
    auto scr_a = model.make_decode_scratch(2, Precision::kInt8W8A32);
    auto scr_b = pkg.model->make_decode_scratch(2, Precision::kInt8W8A32);
    util::Rng step_rng(4);
    for (std::size_t t = 0; t < 6; ++t) {
        const Tensor x = Tensor::randn(step_rng, {2, tok.d_token()}, 0.5f);
        const auto& oa = model.decode_step(dec_a, x, scr_a);
        const auto& ob = pkg.model->decode_step(dec_b, x, scr_b);
        ASSERT_EQ(std::memcmp(oa.event_logits.data().data(), ob.event_logits.data().data(),
                              oa.event_logits.numel() * sizeof(float)),
                  0)
            << "t=" << t;
        ASSERT_EQ(std::memcmp(oa.stop_logits.data().data(), ob.stop_logits.data().data(),
                              oa.stop_logits.numel() * sizeof(float)),
                  0);
    }
}

TEST_F(QuantSerializeTest, Fp32OnlyLoadRejectsQuantizedCheckpoint) {
    util::Rng rng(2);
    auto w = make_param(Tensor::randn(rng, {4, 6}, 1.0f));
    const std::vector<NamedParam> params{{"layer.weight", w}};
    const std::string path = temp_path("q8.ckpt");
    save_parameters(path, params, {"layer.weight"});

    auto w2 = make_param(Tensor::zeros({4, 6}));
    const std::vector<NamedParam> into{{"layer.weight", w2}};
    try {
        load_parameters(path, into);  // fp32-only loader
        FAIL() << "expected a dtype-mismatch error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("layer.weight"), std::string::npos) << msg;
        EXPECT_NE(msg.find("q8"), std::string::npos) << msg;
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
    }

    // The quantization-aware overload accepts it and hands back the payload.
    QuantSections sections;
    load_parameters(path, into, &sections);
    ASSERT_EQ(sections.size(), 1u);
    const auto& sec = sections.at("layer.weight");
    EXPECT_EQ(sec.shape, (Shape{4, 6}));
    EXPECT_EQ(sec.scale.size(), 4u);
    EXPECT_EQ(sec.payload.size(), 24u);
    // Dequantized values landed in the destination parameter.
    float max_abs = 0.0f;
    for (std::size_t i = 0; i < w2->value.numel(); ++i) {
        max_abs = std::max(max_abs, std::abs(w2->value[i]));
        EXPECT_NEAR(w2->value[i], w->value[i], sec.scale[i / 6] * 0.5f + 1e-7f);
    }
    EXPECT_GT(max_abs, 0.0f);
}

TEST_F(QuantSerializeTest, RejectsUnknownDtypeAndTruncatedSections) {
    util::Rng rng(3);
    auto w = make_param(Tensor::randn(rng, {2, 3}, 1.0f));
    const std::vector<NamedParam> params{{"w", w}};
    const std::string path = temp_path("bad.ckpt");
    save_parameters(path, params, {"w"});

    // Patch the dtype byte (offset: magic 4 + version 4 + count 4 +
    // name_len 4 + name 1) to an undefined code.
    {
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        f.seekp(17);
        const char bad = 9;
        f.write(&bad, 1);
    }
    auto w2 = make_param(Tensor::zeros({2, 3}));
    const std::vector<NamedParam> into{{"w", w2}};
    QuantSections sections;
    try {
        load_parameters(path, into, &sections);
        FAIL() << "expected unknown-dtype error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("unknown dtype 9"), std::string::npos) << msg;
        EXPECT_NE(msg.find("'w'"), std::string::npos) << msg;
        EXPECT_NE(msg.find(path), std::string::npos) << msg;
    }

    // Truncate a valid quantized checkpoint mid-payload.
    const std::string tpath = temp_path("trunc.ckpt");
    save_parameters(tpath, params, {"w"});
    {
        std::ifstream in(tpath, std::ios::binary);
        std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                                std::istreambuf_iterator<char>());
        bytes.resize(bytes.size() - 3);
        std::ofstream out(tpath, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }
    try {
        load_parameters(tpath, into, &sections);
        FAIL() << "expected truncation error";
    } catch (const std::runtime_error& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("truncated q8 section 'w'"), std::string::npos) << msg;
        EXPECT_NE(msg.find(tpath), std::string::npos) << msg;
    }
}

TEST_F(QuantSerializeTest, SaveRejectsBadQuantizeList) {
    util::Rng rng(4);
    auto w = make_param(Tensor::randn(rng, {2, 3}, 1.0f));
    auto b = make_param(Tensor::zeros({2}));
    const std::vector<NamedParam> params{{"w", w}, {"b", b}};
    const std::string path = temp_path("never.ckpt");
    EXPECT_THROW(save_parameters(path, params, {"nope"}), std::invalid_argument);
    EXPECT_THROW(save_parameters(path, params, {"b"}), std::invalid_argument);  // rank 1
}

// Pure-fp32 saves still write the version-1 format older tools read.
TEST_F(QuantSerializeTest, Fp32SaveStaysVersion1) {
    util::Rng rng(5);
    auto w = make_param(Tensor::randn(rng, {2, 2}, 1.0f));
    const std::vector<NamedParam> params{{"w", w}};
    const std::string path = temp_path("v1.ckpt");
    save_parameters(path, params);
    std::ifstream in(path, std::ios::binary);
    char magic[4];
    in.read(magic, 4);
    std::uint32_t version = 0;
    in.read(reinterpret_cast<char*>(&version), 4);
    EXPECT_EQ(version, 1u);
}

}  // namespace
}  // namespace cpt::nn
