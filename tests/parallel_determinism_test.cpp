// Pins the cross-thread-count determinism contract: Sampler::generate and
// SyntheticWorldGenerator produce byte-identical datasets whether the global
// pool has 1 lane or 4. Also covers the max_stream_len guards that ride along
// with the parallel sampler.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <stdexcept>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {
namespace {

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 21) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

CptGptConfig tiny_config() {
    CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 64;
    cfg.head_hidden = 24;
    return cfg;
}

// Timestamps are compared by bit pattern, not by value: the contract is
// byte-identical output, and bitwise comparison also distinguishes -0.0.
void expect_identical(const trace::Dataset& a, const trace::Dataset& b) {
    ASSERT_EQ(a.generation, b.generation);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        const auto& sa = a.streams[i];
        const auto& sb = b.streams[i];
        EXPECT_EQ(sa.ue_id, sb.ue_id);
        EXPECT_EQ(sa.device, sb.device);
        EXPECT_EQ(sa.hour_of_day, sb.hour_of_day);
        ASSERT_EQ(sa.events.size(), sb.events.size()) << "stream " << i;
        for (std::size_t j = 0; j < sa.events.size(); ++j) {
            EXPECT_EQ(sa.events[j].type, sb.events[j].type) << "stream " << i << " event " << j;
            EXPECT_EQ(std::bit_cast<std::uint64_t>(sa.events[j].timestamp),
                      std::bit_cast<std::uint64_t>(sb.events[j].timestamp))
                << "stream " << i << " event " << j;
        }
    }
}

class ThreadCountGuard {
public:
    ~ThreadCountGuard() { util::set_global_threads(1); }
};

TEST(ParallelDeterminismTest, WorldGeneratorIsThreadCountInvariant) {
    ThreadCountGuard guard;
    trace::SyntheticWorldConfig cfg;
    cfg.population = {40, 25, 15};
    cfg.seed = 77;
    util::set_global_threads(1);
    const auto one = trace::SyntheticWorldGenerator(cfg).generate();
    util::set_global_threads(4);
    const auto four = trace::SyntheticWorldGenerator(cfg).generate();
    ASSERT_GT(one.streams.size(), 0u);
    expect_identical(one, four);
}

TEST(ParallelDeterminismTest, WorldGeneratorHoursAreThreadCountInvariant) {
    ThreadCountGuard guard;
    trace::SyntheticWorldConfig cfg;
    cfg.population = {20, 10, 5};
    cfg.seed = 13;
    util::set_global_threads(1);
    const auto one = trace::SyntheticWorldGenerator(cfg).generate_hours(3);
    util::set_global_threads(4);
    const auto four = trace::SyntheticWorldGenerator(cfg).generate_hours(3);
    ASSERT_EQ(one.size(), 3u);
    ASSERT_EQ(four.size(), 3u);
    for (std::size_t h = 0; h < one.size(); ++h) expect_identical(one[h], four[h]);
}

TEST(ParallelDeterminismTest, SamplerGenerateIsThreadCountInvariant) {
    ThreadCountGuard guard;
    const auto world = phone_world(40);
    const auto tok = Tokenizer::fit(world);
    util::Rng init(3);
    CptGpt model(tok, tiny_config(), init);  // untrained: contract is structural
    SamplerConfig scfg;
    scfg.batch = 8;  // several decode chunks per round
    const Sampler sampler(model, tok, world.initial_event_distribution(), scfg);

    util::set_global_threads(1);
    util::Rng g1(42);
    const auto one = sampler.generate(30, g1);
    util::set_global_threads(4);
    util::Rng g4(42);
    const auto four = sampler.generate(30, g4);
    ASSERT_GT(one.streams.size(), 0u);
    expect_identical(one, four);
}

TEST(ParallelDeterminismTest, SamplerRejectsDegenerateMaxStreamLen) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng init(5);
    CptGpt model(tok, tiny_config(), init);
    SamplerConfig scfg;
    scfg.max_stream_len = 1;
    EXPECT_THROW(Sampler(model, tok, world.initial_event_distribution(), scfg),
                 std::invalid_argument);
}

TEST(ParallelDeterminismTest, TrainerRejectsDegenerateMaxStreamLen) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng init(5);
    CptGpt model(tok, tiny_config(), init);
    TrainConfig tcfg;
    tcfg.max_stream_len = 1;
    EXPECT_THROW(Trainer(model, tok, tcfg), std::invalid_argument);
}

}  // namespace
}  // namespace cpt::core
