// Tests for the trace replay driver.
#include <gtest/gtest.h>

#include "mcn/replay.hpp"
#include "trace/synthetic.hpp"

namespace cpt::mcn {
namespace {

trace::Dataset world(std::size_t n) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = 101;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

TEST(ReplayTest, VisitsEveryEventInTimestampOrder) {
    const auto ds = world(60);
    const TraceReplayer replayer(ds);
    EXPECT_EQ(replayer.total_events(), ds.total_events());
    std::size_t seen = 0;
    double prev = -1.0;
    replayer.replay([&](const ReplayEvent& ev) {
        EXPECT_GE(ev.timestamp, prev);
        EXPECT_NE(ev.stream, nullptr);
        prev = ev.timestamp;
        ++seen;
    });
    EXPECT_EQ(seen, ds.total_events());
}

TEST(ReplayTest, MessageReplayExpandsEachEvent) {
    const auto ds = world(10);
    const TraceReplayer replayer(ds);
    std::size_t expected = 0;
    for (const auto& s : ds.streams) {
        for (const auto& e : s.events) {
            expected += cellular::messages_for(ds.generation, e.type).size();
        }
    }
    std::size_t seen = 0;
    double prev_time = -1.0;
    replayer.replay_messages([&](const ReplayEvent& ev, const cellular::Message& m, double t) {
        EXPECT_GE(t, ev.timestamp);
        EXPECT_FALSE(m.name.empty());
        (void)prev_time;
        ++seen;
    });
    EXPECT_EQ(seen, expected);
}

TEST(ReplayTest, PacedReplayRespectsTimeScale) {
    // Two events 1 virtual second apart at time_scale 50 -> ~20 ms wall.
    trace::Dataset ds;
    trace::Stream s;
    s.ue_id = "u";
    s.events = {{0.0, cellular::lte::kSrvReq}, {1.0, cellular::lte::kS1ConnRel}};
    ds.streams.push_back(s);
    const TraceReplayer replayer(ds);
    std::size_t seen = 0;
    const double wall = replayer.replay_paced([&](const ReplayEvent&) { ++seen; }, 50.0);
    EXPECT_EQ(seen, 2u);
    EXPECT_GE(wall, 0.015);
    EXPECT_LT(wall, 0.5);
    EXPECT_THROW(replayer.replay_paced([](const ReplayEvent&) {}, 0.0), std::invalid_argument);
}

}  // namespace
}  // namespace cpt::mcn
