// Parity and determinism contract of the training-path kernels
// (nn/kernels.hpp "Backward kernels" + "Optimizer kernels"):
//   * every dispatched kernel agrees with its scalar *_ref on all available
//     tiers (bit-identical on scalar/sse2, tolerance on avx2 where FMA and
//     fixed-tree reductions reassociate);
//   * cross-row reductions (col_sum_rows, layer_norm dgain/dbias) are
//     byte-identical across thread counts, not merely per tier;
//   * the Adam gscale fold equals pre-scaling the gradient.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "nn/kernels.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {
namespace {

using util::SimdTier;

class TierGuard {
public:
    explicit TierGuard(SimdTier tier) : prev_(util::set_simd_tier(tier)) {}
    ~TierGuard() { util::set_simd_tier(prev_); }
    TierGuard(const TierGuard&) = delete;
    TierGuard& operator=(const TierGuard&) = delete;

private:
    SimdTier prev_;
};

class ThreadCountGuard {
public:
    ~ThreadCountGuard() { util::set_global_threads(1); }
};

std::vector<SimdTier> available_tiers() {
    std::vector<SimdTier> tiers{SimdTier::kScalar};
    if (util::simd_tier_available(SimdTier::kSse2)) tiers.push_back(SimdTier::kSse2);
    if (util::simd_tier_available(SimdTier::kAvx2)) tiers.push_back(SimdTier::kAvx2);
    return tiers;
}

std::vector<float> random_floats(std::size_t n, std::mt19937& gen, float lo = -1.0f,
                                 float hi = 1.0f) {
    std::uniform_real_distribution<float> dist(lo, hi);
    std::vector<float> v(n);
    for (float& x : v) x = dist(gen);
    return v;
}

// Bitwise equality on scalar/sse2 (same op order as the reference), small
// relative tolerance on avx2 (FMA + fixed-tree reductions).
void expect_tier_match(const std::vector<float>& got, const std::vector<float>& want,
                       SimdTier tier, const char* what) {
    ASSERT_EQ(got.size(), want.size()) << what;
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (tier == SimdTier::kAvx2) {
            const float tol = 1e-4f * std::max(1.0f, std::abs(want[i]));
            EXPECT_NEAR(got[i], want[i], tol) << what << " at " << i;
        } else {
            EXPECT_EQ(got[i], want[i]) << what << " at " << i;
        }
    }
}

constexpr std::size_t kRows = 17;
constexpr std::size_t kDim = 37;  // odd width exercises the SIMD tails

TEST(TrainKernelsTest, SoftmaxBackwardMatchesRefAcrossTiers) {
    std::mt19937 gen(101);
    const auto logits = random_floats(kRows * kDim, gen, -2.0f, 2.0f);
    const auto g = random_floats(kRows * kDim, gen);
    std::vector<float> y(kRows * kDim);
    for (std::size_t r = 0; r < kRows; ++r) {
        kernels::softmax_row(logits.data() + r * kDim, y.data() + r * kDim, kDim, kDim);
    }
    std::vector<float> want(kRows * kDim, 0.0f);
    for (std::size_t r = 0; r < kRows; ++r) {
        kernels::softmax_backward_row_ref(y.data() + r * kDim, g.data() + r * kDim,
                                          want.data() + r * kDim, kDim);
    }
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> got(kRows * kDim, 0.0f);
        kernels::softmax_backward_rows(y.data(), g.data(), got.data(), kRows, kDim);
        expect_tier_match(got, want, tier, "softmax_backward_rows");
    }
}

TEST(TrainKernelsTest, SoftmaxBackwardCausalRespectsMask) {
    constexpr std::size_t kT = 11;
    constexpr std::size_t kMats = 3;
    std::mt19937 gen(102);
    const auto logits = random_floats(kMats * kT * kT, gen, -2.0f, 2.0f);
    const auto g = random_floats(kMats * kT * kT, gen);
    std::vector<float> y(kMats * kT * kT, 0.0f);
    for (std::size_t m = 0; m < kMats; ++m) {
        for (std::size_t r = 0; r < kT; ++r) {
            const std::size_t off = (m * kT + r) * kT;
            kernels::softmax_row(logits.data() + off, y.data() + off, kT, r + 1);
        }
    }
    std::vector<float> want(kMats * kT * kT, 0.0f);
    for (std::size_t m = 0; m < kMats; ++m) {
        for (std::size_t r = 0; r < kT; ++r) {
            const std::size_t off = (m * kT + r) * kT;
            kernels::softmax_backward_row_ref(y.data() + off, g.data() + off, want.data() + off,
                                              r + 1);
        }
    }
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> got(kMats * kT * kT, 0.0f);
        kernels::softmax_backward_causal(y.data(), g.data(), got.data(), kMats, kT);
        expect_tier_match(got, want, tier, "softmax_backward_causal");
        // Masked entries (column > row) must stay untouched.
        for (std::size_t m = 0; m < kMats; ++m) {
            for (std::size_t r = 0; r < kT; ++r) {
                for (std::size_t c = r + 1; c < kT; ++c) {
                    EXPECT_EQ(got[(m * kT + r) * kT + c], 0.0f);
                }
            }
        }
    }
}

TEST(TrainKernelsTest, SoftmaxXentMatchesUnfusedComposition) {
    std::mt19937 gen(103);
    const auto logits = random_floats(kRows * kDim, gen, -2.0f, 2.0f);
    std::vector<int> targets(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        targets[r] = (r % 5 == 0) ? -1 : static_cast<int>((r * 7) % kDim);
    }
    // Unfused reference: softmax_row then float-log NLL, as the historical
    // cross_entropy op computed it.
    std::vector<float> want_probs(kRows * kDim);
    std::vector<double> want_loss(kRows, 0.0);
    for (std::size_t r = 0; r < kRows; ++r) {
        kernels::softmax_row(logits.data() + r * kDim, want_probs.data() + r * kDim, kDim, kDim);
        if (targets[r] < 0) continue;
        const float p = want_probs[r * kDim + static_cast<std::size_t>(targets[r])];
        want_loss[r] = -static_cast<double>(std::log(std::max(p, 1e-12f)));
    }
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> probs(kRows * kDim, 0.0f);
        std::vector<double> rowloss(kRows, -1.0);
        kernels::softmax_xent_rows(logits.data(), probs.data(), targets.data(), -1,
                                   rowloss.data(), kRows, kDim);
        // Softmax is bit-identical across tiers by design, and the fused NLL
        // must reproduce the historical float-log value exactly.
        for (std::size_t i = 0; i < probs.size(); ++i) {
            EXPECT_EQ(probs[i], want_probs[i]) << "probs at " << i;
        }
        for (std::size_t r = 0; r < kRows; ++r) {
            EXPECT_EQ(rowloss[r], want_loss[r]) << "rowloss at " << r;
        }
    }
}

TEST(TrainKernelsTest, XentBackwardMatchesRefAcrossTiers) {
    std::mt19937 gen(104);
    const auto probs = random_floats(kRows * kDim, gen, 0.0f, 1.0f);
    std::vector<int> targets(kRows);
    for (std::size_t r = 0; r < kRows; ++r) {
        targets[r] = (r % 4 == 0) ? -1 : static_cast<int>((r * 3) % kDim);
    }
    const float gscale = 0.37f;
    std::vector<float> want(kRows * kDim, 0.5f);
    for (std::size_t r = 0; r < kRows; ++r) {
        if (targets[r] < 0) continue;
        kernels::xent_backward_row_ref(probs.data() + r * kDim, targets[r],
                                       want.data() + r * kDim, gscale, kDim);
    }
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> got(kRows * kDim, 0.5f);
        kernels::xent_backward_rows(probs.data(), targets.data(), -1, got.data(), gscale, kRows,
                                    kDim);
        expect_tier_match(got, want, tier, "xent_backward_rows");
    }
}

TEST(TrainKernelsTest, LayerNormBackwardMatchesRefAndIsThreadInvariant) {
    ThreadCountGuard tg;
    std::mt19937 gen(105);
    const auto x = random_floats(kRows * kDim, gen, -2.0f, 2.0f);
    const auto gain = random_floats(kDim, gen, 0.5f, 1.5f);
    const auto bias = random_floats(kDim, gen);
    const auto g = random_floats(kRows * kDim, gen);
    std::vector<float> y(kRows * kDim);
    std::vector<float> stats(kRows * 2);
    kernels::layer_norm_rows(x.data(), y.data(), gain.data(), bias.data(), kRows, kDim, 1e-5f,
                             stats.data());
    // Reference: per-row dx ref + serial ascending-row dgain/dbias.
    std::vector<float> want_dx(kRows * kDim, 0.0f);
    std::vector<float> want_dgain(kDim, 0.0f);
    std::vector<float> want_dbias(kDim, 0.0f);
    for (std::size_t r = 0; r < kRows; ++r) {
        const float mean = stats[r * 2];
        const float inv = stats[r * 2 + 1];
        kernels::layer_norm_backward_row_ref(x.data() + r * kDim, gain.data(),
                                             g.data() + r * kDim, mean, inv,
                                             want_dx.data() + r * kDim, kDim);
        for (std::size_t j = 0; j < kDim; ++j) {
            want_dgain[j] += g[r * kDim + j] * ((x[r * kDim + j] - mean) * inv);
            want_dbias[j] += g[r * kDim + j];
        }
    }
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
            util::set_global_threads(threads);
            std::vector<float> dx(kRows * kDim, 0.0f);
            std::vector<float> dgain(kDim, 0.0f);
            std::vector<float> dbias(kDim, 0.0f);
            kernels::layer_norm_backward_rows(x.data(), gain.data(), g.data(), stats.data(),
                                              dx.data(), dgain.data(), dbias.data(), kRows, kDim,
                                              &util::global_pool());
            expect_tier_match(dx, want_dx, tier, "layer_norm_backward dx");
            // The column-sharded dgain/dbias accumulate ascending rows per
            // column: bit-identical on every tier and thread count.
            for (std::size_t j = 0; j < kDim; ++j) {
                EXPECT_EQ(dgain[j], want_dgain[j]) << "dgain at " << j;
                EXPECT_EQ(dbias[j], want_dbias[j]) << "dbias at " << j;
            }
        }
    }
}

TEST(TrainKernelsTest, ColSumRowsIsThreadInvariant) {
    ThreadCountGuard tg;
    std::mt19937 gen(106);
    const auto src = random_floats(kRows * kDim, gen);
    std::vector<float> want(kDim, 0.25f);
    for (std::size_t r = 0; r < kRows; ++r) {
        for (std::size_t j = 0; j < kDim; ++j) want[j] += src[r * kDim + j];
    }
    for (std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        util::set_global_threads(threads);
        std::vector<float> dst(kDim, 0.25f);
        kernels::col_sum_rows(src.data(), dst.data(), kRows, kDim, &util::global_pool());
        for (std::size_t j = 0; j < kDim; ++j) EXPECT_EQ(dst[j], want[j]) << "col " << j;
    }
}

TEST(TrainKernelsTest, BiasGeluBackwardMatchesChain) {
    std::mt19937 gen(107);
    const auto x = random_floats(kRows * kDim, gen, -2.0f, 2.0f);
    const auto bias = random_floats(kDim, gen);
    const auto g = random_floats(kRows * kDim, gen);
    // Chain reference: t = g * gelu'(x + bias); dx += t; dbias[j] = sum_r t.
    std::vector<float> want_dx(kRows * kDim, 0.125f);
    std::vector<float> want_t(kRows * kDim);
    for (std::size_t r = 0; r < kRows; ++r) {
        for (std::size_t j = 0; j < kDim; ++j) {
            const float u = x[r * kDim + j] + bias[j];
            want_t[r * kDim + j] = g[r * kDim + j] * kernels::gelu_grad_scalar(u);
            want_dx[r * kDim + j] += want_t[r * kDim + j];
        }
    }
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> dx(kRows * kDim, 0.125f);
        std::vector<float> scratch(kRows * kDim, -7.0f);
        kernels::bias_gelu_backward_rows(x.data(), bias.data(), g.data(), dx.data(),
                                         scratch.data(), kRows, kDim);
        expect_tier_match(dx, want_dx, tier, "bias_gelu_backward dx");
        expect_tier_match(scratch, want_t, tier, "bias_gelu_backward scratch");
    }
}

TEST(TrainKernelsTest, SqnormChainsCarryLikeOneSerialLoop) {
    std::mt19937 gen(108);
    const auto a = random_floats(101, gen);
    const auto b = random_floats(57, gen);
    double want = 0.0;
    for (float v : a) want += static_cast<double>(v) * v;
    for (float v : b) want += static_cast<double>(v) * v;
    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        const double got = kernels::sqnorm(b.data(), b.size(), kernels::sqnorm(a.data(), a.size()));
        if (tier == SimdTier::kAvx2) {
            EXPECT_NEAR(got, want, 1e-9 * std::max(1.0, want));
        } else {
            EXPECT_EQ(got, want);
        }
    }
}

TEST(TrainKernelsTest, AdamUpdateMatchesRefAndGscaleFoldsExactly) {
    constexpr std::size_t kN = 131;
    std::mt19937 gen(109);
    const auto w0 = random_floats(kN, gen);
    const auto g = random_floats(kN, gen);
    const auto m0 = random_floats(kN, gen, 0.0f, 0.1f);
    const auto v0 = random_floats(kN, gen, 0.0f, 0.1f);
    const float lr = 1e-3f, beta1 = 0.9f, beta2 = 0.999f, eps = 1e-8f, wd = 0.01f;
    const float bc1 = 1.0f - std::pow(beta1, 3.0f);
    const float bc2 = 1.0f - std::pow(beta2, 3.0f);
    const float gscale = 0.42f;

    // Fold reference: pre-scale the gradient, then update with gscale = 1.
    std::vector<float> want_w = w0, want_m = m0, want_v = v0;
    std::vector<float> scaled(kN);
    for (std::size_t i = 0; i < kN; ++i) scaled[i] = g[i] * gscale;
    kernels::adam_update_ref(want_w.data(), scaled.data(), want_m.data(), want_v.data(), kN, lr,
                             beta1, beta2, eps, wd, bc1, bc2, 1.0f);

    for (SimdTier tier : available_tiers()) {
        TierGuard guard(tier);
        std::vector<float> w = w0, m = m0, v = v0;
        kernels::adam_update(w.data(), g.data(), m.data(), v.data(), kN, lr, beta1, beta2, eps,
                             wd, bc1, bc2, gscale);
        expect_tier_match(w, want_w, tier, "adam w");
        expect_tier_match(m, want_m, tier, "adam m");
        expect_tier_match(v, want_v, tier, "adam v");
    }
}

}  // namespace
}  // namespace cpt::nn
