// Tests for CPT-GPT: tokenizer round trips and properties, model forward
// contracts, package save/load, trainer behaviour (loss decreases, early
// stopping, ablation head), and sampler invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"

namespace cpt::core {
namespace {

namespace lte = cellular::lte;

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 21) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

CptGptConfig tiny_config() {
    CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 64;
    cfg.head_hidden = 24;
    return cfg;
}

TEST(TokenizerTest, DimensionsMatchPaper) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    // 4G: 6 event types + 1 interarrival + 2 stop -> d_token = 9 (Fig. 3).
    EXPECT_EQ(tok.d_token(), 9u);
    EXPECT_EQ(tok.num_event_types(), 6u);
}

TEST(TokenizerTest, FiveGDimensionsDeriveAutomatically) {
    // No domain knowledge in the model: a 5G dataset produces d_token =
    // 5 + 1 + 2 = 8 purely from the vocabulary size.
    trace::SyntheticWorldConfig cfg;
    cfg.generation = cellular::Generation::kNr5G;
    cfg.population = {30, 0, 0};
    cfg.seed = 19;
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    const auto tok = Tokenizer::fit(world);
    EXPECT_EQ(tok.d_token(), 8u);
    EXPECT_EQ(tok.num_event_types(), 5u);
    // And the model builds and runs on it unchanged.
    util::Rng rng(20);
    const CptGpt model(tok, tiny_config(), rng);
    const auto out = model.forward(nn::make_var(nn::Tensor::zeros({1, 4, 8})));
    EXPECT_EQ(out.event_logits->value.shape(), (nn::Shape{4, 5}));
}

TEST(TokenizerTest, InterarrivalScalingRoundTrip) {
    const Tokenizer tok(cellular::Generation::kLte4G, 0.0, std::log(1000.0 + 1.0));
    for (const double ia : {0.0, 0.5, 3.0, 42.0, 500.0, 1000.0}) {
        const double back = tok.unscale_interarrival(tok.scale_interarrival(ia));
        EXPECT_NEAR(back, ia, 1e-6 + ia * 1e-5);
    }
    // Out-of-range values clamp rather than extrapolate.
    EXPECT_FLOAT_EQ(tok.scale_interarrival(5000.0), 1.0f);
    EXPECT_FLOAT_EQ(tok.scale_interarrival(-1.0), 0.0f);
    EXPECT_NEAR(tok.unscale_interarrival(2.0), 1000.0, 0.5);
}

TEST(TokenizerTest, LogScalingIsMonotone) {
    const Tokenizer tok(cellular::Generation::kLte4G, 0.0, 8.0);
    float prev = -1.0f;
    for (double ia = 0.0; ia < 2000.0; ia += 50.0) {
        const float x = tok.scale_interarrival(ia);
        EXPECT_GT(x, prev);
        prev = x;
    }
}

TEST(TokenizerTest, EncodeLayout) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    trace::Stream s;
    s.events = {{0.0, lte::kSrvReq}, {10.0, lte::kS1ConnRel}};
    const auto t = tok.encode(s);
    ASSERT_EQ(t.shape(), (nn::Shape{2, 9}));
    // First token: one-hot SRV_REQ, ia 0, stop 0 -> stop one-hot (1, 0).
    EXPECT_EQ(t[lte::kSrvReq], 1.0f);
    EXPECT_EQ(t[tok.interarrival_offset()], 0.0f);
    EXPECT_EQ(t[tok.stop_offset()], 1.0f);
    EXPECT_EQ(t[tok.stop_offset() + 1], 0.0f);
    // Second token: stop flag set.
    EXPECT_EQ(t[9 + tok.stop_offset() + 1], 1.0f);
    EXPECT_GT(t[9 + tok.interarrival_offset()], 0.0f);
}

TEST(ModelTest, ForwardShapes) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(1);
    const CptGpt model(tok, tiny_config(), rng);
    nn::Var tokens = nn::make_var(nn::Tensor::zeros({2, 5, tok.d_token()}));
    const auto out = model.forward(tokens);
    EXPECT_EQ(out.event_logits->value.shape(), (nn::Shape{10, 6}));
    EXPECT_EQ(out.ia_mu->value.shape(), (nn::Shape{10}));
    EXPECT_EQ(out.ia_logvar->value.shape(), (nn::Shape{10}));
    EXPECT_EQ(out.stop_logits->value.shape(), (nn::Shape{10, 2}));
}

TEST(ModelTest, AblationHeadHasNoVariance) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    auto cfg = tiny_config();
    cfg.distribution_head = false;
    util::Rng rng(2);
    const CptGpt model(tok, cfg, rng);
    nn::Var tokens = nn::make_var(nn::Tensor::zeros({1, 3, tok.d_token()}));
    const auto out = model.forward(tokens);
    EXPECT_EQ(out.ia_logvar, nullptr);
    EXPECT_EQ(out.ia_mu->value.shape(), (nn::Shape{3}));
}

TEST(ModelTest, PackageRoundTrip) {
    const auto world = phone_world(40);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(3);
    const CptGpt model(tok, tiny_config(), rng);
    const auto dist = world.initial_event_distribution();
    const std::string path =
        (std::filesystem::temp_directory_path() / "cptgpt_pkg_test.bin").string();
    model.save_package(path, tok, dist);

    const auto pkg = CptGpt::load_package(path, cellular::Generation::kLte4G, tiny_config());
    EXPECT_NEAR(pkg.tokenizer.max_log_interarrival(), tok.max_log_interarrival(), 1e-5);
    ASSERT_EQ(pkg.initial_event_dist.size(), dist.size());
    for (std::size_t i = 0; i < dist.size(); ++i) {
        EXPECT_NEAR(pkg.initial_event_dist[i], dist[i], 1e-6);
    }
    // Loaded model reproduces the original's outputs bit-for-bit on floats.
    util::Rng data_rng(4);
    nn::Var tokens = nn::make_var(nn::Tensor::randn(data_rng, {1, 4, tok.d_token()}, 0.5f));
    const auto a = model.forward(tokens);
    const auto b = pkg.model->forward(tokens);
    for (std::size_t i = 0; i < a.event_logits->value.numel(); ++i) {
        EXPECT_EQ(a.event_logits->value[i], b.event_logits->value[i]);
    }
    std::remove(path.c_str());
}

TEST(TrainerTest, LossDecreases) {
    const auto world = phone_world(60);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(5);
    CptGpt model(tok, tiny_config(), rng);
    TrainConfig cfg;
    cfg.max_epochs = 4;
    cfg.window = 32;
    Trainer trainer(model, tok, cfg);
    const auto r = trainer.train(world);
    ASSERT_GE(r.epochs_run, 2);
    EXPECT_LT(r.train_loss.back(), r.train_loss.front());
    EXPECT_GT(r.seconds, 0.0);
}

TEST(TrainerTest, EarlyStoppingTriggers) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(6);
    CptGpt model(tok, tiny_config(), rng);
    TrainConfig cfg;
    cfg.max_epochs = 100;
    cfg.patience = 1;
    cfg.window = 32;
    cfg.lr = 0.0f;  // no progress possible -> must stop after patience epochs
    cfg.lr_decay = false;
    Trainer trainer(model, tok, cfg);
    const auto r = trainer.train(world);
    EXPECT_LT(r.epochs_run, 100);
    EXPECT_LE(r.epochs_run, 3);
}

TEST(TrainerTest, AblationHeadTrains) {
    const auto world = phone_world(50);
    const auto tok = Tokenizer::fit(world);
    auto mcfg = tiny_config();
    mcfg.distribution_head = false;
    util::Rng rng(7);
    CptGpt model(tok, mcfg, rng);
    TrainConfig cfg;
    cfg.max_epochs = 3;
    cfg.window = 32;
    Trainer trainer(model, tok, cfg);
    const auto r = trainer.train(world);
    EXPECT_LT(r.train_loss.back(), r.train_loss.front());
}

TEST(TrainerTest, RejectsEmptyData) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(8);
    CptGpt model(tok, tiny_config(), rng);
    Trainer trainer(model, tok, TrainConfig{});
    trace::Dataset empty;
    EXPECT_THROW(trainer.train(empty), std::invalid_argument);
}

TEST(SamplerTest, StreamsRespectContract) {
    const auto world = phone_world(60);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(9);
    CptGpt model(tok, tiny_config(), rng);  // untrained is fine for contracts
    SamplerConfig scfg;
    scfg.max_stream_len = 20;
    scfg.device = trace::DeviceType::kTablet;
    scfg.hour_of_day = 3;
    const Sampler sampler(model, tok, world.initial_event_distribution(), scfg);
    util::Rng gen_rng(10);
    const auto ds = sampler.generate(30, gen_rng);
    for (const auto& s : ds.streams) {
        EXPECT_GE(s.length(), 2u);
        EXPECT_LE(s.length(), 20u);
        EXPECT_EQ(s.device, trace::DeviceType::kTablet);
        EXPECT_EQ(s.hour_of_day, 3);
        EXPECT_DOUBLE_EQ(s.events.front().timestamp, 0.0);
        double prev = 0.0;
        for (const auto& e : s.events) {
            EXPECT_GE(e.timestamp, prev);
            prev = e.timestamp;
        }
    }
}

TEST(SamplerTest, FirstEventFollowsInitialDistribution) {
    const auto world = phone_world(60);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(11);
    CptGpt model(tok, tiny_config(), rng);
    // Degenerate initial distribution: always HO.
    std::vector<double> dist(6, 0.0);
    dist[lte::kHo] = 1.0;
    const Sampler sampler(model, tok, dist, SamplerConfig{});
    util::Rng gen_rng(12);
    for (int i = 0; i < 10; ++i) {
        const auto s = sampler.sample_stream("x", gen_rng);
        EXPECT_EQ(s.events.front().type, lte::kHo);
    }
}

TEST(SamplerTest, RejectsBadInitialDistribution) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(13);
    CptGpt model(tok, tiny_config(), rng);
    EXPECT_THROW(Sampler(model, tok, std::vector<double>(3, 0.1)), std::invalid_argument);
    EXPECT_THROW(Sampler(model, tok, std::vector<double>(6, 0.0)), std::invalid_argument);
}

// Integration: a briefly-trained tiny model must beat an untrained one on
// semantic violations by a wide margin.
TEST(CptGptIntegrationTest, TrainingReducesViolations) {
    const auto world = phone_world(200, 31);
    const auto tok = Tokenizer::fit(world);
    auto cfg = tiny_config();
    cfg.d_model = 32;
    cfg.mlp_hidden = 64;
    util::Rng rng(14);
    CptGpt untrained(tok, cfg, rng);
    util::Rng rng2(14);
    CptGpt trained(tok, cfg, rng2);
    TrainConfig tcfg;
    tcfg.max_epochs = 18;
    tcfg.patience = 8;
    tcfg.window = 48;
    // Weighting the event loss up sharpens transitions quickly on a small
    // budget (the paper's Table 8 shows fidelity is insensitive to this).
    tcfg.w_event = 3.0f;
    Trainer(trained, tok, tcfg).train(world);

    const auto dist = world.initial_event_distribution();
    util::Rng g1(15);
    util::Rng g2(15);
    const auto before = Sampler(untrained, tok, dist).generate(60, g1);
    const auto after = Sampler(trained, tok, dist).generate(60, g2);
    const double v_before = metrics::semantic_violations(before).event_fraction();
    const double v_after = metrics::semantic_violations(after).event_fraction();
    EXPECT_LT(v_after, v_before * 0.5)
        << "training should cut violations sharply (before " << v_before << ", after " << v_after
        << ")";
}

}  // namespace
}  // namespace cpt::core
