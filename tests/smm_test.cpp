// Tests for the semi-Markov baseline: empirical CDFs, fitting, generation
// invariants (zero violations by construction), clustering, ensembles.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/fidelity.hpp"
#include "smm/cluster.hpp"
#include "smm/ensemble.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

namespace cpt::smm {
namespace {

namespace lte = cellular::lte;

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 11) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

TEST(EmpiricalCdfTest, SamplesWithinRangeAndDistributed) {
    EmpiricalCdf cdf({1.0, 2.0, 3.0, 4.0, 5.0});
    util::Rng rng(3);
    std::vector<double> draws(5000);
    for (auto& d : draws) {
        d = cdf.sample(rng);
        EXPECT_GE(d, 1.0);
        EXPECT_LE(d, 5.0);
    }
    // Mean of the interpolated inverse-CDF sampler is the sample mean.
    EXPECT_NEAR(util::summarize(draws).mean, 3.0, 0.1);
}

TEST(EmpiricalCdfTest, EdgeCases) {
    util::Rng rng(4);
    EmpiricalCdf empty;
    EXPECT_THROW(empty.sample(rng), std::logic_error);
    EmpiricalCdf single({7.0});
    EXPECT_DOUBLE_EQ(single.sample(rng), 7.0);
}

TEST(SemiMarkovTest, FitRejectsEmptyDataset) {
    trace::Dataset empty;
    EXPECT_THROW(SemiMarkovModel::fit(empty), std::invalid_argument);
}

TEST(SemiMarkovTest, GeneratedStreamsNeverViolate) {
    const auto world = phone_world(200);
    const auto model = SemiMarkovModel::fit(world);
    util::Rng rng(5);
    const auto generated = model.generate(300, rng);
    ASSERT_GT(generated.streams.size(), 250u);
    const auto v = metrics::semantic_violations(generated);
    EXPECT_EQ(v.violating_events, 0u);  // the machine is built in (paper §5.2.1)
    EXPECT_EQ(v.violating_streams, 0u);
}

TEST(SemiMarkovTest, LearnsEventBreakdown) {
    const auto world = phone_world(400);
    const auto model = SemiMarkovModel::fit(world);
    util::Rng rng(6);
    const auto generated = model.generate(400, rng);
    const auto real = world.event_type_breakdown();
    const auto synth = generated.event_type_breakdown();
    for (std::size_t e = 0; e < real.size(); ++e) {
        EXPECT_NEAR(synth[e], real[e], 0.05) << "event " << e;
    }
}

TEST(SemiMarkovTest, SojournsRoughlyMatchPooledDistribution) {
    const auto world = phone_world(400);
    const auto model = SemiMarkovModel::fit(world);
    util::Rng rng(7);
    const auto generated = model.generate(400, rng);
    const auto rs = metrics::collect_sojourns(world);
    const auto gs = metrics::collect_sojourns(generated);
    // Pooled sojourns are exactly what the SMM fits; the per-UE means are
    // what it misses (heterogeneity), so only the pooled check is tight.
    EXPECT_LT(util::max_cdf_y_distance(rs.connected, gs.connected), 0.15);
}

TEST(SemiMarkovTest, Smm1MissesPerUeHeterogeneity) {
    // The headline SMM-1 weakness (Table 6: flow-length max-y 44-60%): a
    // single model pools all UEs, so per-UE flow length and mean-sojourn
    // diversity collapse.
    const auto world = phone_world(400);
    const auto model = SemiMarkovModel::fit(world);
    util::Rng rng(8);
    const auto generated = model.generate(400, rng);
    const auto report = metrics::evaluate_fidelity(generated, world);
    EXPECT_GT(report.maxy_flow_length_all, 0.15)
        << "SMM-1 should visibly miss the flow-length distribution";
}

TEST(SemiMarkovTest, CountsCdfs) {
    const auto world = phone_world(150);
    const auto model = SemiMarkovModel::fit(world);
    EXPECT_GT(model.num_cdfs(), 5u);
    EXPECT_GT(model.num_fitted_streams(), 100u);
}

TEST(ClusterTest, FeaturesReflectStreamShape) {
    trace::Stream s;
    s.events = {{0.0, lte::kSrvReq}, {5.0, lte::kS1ConnRel}, {50.0, lte::kSrvReq},
                {60.0, lte::kHo}, {61.0, lte::kTau}, {70.0, lte::kS1ConnRel}};
    const auto f = stream_features(s);
    EXPECT_NEAR(f[0], std::log(6.0), 1e-9);
    EXPECT_NEAR(f[2], 1.0 / 6.0, 1e-9);  // HO fraction
    EXPECT_GT(f[3], 0.0);                // has connected sojourns
}

TEST(ClusterTest, KmeansSeparatesShortAndLongFlows) {
    // Build a dataset with two obvious groups: very short vs very long flows.
    trace::Dataset ds;
    util::Rng rng(9);
    for (int i = 0; i < 40; ++i) {
        trace::Stream s;
        s.ue_id = "short" + std::to_string(i);
        double t = 0.0;
        for (int k = 0; k < 4; ++k) {
            s.events.push_back({t, k % 2 ? lte::kS1ConnRel : lte::kSrvReq});
            t += rng.uniform(1.0, 5.0);
        }
        ds.streams.push_back(s);
    }
    for (int i = 0; i < 40; ++i) {
        trace::Stream s;
        s.ue_id = "long" + std::to_string(i);
        double t = 0.0;
        for (int k = 0; k < 120; ++k) {
            s.events.push_back({t, k % 2 ? lte::kS1ConnRel : lte::kSrvReq});
            t += rng.uniform(10.0, 40.0);
        }
        ds.streams.push_back(s);
    }
    const auto c = kmeans_streams(ds, 2, rng);
    ASSERT_EQ(c.centroids.size(), 2u);
    // All short flows in one cluster, all long flows in the other.
    const std::size_t first_short = c.assignment[0];
    for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(c.assignment[i], first_short);
    const std::size_t first_long = c.assignment[40];
    EXPECT_NE(first_long, first_short);
    for (std::size_t i = 40; i < 80; ++i) EXPECT_EQ(c.assignment[i], first_long);
}

TEST(ClusterTest, ClampsKAndHandlesTinyDatasets) {
    const auto tiny = phone_world(5);
    util::Rng rng(10);
    const auto c = kmeans_streams(tiny, 50, rng);
    EXPECT_LE(c.centroids.size(), tiny.streams.size());
}

TEST(EnsembleTest, GeneratesValidStreamsAndBeatsSmm1OnFlowLength) {
    const auto world = phone_world(500);
    util::Rng rng(11);
    const auto ensemble = SmmEnsemble::fit(world, 24, rng);
    EXPECT_GT(ensemble.num_models(), 4u);
    EXPECT_GT(ensemble.num_cdfs(), ensemble.num_models());

    const auto smm1 = fit_smm1(world);
    util::Rng g1(12);
    util::Rng g2(12);
    const auto from_ensemble = ensemble.generate(400, g1);
    const auto from_smm1 = smm1.generate(400, g2);
    const auto v = metrics::semantic_violations(from_ensemble);
    EXPECT_EQ(v.violating_events, 0u);

    const auto re = metrics::evaluate_fidelity(from_ensemble, world);
    const auto r1 = metrics::evaluate_fidelity(from_smm1, world);
    // The cluster ensemble recovers flow-length diversity that SMM-1 loses
    // (the paper's SMM-20k vs SMM-1 contrast in Table 6).
    EXPECT_LT(re.maxy_flow_length_all, r1.maxy_flow_length_all);
}

}  // namespace
}  // namespace cpt::smm
