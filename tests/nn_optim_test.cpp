// Optimizer and checkpoint serialization tests.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/modules.hpp"
#include "nn/optim.hpp"
#include "nn/serialize.hpp"

namespace cpt::nn {
namespace {

// Minimizes f(w) = (w - 3)^2 and checks convergence.
template <typename MakeOpt>
void check_converges_to_three(MakeOpt make_opt, int steps, float tol) {
    Var w = make_param(Tensor::from({-5.0f}, {1}));
    auto opt = make_opt(std::vector<Var>{w});
    for (int i = 0; i < steps; ++i) {
        Var diff = add_scalar(w, -3.0f);
        Var loss = mean_all(mul(diff, diff));
        opt->zero_grad();
        backward(loss);
        opt->step();
    }
    EXPECT_NEAR(w->value[0], 3.0f, tol);
}

TEST(OptimTest, SgdConverges) {
    check_converges_to_three(
        [](std::vector<Var> p) { return std::make_unique<Sgd>(std::move(p), 0.1f); }, 200, 1e-3f);
}

TEST(OptimTest, SgdMomentumConverges) {
    check_converges_to_three(
        [](std::vector<Var> p) { return std::make_unique<Sgd>(std::move(p), 0.02f, 0.9f); }, 300,
        1e-2f);
}

TEST(OptimTest, AdamConverges) {
    check_converges_to_three(
        [](std::vector<Var> p) { return std::make_unique<Adam>(std::move(p), 0.1f); }, 400, 1e-2f);
}

TEST(OptimTest, AdamWeightDecayShrinksUnusedWeights) {
    // With zero gradient signal, decoupled weight decay alone must shrink the
    // parameter geometrically; without it the parameter stays put.
    Var decayed = make_param(Tensor::from({4.0f}, {1}));
    Var frozen = make_param(Tensor::from({4.0f}, {1}));
    Adam with_decay({decayed}, 0.1f, 0.9f, 0.999f, 1e-8f, 0.1f);
    Adam without({frozen}, 0.1f, 0.9f, 0.999f, 1e-8f, 0.0f);
    for (int i = 0; i < 50; ++i) {
        decayed->ensure_grad().fill(0.0f);
        frozen->ensure_grad().fill(0.0f);
        with_decay.step();
        without.step();
    }
    EXPECT_LT(decayed->value[0], 3.0f);
    EXPECT_FLOAT_EQ(frozen->value[0], 4.0f);
}

TEST(OptimTest, ZeroGradClears) {
    Var w = make_param(Tensor::from({1.0f}, {1}));
    Adam opt({w}, 0.1f);
    backward(mean_all(mul(w, w)));
    EXPECT_NE(w->grad[0], 0.0f);
    opt.zero_grad();
    EXPECT_EQ(w->grad[0], 0.0f);
}

TEST(OptimTest, ClipGradNorm) {
    Var a = make_param(Tensor::from({3.0f}, {1}));
    Var b = make_param(Tensor::from({4.0f}, {1}));
    a->ensure_grad()[0] = 3.0f;
    b->ensure_grad()[0] = 4.0f;
    const std::vector<Var> params{a, b};
    const double norm = clip_grad_norm(params, 1.0);
    EXPECT_NEAR(norm, 5.0, 1e-6);
    EXPECT_NEAR(a->grad[0], 3.0f / 5.0f, 1e-5f);
    EXPECT_NEAR(b->grad[0], 4.0f / 5.0f, 1e-5f);
    // Below the limit: untouched.
    const double norm2 = clip_grad_norm(params, 10.0);
    EXPECT_NEAR(norm2, 1.0, 1e-5);
    EXPECT_NEAR(a->grad[0], 0.6f, 1e-5f);
}

TEST(SerializeTest, RoundTripRestoresWeights) {
    util::Rng rng(11);
    Mlp a(3, 5, 2, rng);
    Mlp b(3, 5, 2, rng);  // different init
    const std::string path =
        (std::filesystem::temp_directory_path() / "cpt_nn_ckpt_test.bin").string();
    save_parameters(path, a.named_parameters("mlp."));
    load_parameters(path, b.named_parameters("mlp."));
    const auto pa = a.parameters();
    const auto pb = b.parameters();
    ASSERT_EQ(pa.size(), pb.size());
    for (std::size_t i = 0; i < pa.size(); ++i) {
        const auto da = pa[i]->value.data();
        const auto db = pb[i]->value.data();
        for (std::size_t j = 0; j < da.size(); ++j) EXPECT_EQ(da[j], db[j]);
    }
    std::remove(path.c_str());
}

TEST(SerializeTest, MismatchesRejected) {
    util::Rng rng(12);
    Mlp a(3, 5, 2, rng);
    Mlp wrong_shape(3, 6, 2, rng);
    Mlp wrong_names(3, 5, 2, rng);
    const std::string path =
        (std::filesystem::temp_directory_path() / "cpt_nn_ckpt_test2.bin").string();
    save_parameters(path, a.named_parameters("mlp."));
    EXPECT_THROW(load_parameters(path, wrong_shape.named_parameters("mlp.")), std::runtime_error);
    EXPECT_THROW(load_parameters(path, wrong_names.named_parameters("other.")), std::runtime_error);
    EXPECT_THROW(load_parameters("/nonexistent/nope.bin", a.named_parameters("mlp.")),
                 std::runtime_error);
    std::remove(path.c_str());
}

}  // namespace
}  // namespace cpt::nn
