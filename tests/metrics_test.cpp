// Tests for the fidelity metric suite against hand-constructed datasets with
// known violation counts and distributions.
#include <gtest/gtest.h>

#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"

namespace cpt::metrics {
namespace {

namespace lte = cellular::lte;

trace::Stream stream_of(std::initializer_list<std::pair<double, cellular::EventId>> list) {
    trace::Stream s;
    static int counter = 0;
    // Built via insert rather than "m" + to_string(...): GCC 12's -Wrestrict
    // false-fires on the inlined string operator+ at -O3.
    std::string id = std::to_string(counter++);
    id.insert(0, 1, 'm');
    s.ue_id = std::move(id);
    for (auto& [t, e] : list) s.events.push_back({t, e});
    return s;
}

TEST(ViolationsTest, CountsEventsAndStreams) {
    trace::Dataset ds;
    // Clean stream: 3 counted events, 0 violations.
    ds.streams.push_back(stream_of({{0, lte::kSrvReq},
                                    {5, lte::kS1ConnRel},
                                    {60, lte::kSrvReq},
                                    {70, lte::kS1ConnRel}}));
    // Dirty stream: (S1_REL_S, S1_CONN_REL) violation.
    ds.streams.push_back(stream_of({{0, lte::kSrvReq},
                                    {5, lte::kS1ConnRel},
                                    {6, lte::kS1ConnRel}}));
    const auto v = semantic_violations(ds);
    EXPECT_EQ(v.total_streams, 2u);
    EXPECT_EQ(v.violating_streams, 1u);
    EXPECT_EQ(v.counted_events, 5u);  // 3 + 2 (bootstrap events excluded)
    EXPECT_EQ(v.violating_events, 1u);
    EXPECT_DOUBLE_EQ(v.stream_fraction(), 0.5);
    EXPECT_DOUBLE_EQ(v.event_fraction(), 0.2);
    ASSERT_FALSE(v.top_categories.empty());
    EXPECT_EQ(v.top_categories[0].state, "S1_REL_S");
    EXPECT_EQ(v.top_categories[0].event, "S1_CONN_REL");
}

TEST(ViolationsTest, TopCategoriesSorted) {
    trace::Dataset ds;
    // Two (S1_REL_S, HO) violations, one (CONNECTED, SRV_REQ).
    ds.streams.push_back(stream_of(
        {{0, lte::kSrvReq}, {1, lte::kS1ConnRel}, {2, lte::kHo}, {3, lte::kHo}}));
    ds.streams.push_back(stream_of({{0, lte::kSrvReq}, {1, lte::kSrvReq}}));
    const auto v = semantic_violations(ds);
    ASSERT_GE(v.top_categories.size(), 2u);
    EXPECT_EQ(v.top_categories[0].state, "S1_REL_S");
    EXPECT_EQ(v.top_categories[0].event, "HO");
    EXPECT_GE(v.top_categories[0].event_fraction, v.top_categories[1].event_fraction);
}

TEST(SojournTest, PerUeMeansMatchHandComputation) {
    trace::Dataset ds;
    // CONNECTED sojourns: 10 and 30 -> per-UE mean 20; IDLE: 90.
    ds.streams.push_back(stream_of({{0, lte::kSrvReq},
                                    {10, lte::kS1ConnRel},
                                    {100, lte::kSrvReq},
                                    {130, lte::kS1ConnRel},
                                    {200, lte::kSrvReq}}));
    const auto s = collect_sojourns(ds);
    ASSERT_EQ(s.connected.size(), 2u);
    ASSERT_EQ(s.per_ue_mean_connected.size(), 1u);
    EXPECT_DOUBLE_EQ(s.per_ue_mean_connected[0], 20.0);
    ASSERT_EQ(s.per_ue_mean_idle.size(), 1u);
    EXPECT_DOUBLE_EQ(s.per_ue_mean_idle[0], 80.0);  // 10->100 (90) and 130->200 (70)
}

TEST(FidelityReportTest, IdenticalDatasetsScoreNearZero) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {150, 0, 0};
    cfg.seed = 77;
    const auto ds = trace::SyntheticWorldGenerator(cfg).generate();
    const auto r = evaluate_fidelity(ds, ds);
    EXPECT_DOUBLE_EQ(r.event_violation_fraction, 0.0);
    EXPECT_DOUBLE_EQ(r.stream_violation_fraction, 0.0);
    EXPECT_DOUBLE_EQ(r.maxy_sojourn_connected, 0.0);
    EXPECT_DOUBLE_EQ(r.maxy_flow_length_all, 0.0);
    EXPECT_DOUBLE_EQ(r.max_breakdown_diff(), 0.0);
}

TEST(FidelityReportTest, TwoSeedsOfSameWorldScoreLow) {
    // Sampling noise floor: two independent draws from the same world should
    // have small (but nonzero) distances. This pins the metric scale.
    trace::SyntheticWorldConfig cfg;
    cfg.population = {400, 0, 0};
    cfg.seed = 1;
    const auto a = trace::SyntheticWorldGenerator(cfg).generate();
    cfg.seed = 2;
    const auto b = trace::SyntheticWorldGenerator(cfg).generate();
    const auto r = evaluate_fidelity(a, b);
    EXPECT_LT(r.maxy_sojourn_connected, 0.12);
    EXPECT_LT(r.maxy_sojourn_idle, 0.12);
    EXPECT_LT(r.maxy_flow_length_all, 0.12);
    EXPECT_LT(r.max_breakdown_diff(), 0.03);
    EXPECT_DOUBLE_EQ(r.event_violation_fraction, 0.0);
}

TEST(FidelityReportTest, DetectsDistributionShift) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {200, 0, 0};
    cfg.seed = 5;
    const auto phones = trace::SyntheticWorldGenerator(cfg).generate();
    cfg.population = {0, 200, 0};
    const auto cars = trace::SyntheticWorldGenerator(cfg).generate();
    const auto r = evaluate_fidelity(cars, phones);
    // Cars and phones differ in all dimensions.
    EXPECT_GT(r.maxy_sojourn_idle + r.maxy_sojourn_connected, 0.25);
    EXPECT_GT(r.max_breakdown_diff(), 0.02);
}

TEST(FidelityReportTest, RenderMentionsAllMetrics) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {50, 0, 0};
    const auto ds = trace::SyntheticWorldGenerator(cfg).generate();
    const auto r = evaluate_fidelity(ds, ds);
    const std::string text = render_report(r, ds);
    for (const char* needle : {"event violations", "sojourn CONNECTED", "flow length",
                               "SRV_REQ", "S1_CONN_REL"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle;
    }
}

}  // namespace
}  // namespace cpt::metrics
