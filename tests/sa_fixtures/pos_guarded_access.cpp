// Positive control for tests/sa_compile_test.cmake (MODE=tsa_pos): identical
// shape to neg_guarded_access.cpp but every access holds the lock, so the
// thread-safety analysis must accept it. If this control ever fails, the
// negative test's rejection is meaningless (the harness would be failing on
// setup, not on the seeded bug).
#include "util/sync.hpp"

struct Counter {
    cpt::util::Mutex mu;
    int hits CPT_GUARDED_BY(mu) = 0;

    void bump() {
        cpt::util::LockGuard lock(mu);
        hits += 1;
    }

    int read() {
        cpt::util::LockGuard lock(mu);
        return hits;
    }
};

int main() {
    Counter c;
    c.bump();
    return c.read();
}
