// Fixture: AVX2 leakage into a baseline TU. Expected: avx2-isolation at both
// includes (the intrinsics header and the _avx2 kernel header).
#include <immintrin.h>

#include "kernels_avx2.hpp"

namespace fixture {

float sum8(const float* p) {
    __m256 v = _mm256_loadu_ps(p);
    (void)v;
    return p[0];
}

}  // namespace fixture
