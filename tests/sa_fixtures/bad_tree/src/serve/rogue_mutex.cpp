// Fixture: names std sync primitives outside src/util/sync.hpp.
// Expected: sync-types at the include and at each std:: mention.
#include <mutex>
#include <condition_variable>

namespace fixture {

std::mutex g_mu;

int bump(int v) {
    std::lock_guard<std::mutex> lock(g_mu);
    return v + 1;
}

// Mentions in comments (std::mutex) and strings must NOT be flagged:
const char* kDoc = "prefer util::Mutex over std::mutex";

}  // namespace fixture
