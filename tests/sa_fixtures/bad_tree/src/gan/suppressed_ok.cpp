// Fixture: every violation here carries a cpt-sa-allow marker, so this file
// must contribute ZERO findings — it proves suppression works per-line and
// per-rule.
#include <mutex>  // cpt-sa-allow(sync-types)
#include <cstdio>

namespace fixture {

// cpt-sa-allow(sync-types)
std::mutex g_reviewed_exception;

void reviewed_diagnostic() {
    std::fprintf(stderr, "reviewed\n");  // cpt-sa-allow(*)
}

}  // namespace fixture
