// Fixture: nondeterminism in a deterministic path (src/core/sampler.*).
// Expected: determinism at rand/srand/time/std::time and at both iteration
// sites; NOT at the member call, the prefixed identifier, or the lookup.
#include <cstdlib>
#include <ctime>
#include <unordered_map>

namespace fixture {

int draw() {
    srand(static_cast<unsigned>(time(nullptr)));
    const auto stamp = std::time(nullptr);
    (void)stamp;
    return rand();
}

int histogram() {
    std::unordered_map<int, int> counts;
    counts[1] = 2;  // lookup/insert is fine; only iteration order is unstable
    int total = 0;
    for (const auto& kv : counts) total += kv.second;
    for (auto it = counts.begin(); it != counts.end(); ++it) total += it->second;
    return total;
}

template <typename Clock>
long fine(Clock& c) {
    long stage_times = c.time(0);  // member call + distinct identifier: clean
    return stage_times;
}

}  // namespace fixture
