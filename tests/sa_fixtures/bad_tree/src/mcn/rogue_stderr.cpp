// Fixture: raw stderr writes outside src/util/log.cpp. Expected: raw-stderr
// at the fprintf and the std::cerr; NOT at the stdout printf.
#include <cstdio>
#include <iostream>

namespace fixture {

void warn_badly(const char* what) {
    std::fprintf(stderr, "oops: %s\n", what);
    std::cerr << "also oops: " << what << "\n";
    std::printf("stdout output is data, not diagnostics: %s\n", what);
}

}  // namespace fixture
