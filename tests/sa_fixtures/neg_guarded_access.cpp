// Negative fixture for the thread-safety annotation gate: `hits` is declared
// CPT_GUARDED_BY(mu) but bump_unlocked() touches it without holding mu.
// Under clang -Wthread-safety -Werror=thread-safety-analysis this file MUST
// fail to compile; tests/sa_compile_test.cmake (MODE=tsa_neg) asserts that.
// Under GCC the macros are no-ops and it compiles — which is exactly why the
// harness skips when no clang is available instead of passing vacuously.
#include "util/sync.hpp"

struct Counter {
    cpt::util::Mutex mu;
    int hits CPT_GUARDED_BY(mu) = 0;

    void bump_unlocked() { hits += 1; }  // BAD: no lock held

    int read() {
        cpt::util::LockGuard lock(mu);
        return hits;
    }
};

int main() {
    Counter c;
    c.bump_unlocked();
    return c.read();
}
