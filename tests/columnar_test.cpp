// Columnar trace substrate suite (DESIGN.md §14): round trips, chunk
// boundaries, CSV byte-stability, malformed-file rejection with byte offsets,
// chunked-generation byte-identity across thread counts and chunk sizes, and
// the streaming lint/fidelity paths against their in-RAM counterparts.
#include "trace/columnar.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "lint/trace_lint.hpp"
#include "metrics/fidelity.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace cpt::trace {
namespace {

std::string tmp_path(const std::string& name) {
    return (std::filesystem::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

void spit(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

Dataset small_world(std::size_t phones = 40, std::uint64_t seed = 33) {
    SyntheticWorldConfig cfg;
    cfg.population = {phones, phones / 4, phones / 8};
    cfg.seed = seed;
    return SyntheticWorldGenerator(cfg).generate();
}

void expect_datasets_equal(const Dataset& a, const Dataset& b) {
    ASSERT_EQ(a.generation, b.generation);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        const auto& sa = a.streams[i];
        const auto& sb = b.streams[i];
        EXPECT_EQ(sa.ue_id, sb.ue_id);
        EXPECT_EQ(sa.device, sb.device);
        EXPECT_EQ(sa.hour_of_day, sb.hour_of_day);
        ASSERT_EQ(sa.events.size(), sb.events.size());
        for (std::size_t k = 0; k < sa.events.size(); ++k) {
            EXPECT_EQ(sa.events[k].type, sb.events[k].type);
            // The columnar side stores microsecond ticks.
            EXPECT_DOUBLE_EQ(
                ticks_to_timestamp(timestamp_to_ticks(sa.events[k].timestamp)),
                sb.events[k].timestamp);
        }
    }
}

TEST(ColumnarFormat, TickQuantizationRoundTripsCsvPrecision) {
    // Every %.6f-printable timestamp must survive the tick representation.
    for (const double t : {0.0, 0.000001, 0.05, 1.5, 3599.999999, 123.456789}) {
        EXPECT_DOUBLE_EQ(ticks_to_timestamp(timestamp_to_ticks(t)), t);
    }
}

TEST(ColumnarFormat, DatasetRoundTrip) {
    const auto ds = small_world();
    const std::string path = tmp_path("cpt_columnar_roundtrip.cpt");
    write_columnar_file(path, ds, 16);
    const auto back = read_columnar_file(path);
    expect_datasets_equal(ds, back);
    std::remove(path.c_str());
}

TEST(ColumnarFormat, CsvColumnarCsvIsByteStable) {
    const auto ds = small_world();
    const std::string csv_a = tmp_path("cpt_columnar_a.csv");
    const std::string col = tmp_path("cpt_columnar_mid.cpt");
    const std::string csv_b = tmp_path("cpt_columnar_b.csv");
    write_csv_file(csv_a, ds);

    const auto stats = csv_to_columnar(csv_a, col, 16);
    EXPECT_EQ(stats.streams, ds.streams.size());
    columnar_to_csv(col, csv_b);

    EXPECT_EQ(slurp(csv_a), slurp(csv_b));
    std::remove(csv_a.c_str());
    std::remove(col.c_str());
    std::remove(csv_b.c_str());
}

TEST(ColumnarFormat, ChunkBoundariesPreserveStreamOrder) {
    const auto ds = small_world();
    ASSERT_GT(ds.streams.size(), 7u);
    const std::string path = tmp_path("cpt_columnar_chunks.cpt");
    ColumnarStats stats;
    {
        ColumnarWriter writer(path, ds.generation, 3);  // force many tiny chunks
        for (const auto& s : ds.streams) writer.append(s);
        stats = writer.finish();
    }
    EXPECT_EQ(stats.streams, ds.streams.size());
    EXPECT_EQ(stats.chunks, (ds.streams.size() + 2) / 3);

    ColumnarReader reader(path);
    EXPECT_EQ(reader.total_streams(), ds.streams.size());
    StreamBatch batch;
    std::size_t i = 0;
    while (reader.next(batch)) {
        EXPECT_LE(batch.size(), 3u);
        for (std::size_t k = 0; k < batch.size(); ++k, ++i) {
            EXPECT_EQ(batch.ue_ids[k], ds.streams[i].ue_id);
            EXPECT_EQ(batch.events_of(k).size(), ds.streams[i].events.size());
        }
    }
    EXPECT_EQ(i, ds.streams.size());

    // rewind() restarts at the first chunk.
    reader.rewind();
    ASSERT_TRUE(reader.next(batch));
    EXPECT_EQ(batch.ue_ids.front(), ds.streams.front().ue_id);
    std::remove(path.c_str());
}

TEST(ColumnarFormat, EmptyDatasetRoundTrip) {
    const std::string path = tmp_path("cpt_columnar_empty.cpt");
    Dataset empty;
    empty.generation = cellular::Generation::kNr5G;
    write_columnar_file(path, empty);

    ColumnarReader reader(path);
    EXPECT_EQ(reader.generation(), cellular::Generation::kNr5G);
    EXPECT_EQ(reader.total_streams(), 0u);
    EXPECT_EQ(reader.num_chunks(), 0u);
    StreamBatch batch;
    EXPECT_FALSE(reader.next(batch));

    const auto back = read_columnar_file(path);
    EXPECT_EQ(back.generation, cellular::Generation::kNr5G);
    EXPECT_TRUE(back.streams.empty());
    std::remove(path.c_str());
}

TEST(ColumnarFormat, TruncatedFileRejectedWithOffset) {
    const auto ds = small_world(10);
    const std::string path = tmp_path("cpt_columnar_trunc.cpt");
    write_columnar_file(path, ds);
    const std::string bytes = slurp(path);

    spit(path, bytes.substr(0, bytes.size() - 5));
    try {
        ColumnarReader reader(path);
        FAIL() << "truncated file must be rejected";
    } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find("byte offset"), std::string::npos) << e.what();
    }

    // Below the minimum well-formed size the reader names the defect class.
    spit(path, bytes.substr(0, 20));
    try {
        ColumnarReader reader(path);
        FAIL() << "tiny file must be rejected";
    } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find("too small"), std::string::npos) << e.what();
    }
    std::remove(path.c_str());
}

TEST(ColumnarFormat, CorruptMagicsRejectedWithOffset) {
    const auto ds = small_world(10);
    const std::string path = tmp_path("cpt_columnar_corrupt.cpt");
    write_columnar_file(path, ds);
    const std::string bytes = slurp(path);

    {  // header magic
        std::string bad = bytes;
        bad[0] = 'X';
        spit(path, bad);
        try {
            ColumnarReader reader(path);
            FAIL() << "bad file magic must be rejected";
        } catch (const std::exception& e) {
            EXPECT_NE(std::string(e.what()).find("bad file magic at byte offset 0"),
                      std::string::npos)
                << e.what();
        }
    }
    {  // first chunk magic sits directly after the 12-byte header
        std::string bad = bytes;
        bad[12] = 'X';
        spit(path, bad);
        ColumnarReader reader(path);
        StreamBatch batch;
        try {
            reader.next(batch);
            FAIL() << "bad chunk magic must be rejected";
        } catch (const std::exception& e) {
            EXPECT_NE(std::string(e.what()).find("bad chunk magic at byte offset 12"),
                      std::string::npos)
                << e.what();
        }
    }
    std::remove(path.c_str());
}

TEST(ColumnarFormat, CorruptDeviceColumnRejectedAtExactOffset) {
    // One single-character UE so the device byte's position is fixed: 12-byte
    // header + 24-byte chunk header + varint len (1) + ue_id (1) = offset 38.
    Dataset ds;
    Stream s;
    s.ue_id = "a";
    s.events = {{0.5, cellular::lte::kSrvReq}, {1.0, cellular::lte::kS1ConnRel}};
    ds.streams.push_back(s);
    const std::string path = tmp_path("cpt_columnar_device.cpt");
    write_columnar_file(path, ds);

    std::string bad = slurp(path);
    bad[38] = 7;  // kNumDeviceTypes == 3
    spit(path, bad);
    ColumnarReader reader(path);
    StreamBatch batch;
    try {
        reader.next(batch);
        FAIL() << "bad device id must be rejected";
    } catch (const std::exception& e) {
        EXPECT_NE(std::string(e.what()).find("bad device id at byte offset 38"), std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(ColumnarWriterTest, RejectsBadAppends) {
    const std::string path = tmp_path("cpt_columnar_badappend.cpt");
    {
        ColumnarWriter writer(path, cellular::Generation::kLte4G);
        Stream s;
        s.ue_id = "u";
        s.hour_of_day = 24;
        EXPECT_THROW(writer.append(s), std::invalid_argument);
        writer.finish();
        s.hour_of_day = 0;
        EXPECT_THROW(writer.append(s), std::invalid_argument);  // after finish()
    }
    std::remove(path.c_str());
}

// ---- chunked generation byte-identity ---------------------------------------

TEST(ChunkedGeneration, WorldGeneratorByteIdenticalToInRamPath) {
    SyntheticWorldConfig cfg;
    cfg.population = {40, 20, 10};
    cfg.seed = 77;
    const SyntheticWorldGenerator gen(cfg);

    const std::string ram_path = tmp_path("cpt_chunked_ram.cpt");
    write_columnar_file(ram_path, gen.generate(), 16);
    const std::string ram_bytes = slurp(ram_path);
    std::remove(ram_path.c_str());

    const std::size_t prev = util::global_pool().threads();
    for (const std::size_t threads : {std::size_t{1}, std::size_t{3}}) {
        util::set_global_threads(threads);
        for (const std::size_t chunk_ues : {std::size_t{7}, std::size_t{64}}) {
            const std::string path = tmp_path("cpt_chunked_stream.cpt");
            {
                ColumnarWriter writer(path, cfg.generation, 16);
                gen.generate_to(writer, chunk_ues);
                writer.finish();
            }
            EXPECT_EQ(slurp(path), ram_bytes)
                << "threads=" << threads << " chunk_ues=" << chunk_ues;
            std::remove(path.c_str());
        }
    }
    util::set_global_threads(prev);
}

TEST(ChunkedGeneration, SamplerByteIdenticalToInRamPath) {
    SyntheticWorldConfig wcfg;
    wcfg.population = {50, 0, 0};
    wcfg.seed = 21;
    const auto world = SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng model_rng(9);
    core::CptGptConfig mcfg;
    mcfg.d_model = 24;
    mcfg.heads = 2;
    mcfg.mlp_hidden = 48;
    mcfg.blocks = 1;
    mcfg.max_seq_len = 64;
    mcfg.head_hidden = 24;
    const core::CptGpt model(tok, mcfg, model_rng);  // untrained: contracts only
    core::SamplerConfig scfg;
    scfg.max_stream_len = 16;
    const core::Sampler sampler(model, tok, world.initial_event_distribution(), scfg);

    const std::string ram_path = tmp_path("cpt_sampler_ram.cpt");
    {
        util::Rng rng(5);
        write_columnar_file(ram_path, sampler.generate(20, rng), 8);
    }
    const std::string ram_bytes = slurp(ram_path);
    std::remove(ram_path.c_str());

    const std::size_t prev = util::global_pool().threads();
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}}) {
        util::set_global_threads(threads);
        const std::string path = tmp_path("cpt_sampler_stream.cpt");
        {
            util::Rng rng(5);
            ColumnarWriter writer(path, tok.generation(), 8);
            const std::size_t n = sampler.generate_to(writer, 20, rng);
            EXPECT_EQ(n, 20u);
            writer.finish();
        }
        EXPECT_EQ(slurp(path), ram_bytes) << "threads=" << threads;
        std::remove(path.c_str());
    }
    util::set_global_threads(prev);
}

// ---- streaming lint and fidelity vs the in-RAM suite ------------------------

TEST(StreamingPaths, LintMatchesInRamReport) {
    // An untrained sampler produces violations, making the comparison
    // non-trivial (first offender, per-category counts).
    SyntheticWorldConfig wcfg;
    wcfg.population = {40, 0, 0};
    wcfg.seed = 31;
    const auto world = SyntheticWorldGenerator(wcfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    util::Rng model_rng(3);
    core::CptGptConfig mcfg;
    mcfg.d_model = 24;
    mcfg.heads = 2;
    mcfg.mlp_hidden = 48;
    mcfg.blocks = 1;
    mcfg.max_seq_len = 64;
    mcfg.head_hidden = 24;
    const core::CptGpt model(tok, mcfg, model_rng);
    util::Rng rng(8);
    const auto ds =
        core::Sampler(model, tok, world.initial_event_distribution()).generate(40, rng);

    const std::string path = tmp_path("cpt_streaming_lint.cpt");
    write_columnar_file(path, ds, 8);  // several chunks
    ColumnarReader reader(path);

    const lint::TraceLinter linter(ds.generation);
    const auto ram = linter.lint(ds);
    const auto streamed = linter.lint(reader);

    EXPECT_EQ(streamed.total_streams, ram.total_streams);
    EXPECT_EQ(streamed.total_events, ram.total_events);
    EXPECT_EQ(streamed.pre_bootstrap_events, ram.pre_bootstrap_events);
    EXPECT_EQ(streamed.counted_events, ram.counted_events);
    EXPECT_EQ(streamed.violating_events, ram.violating_events);
    EXPECT_EQ(streamed.violating_streams, ram.violating_streams);
    EXPECT_EQ(streamed.unbootstrapped_streams, ram.unbootstrapped_streams);
    EXPECT_EQ(streamed.violations_by_state_event, ram.violations_by_state_event);
    ASSERT_EQ(streamed.first_offender.has_value(), ram.first_offender.has_value());
    if (ram.first_offender) {
        EXPECT_EQ(streamed.first_offender->stream_index, ram.first_offender->stream_index);
        EXPECT_EQ(streamed.first_offender->ue_id, ram.first_offender->ue_id);
        EXPECT_EQ(streamed.first_offender->event_index, ram.first_offender->event_index);
        EXPECT_EQ(streamed.first_offender->event, ram.first_offender->event);
    }

    // The streaming path cannot afford O(streams) per-UE summaries.
    lint::TraceLintConfig per_ue;
    per_ue.per_ue = true;
    EXPECT_THROW(linter.lint(reader, per_ue), std::invalid_argument);
    std::remove(path.c_str());
}

TEST(StreamingPaths, FidelityMatchesInRamWithinSketchError) {
    // ~2k-UE synthesized world vs a smaller reference, matching the ISSUE's
    // acceptance setup: counts exact, quantile distances within epsilon.
    SyntheticWorldConfig synth_cfg;
    synth_cfg.population = {1400, 560, 200};
    synth_cfg.seed = 41;
    const auto synth = SyntheticWorldGenerator(synth_cfg).generate();
    SyntheticWorldConfig ref_cfg;
    ref_cfg.population = {500, 200, 70};
    ref_cfg.seed = 43;
    const auto ref = SyntheticWorldGenerator(ref_cfg).generate();

    const auto exact = metrics::evaluate_fidelity(synth, ref);

    const std::string synth_path = tmp_path("cpt_streaming_fid_synth.cpt");
    const std::string ref_path = tmp_path("cpt_streaming_fid_ref.cpt");
    write_columnar_file(synth_path, synth);
    write_columnar_file(ref_path, ref);
    ColumnarReader synth_reader(synth_path);
    ColumnarReader ref_reader(ref_path);

    const auto acc_synth = metrics::accumulate_fidelity(synth_reader);
    const auto acc_ref = metrics::accumulate_fidelity(ref_reader);
    EXPECT_EQ(acc_synth.total_streams(), synth.streams.size());
    EXPECT_EQ(acc_synth.total_events(), synth.total_events());
    const auto streamed = metrics::evaluate_fidelity(acc_synth, acc_ref);

    // Exact pieces: violation fractions and the event-type breakdown.
    EXPECT_DOUBLE_EQ(streamed.event_violation_fraction, exact.event_violation_fraction);
    EXPECT_DOUBLE_EQ(streamed.stream_violation_fraction, exact.stream_violation_fraction);
    ASSERT_EQ(streamed.breakdown_diff.size(), exact.breakdown_diff.size());
    for (std::size_t i = 0; i < exact.breakdown_diff.size(); ++i) {
        EXPECT_NEAR(streamed.breakdown_diff[i], exact.breakdown_diff[i], 1e-12);
    }

    // Quantile-based distances: within the documented sketch rank error.
    const double eps =
        acc_synth.sketch_rank_error() + acc_ref.sketch_rank_error() + 1e-9;
    EXPECT_NEAR(streamed.maxy_sojourn_connected, exact.maxy_sojourn_connected, eps);
    EXPECT_NEAR(streamed.maxy_sojourn_idle, exact.maxy_sojourn_idle, eps);
    EXPECT_NEAR(streamed.maxy_flow_length_all, exact.maxy_flow_length_all, eps);
    EXPECT_NEAR(streamed.maxy_flow_length_srv_req, exact.maxy_flow_length_srv_req, eps);
    EXPECT_NEAR(streamed.maxy_flow_length_s1_rel, exact.maxy_flow_length_s1_rel, eps);

    // evaluate_fidelity_streaming is the same computation end to end.
    const auto streamed2 = metrics::evaluate_fidelity_streaming(synth_reader, ref_reader);
    EXPECT_DOUBLE_EQ(streamed2.maxy_sojourn_connected, streamed.maxy_sojourn_connected);
    EXPECT_DOUBLE_EQ(streamed2.maxy_flow_length_all, streamed.maxy_flow_length_all);

    std::remove(synth_path.c_str());
    std::remove(ref_path.c_str());
}

}  // namespace
}  // namespace cpt::trace
