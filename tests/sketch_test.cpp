// Streaming sketch suite (DESIGN.md §14): quantile accuracy against exact
// order statistics, the rank-error contract, merge determinism under the
// canonical fold order (and its CPT_THREADS invariance), the sketch-KS
// estimate against the exact statistic, and CountTable exactness.
#include "util/sketch.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace {

using cpt::util::CountTable;
using cpt::util::QuantileSketch;

std::vector<double> lognormal_sample(std::uint64_t seed, std::size_t n) {
    cpt::util::Rng rng(seed);
    std::vector<double> xs(n);
    for (auto& x : xs) x = std::exp(rng.normal(0.0, 1.0));
    return xs;
}

double exact_quantile(std::vector<double> xs, double q) {
    std::sort(xs.begin(), xs.end());
    const auto idx = static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1));
    return xs[idx];
}

// Rank of `v` in the sample as a fraction (share of items <= v).
double exact_rank(const std::vector<double>& sorted, double v) {
    const auto it = std::upper_bound(sorted.begin(), sorted.end(), v);
    return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

TEST(QuantileSketch, SmallSampleIsExact) {
    QuantileSketch s(64);
    for (int i = 50; i >= 1; --i) s.add(i);
    EXPECT_EQ(s.count(), 50u);
    EXPECT_EQ(s.rank_error_bound(), 0.0);  // no compaction at n < k: exact
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 25.0);
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 50.0);
}

TEST(QuantileSketch, QuantilesWithinRankErrorBound) {
    const auto xs = lognormal_sample(7, 200000);
    QuantileSketch s(256);
    for (double x : xs) s.add(x);
    EXPECT_EQ(s.count(), xs.size());
    EXPECT_GT(s.rank_error_bound(), 0.0);
    EXPECT_LT(s.rank_error_bound(), 0.12);

    auto sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double est = s.quantile(q);
        // The value returned for rank q must itself sit within the rank-error
        // bound of rank q in the exact sample.
        EXPECT_NEAR(exact_rank(sorted, est), q, s.rank_error_bound() + 1e-9)
            << "q=" << q << " est=" << est;
    }
}

TEST(QuantileSketch, CdfIsNormalizedAndMonotone) {
    const auto xs = lognormal_sample(11, 50000);
    QuantileSketch s(128);
    for (double x : xs) s.add(x);
    const auto cdf = s.cdf();
    ASSERT_FALSE(cdf.values.empty());
    EXPECT_DOUBLE_EQ(cdf.total, static_cast<double>(xs.size()));
    for (std::size_t i = 1; i < cdf.values.size(); ++i) {
        EXPECT_LT(cdf.values[i - 1], cdf.values[i]);
        EXPECT_LT(cdf.cum[i - 1], cdf.cum[i]);
    }
    EXPECT_DOUBLE_EQ(cdf.cum.back(), cdf.total);
}

TEST(QuantileSketch, CanonicalFoldIsDeterministic) {
    // Chunked adds folded in ascending chunk order must reproduce bit-equal
    // state on every run — and regardless of CPT_THREADS, because the fold
    // order is a property of the chunk sequence, not of the pool.
    const auto xs = lognormal_sample(13, 40000);
    constexpr std::size_t kChunk = 1000;

    auto fold = [&] {
        QuantileSketch total(64);
        for (std::size_t base = 0; base < xs.size(); base += kChunk) {
            QuantileSketch part(64);
            const std::size_t end = std::min(xs.size(), base + kChunk);
            for (std::size_t i = base; i < end; ++i) part.add(xs[i]);
            total.merge(part);
        }
        return total;
    };

    const QuantileSketch a = fold();
    const QuantileSketch b = fold();
    EXPECT_TRUE(a == b);

    const std::size_t prev = cpt::util::global_pool().threads();
    cpt::util::set_global_threads(3);
    const QuantileSketch c = fold();
    cpt::util::set_global_threads(prev);
    EXPECT_TRUE(a == c);
}

TEST(QuantileSketch, MergePreservesCountAndBound) {
    const auto xs = lognormal_sample(17, 30000);
    QuantileSketch whole(128);
    for (double x : xs) whole.add(x);

    QuantileSketch left(128);
    QuantileSketch right(128);
    for (std::size_t i = 0; i < xs.size(); ++i) (i < xs.size() / 2 ? left : right).add(xs[i]);
    left.merge(right);

    EXPECT_EQ(left.count(), whole.count());
    // Merged state need not equal the single-stream state (compaction is
    // lossy), but both must honor the rank-error contract.
    auto sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    for (double q : {0.25, 0.5, 0.9}) {
        EXPECT_NEAR(exact_rank(sorted, left.quantile(q)), q, left.rank_error_bound() + 1e-9);
    }
}

TEST(QuantileSketch, MergeRejectsMismatchedCapacity) {
    QuantileSketch a(64);
    QuantileSketch b(128);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
}

TEST(QuantileSketch, KsDistanceMatchesExactWithinBound) {
    const auto xs = lognormal_sample(19, 60000);
    auto ys = lognormal_sample(23, 60000);
    for (double& y : ys) y *= 1.3;  // genuine distribution shift

    QuantileSketch sx(256);
    QuantileSketch sy(256);
    for (double x : xs) sx.add(x);
    for (double y : ys) sy.add(y);

    const double exact = cpt::util::max_cdf_y_distance(xs, ys);
    const double est = cpt::util::max_cdf_y_distance(sx, sy);
    EXPECT_NEAR(est, exact, sx.rank_error_bound() + sy.rank_error_bound() + 1e-9);
}

TEST(QuantileSketch, KsDistanceEdgeCases) {
    QuantileSketch empty1(64);
    QuantileSketch empty2(64);
    QuantileSketch one(64);
    one.add(1.0);
    EXPECT_DOUBLE_EQ(cpt::util::max_cdf_y_distance(empty1, empty2), 0.0);
    EXPECT_DOUBLE_EQ(cpt::util::max_cdf_y_distance(one, empty1), 1.0);
    EXPECT_DOUBLE_EQ(cpt::util::max_cdf_y_distance(one, one), 0.0);
}

TEST(QuantileSketch, EmptyQuantileThrows) {
    QuantileSketch s(64);
    EXPECT_TRUE(s.empty());
    EXPECT_THROW(s.quantile(0.5), std::invalid_argument);
}

TEST(CountTable, MergeIsExactAndOrderInvariant) {
    CountTable a(3);
    a.bump(0, 5);
    a.bump(2, 7);
    CountTable b;
    b.bump(4, 11);  // grows past a's size

    CountTable ab = a;
    ab.merge(b);
    CountTable ba = b;
    ba.merge(a);
    EXPECT_TRUE(ab == ba);
    EXPECT_EQ(ab.at(0), 5u);
    EXPECT_EQ(ab.at(2), 7u);
    EXPECT_EQ(ab.at(4), 11u);
    EXPECT_EQ(ab.total(), 23u);

    const auto frac = ab.normalized(5);
    EXPECT_DOUBLE_EQ(frac[0], 5.0 / 23.0);
    EXPECT_DOUBLE_EQ(frac[4], 11.0 / 23.0);
    EXPECT_DOUBLE_EQ(frac[1], 0.0);
}

TEST(CountTable, NormalizedOfEmptyIsZeros) {
    const CountTable t;
    const auto frac = t.normalized(4);
    ASSERT_EQ(frac.size(), 4u);
    for (double f : frac) EXPECT_DOUBLE_EQ(f, 0.0);
}

}  // namespace
