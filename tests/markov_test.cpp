// Tests for the order-k Markov baseline.
#include <gtest/gtest.h>

#include "metrics/fidelity.hpp"
#include "smm/markov.hpp"
#include "trace/synthetic.hpp"

namespace cpt::smm {
namespace {

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 91) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

TEST(MarkovTest, FitValidation) {
    trace::Dataset empty;
    EXPECT_THROW(MarkovGenerator::fit(empty), std::invalid_argument);
    const auto world = phone_world(20);
    MarkovGenerator::Config cfg;
    cfg.order = 0;
    EXPECT_THROW(MarkovGenerator::fit(world, cfg), std::invalid_argument);
    cfg.order = 9;
    EXPECT_THROW(MarkovGenerator::fit(world, cfg), std::invalid_argument);
}

TEST(MarkovTest, GeneratesWellFormedStreams) {
    const auto world = phone_world(200);
    const auto model = MarkovGenerator::fit(world);
    EXPECT_GT(model.num_contexts(), 3u);
    util::Rng rng(92);
    const auto ds = model.generate(150, rng);
    EXPECT_GT(ds.streams.size(), 120u);
    for (const auto& s : ds.streams) {
        EXPECT_GE(s.length(), 2u);
        double prev = 0.0;
        for (const auto& e : s.events) {
            EXPECT_GE(e.timestamp, prev);
            prev = e.timestamp;
        }
        EXPECT_LE(prev, 3600.0 + 1e-9);
    }
}

TEST(MarkovTest, LearnsBreakdownButOrder1Violates) {
    // A Markov chain captures the event marginal well, but with bounded
    // memory and no state machine it emits semantic violations wherever the
    // context under-determines the UE state. Order 1 is maximally ambiguous
    // (a single TAU could have happened CONNECTED or IDLE), so violations
    // are guaranteed to appear there; the SMM by construction emits none.
    const auto world = phone_world(400);
    const auto markov2 = MarkovGenerator::fit(world);
    util::Rng rng(93);
    const auto synth2 = markov2.generate(300, rng);

    const auto real_p = world.event_type_breakdown();
    const auto synth_p = synth2.event_type_breakdown();
    for (std::size_t e = 0; e < real_p.size(); ++e) {
        EXPECT_NEAR(synth_p[e], real_p[e], 0.06) << "event " << e;
    }

    MarkovGenerator::Config c1;
    c1.order = 1;
    const auto markov1 = MarkovGenerator::fit(world, c1);
    util::Rng rng1(94);
    const auto synth1 = markov1.generate(300, rng1);
    const auto v = metrics::semantic_violations(synth1);
    EXPECT_GT(v.counted_events, 1000u);
    EXPECT_GT(v.event_fraction(), 0.0);
}

TEST(MarkovTest, HigherOrderReducesViolations) {
    const auto world = phone_world(400, 95);
    MarkovGenerator::Config c1;
    c1.order = 1;
    MarkovGenerator::Config c3;
    c3.order = 3;
    const auto m1 = MarkovGenerator::fit(world, c1);
    const auto m3 = MarkovGenerator::fit(world, c3);
    util::Rng g1(96);
    util::Rng g3(96);
    const double v1 = metrics::semantic_violations(m1.generate(300, g1)).event_fraction();
    const double v3 = metrics::semantic_violations(m3.generate(300, g3)).event_fraction();
    // More context -> fewer illegal transitions (longer dependencies are the
    // whole reason the paper reaches for attention).
    EXPECT_LE(v3, v1 + 0.01);
}

TEST(MarkovTest, MissesPerUeDiversity) {
    // Like SMM-1, a single pooled chain collapses per-UE heterogeneity: the
    // flow-length distribution is visibly off.
    const auto world = phone_world(400, 97);
    const auto model = MarkovGenerator::fit(world);
    util::Rng rng(98);
    const auto synth = model.generate(300, rng);
    const auto report = metrics::evaluate_fidelity(synth, world);
    EXPECT_GT(report.maxy_flow_length_all, 0.10);
}

}  // namespace
}  // namespace cpt::smm
