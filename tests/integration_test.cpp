// Cross-module integration tests: full pipelines spanning trace I/O, SMM,
// CPT-GPT packaging, the GAN baseline, fidelity metrics and the MCN consumer.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <sstream>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "gan/netshare.hpp"
#include "mcn/simulator.hpp"
#include "metrics/fidelity.hpp"
#include "smm/ensemble.hpp"
#include "trace/io.hpp"
#include "trace/ngram.hpp"
#include "trace/synthetic.hpp"

namespace cpt {
namespace {

trace::Dataset world(std::size_t phones, std::size_t cars, std::size_t tablets,
                     std::uint64_t seed = 61) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {phones, cars, tablets};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

TEST(PipelineTest, CsvToSmmToValidatedTrace) {
    // World -> CSV -> reload -> fit SMM -> generate -> validate: the full
    // offline path an operator would run.
    const auto original = world(150, 0, 0);
    std::stringstream buffer;
    trace::write_csv(buffer, original);
    const auto reloaded = trace::read_csv(buffer);
    ASSERT_EQ(reloaded.total_events(), original.total_events());

    const auto model = smm::SemiMarkovModel::fit(reloaded);
    util::Rng rng(62);
    const auto generated = model.generate(200, rng);
    EXPECT_EQ(metrics::semantic_violations(generated).violating_events, 0u);
    const auto report = metrics::evaluate_fidelity(generated, original);
    EXPECT_LT(report.max_breakdown_diff(), 0.08);
}

TEST(PipelineTest, PackagedModelGeneratesIdenticalTraces) {
    // Train briefly, save the release package, reload it elsewhere, and check
    // the two samplers produce identical streams from identical seeds.
    const auto data = world(80, 0, 0, 63);
    const auto tok = core::Tokenizer::fit(data);
    core::CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 64;
    cfg.head_hidden = 24;
    util::Rng rng(64);
    core::CptGpt model(tok, cfg, rng);
    core::TrainConfig tcfg;
    tcfg.max_epochs = 3;
    tcfg.window = 32;
    core::Trainer(model, tok, tcfg).train(data);

    const auto dist = data.initial_event_distribution();
    const std::string path =
        (std::filesystem::temp_directory_path() / "cpt_integration_pkg.bin").string();
    model.save_package(path, tok, dist);
    const auto pkg = core::CptGpt::load_package(path, cellular::Generation::kLte4G, cfg);

    const core::Sampler original(model, tok, dist);
    const core::Sampler restored(*pkg.model, pkg.tokenizer, pkg.initial_event_dist);
    util::Rng g1(65);
    util::Rng g2(65);
    const auto a = original.generate(20, g1);
    const auto b = restored.generate(20, g2);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        ASSERT_EQ(a.streams[i].events.size(), b.streams[i].events.size());
        for (std::size_t j = 0; j < a.streams[i].events.size(); ++j) {
            EXPECT_EQ(a.streams[i].events[j].type, b.streams[i].events[j].type);
            EXPECT_FLOAT_EQ(static_cast<float>(a.streams[i].events[j].timestamp),
                            static_cast<float>(b.streams[i].events[j].timestamp));
        }
    }
    std::remove(path.c_str());
}

TEST(PipelineTest, SynthesizedTrafficDrivesMcnLikeRealTraffic) {
    // An SMM-generated population should load the MCN comparably to the real
    // trace it was fitted on (that is the entire point of the generator).
    const auto real = world(250, 0, 0, 66);
    const auto model = smm::SemiMarkovModel::fit(real);
    util::Rng rng(67);
    auto synth = model.generate(real.streams.size(), rng);

    mcn::McnConfig cfg;
    cfg.stochastic_service = false;
    cfg.costs.srv_req_us = 20000.0;
    cfg.costs.s1_rel_us = 10000.0;
    const auto r_real = mcn::simulate(real, cfg);
    const auto r_synth = mcn::simulate(synth, cfg);
    ASSERT_GT(r_real.events_processed, 0u);
    ASSERT_GT(r_synth.events_processed, 0u);
    // Within 2x on total events and peak session state (loose, but catches
    // generators that are wildly off).
    const double event_ratio = static_cast<double>(r_synth.events_processed) /
                               static_cast<double>(r_real.events_processed);
    EXPECT_GT(event_ratio, 0.5);
    EXPECT_LT(event_ratio, 2.0);
    // Peak session-state concurrency is where a single pooled SMM visibly
    // under-represents the real trace (per-UE heterogeneity collapses —
    // the paper's SMM-1 weakness), so the bound is loose on purpose.
    const double state_ratio = static_cast<double>(r_synth.peak_connected_ues) /
                               static_cast<double>(std::max<std::size_t>(1, r_real.peak_connected_ues));
    EXPECT_GT(state_ratio, 0.1);
    EXPECT_LT(state_ratio, 3.0);
}

TEST(PipelineTest, MixedDeviceWorldSplitsCleanly) {
    const auto ds = world(60, 40, 20, 68);
    const auto phones = ds.filter_device(trace::DeviceType::kPhone);
    const auto cars = ds.filter_device(trace::DeviceType::kConnectedCar);
    const auto tablets = ds.filter_device(trace::DeviceType::kTablet);
    EXPECT_EQ(phones.streams.size() + cars.streams.size() + tablets.streams.size(),
              ds.streams.size());
    for (const auto& s : cars.streams) EXPECT_EQ(s.device, trace::DeviceType::kConnectedCar);
    // Device mix drives different event breakdowns.
    EXPECT_GT(cars.event_type_breakdown()[cellular::lte::kHo],
              phones.event_type_breakdown()[cellular::lte::kHo]);
}

TEST(PipelineTest, NgramIndexAcceptsSmmOutputAtHighToleranceOnly) {
    // SMM interpolates empirical CDFs, so its short n-grams should frequently
    // match training n-grams at a loose tolerance but rarely exactly.
    const auto real = world(150, 0, 0, 69);
    const auto model = smm::SemiMarkovModel::fit(real);
    util::Rng rng(70);
    const auto synth = model.generate(100, rng);
    const trace::NgramIndex index(real, 2);
    const double loose = trace::repeated_ngram_fraction(synth, index, 0.5);
    const double tight = trace::repeated_ngram_fraction(synth, index, 0.001);
    EXPECT_GT(loose, tight);
}

TEST(PipelineTest, GanConsumesWorldAndProducesMeasurableTrace) {
    const auto real = world(60, 0, 0, 71);
    const auto tok = core::Tokenizer::fit(real);
    gan::NetShareConfig gcfg;
    gcfg.max_seq_len = 16;
    gcfg.lstm_hidden = 16;
    gcfg.disc_hidden = 32;
    gcfg.batch_size = 8;
    util::Rng rng(72);
    gan::NetShareGenerator gen(tok, gcfg, rng);
    gan::GanTrainConfig tcfg;
    tcfg.max_epochs = 3;
    tcfg.eval_every = 3;
    gen.train(real, tcfg);
    util::Rng grng(73);
    const auto synth = gen.generate(50, grng, trace::DeviceType::kPhone);
    // The fidelity pipeline must handle GAN output end to end.
    const auto report = metrics::evaluate_fidelity(synth, real);
    EXPECT_GE(report.event_violation_fraction, 0.0);
    EXPECT_LE(report.maxy_flow_length_all, 1.0);
}

}  // namespace
}  // namespace cpt
