# Negative-compile / negative-lint harness, run via `cmake -P` from ctest
# (label "static"). Three modes:
#
#   tsa_neg  compile FIXTURE with clang thread-safety analysis as errors and
#            assert it is REJECTED with a thread-safety diagnostic. Proves the
#            CPT_GUARDED_BY annotations actually bite — a silently vacuous
#            gate (wrong flags, macros not expanding) fails this test.
#   tsa_pos  compile the matching well-locked control and assert it is
#            ACCEPTED — distinguishes "neg fixture rejected because the
#            analysis works" from "rejected because the harness is broken".
#   sa_neg   run TOOL (cpt_sa) over TREE and assert nonzero exit plus
#            EXPECT_RULE in the report — the linter-side negative test.
#
# The tsa modes need a clang; when the configured compiler is not clang we
# look for one on PATH, and if none exists we print CPT_SA_SKIP, which the
# test's SKIP_REGULAR_EXPRESSION turns into a ctest skip (this container
# builds with GCC, so these tests skip here and run wherever clang exists —
# notably the `annotate` stage environment).
#
# Usage:
#   cmake -DMODE=tsa_neg -DCXX=<c++> -DSRC=<repo>/src -DFIXTURE=<file> -P sa_compile_test.cmake
#   cmake -DMODE=tsa_pos -DCXX=<c++> -DSRC=<repo>/src -DFIXTURE=<file> -P sa_compile_test.cmake
#   cmake -DMODE=sa_neg  -DTOOL=<cpt_sa> -DTREE=<dir> -DEXPECT_RULE=<rule> -P sa_compile_test.cmake

if(MODE STREQUAL "tsa_neg" OR MODE STREQUAL "tsa_pos")
  # Resolve a clang++: the configured compiler if it is clang, else PATH.
  set(clangxx "")
  if(CXX)
    execute_process(COMMAND ${CXX} --version
                    OUTPUT_VARIABLE version_out ERROR_VARIABLE version_err
                    RESULT_VARIABLE version_rc)
    string(TOLOWER "${version_out}" version_lower)
    if(version_rc EQUAL 0 AND version_lower MATCHES "clang")
      set(clangxx "${CXX}")
    endif()
  endif()
  if(NOT clangxx)
    find_program(CPT_SA_CLANGXX NAMES clang++ clang++-20 clang++-19 clang++-18
                 clang++-17 clang++-16 clang++-15 clang++-14)
    if(CPT_SA_CLANGXX)
      set(clangxx "${CPT_SA_CLANGXX}")
    endif()
  endif()
  if(NOT clangxx)
    message(STATUS "CPT_SA_SKIP: no clang++ available; thread-safety analysis cannot run")
    return()
  endif()

  execute_process(
    COMMAND ${clangxx} -std=c++20 -fsyntax-only "-I${SRC}"
            -Wthread-safety -Wthread-safety-beta
            -Werror=thread-safety-analysis -Werror=thread-safety-attributes
            -Werror=thread-safety-precise
            ${FIXTURE}
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)

  if(MODE STREQUAL "tsa_neg")
    if(rc EQUAL 0)
      message(FATAL_ERROR
        "negative fixture ${FIXTURE} compiled clean — the thread-safety gate is vacuous")
    endif()
    if(NOT "${err}" MATCHES "thread-safety")
      message(FATAL_ERROR
        "negative fixture failed, but not from thread-safety analysis:\n${err}")
    endif()
    message(STATUS "negative fixture rejected by thread-safety analysis, as required")
  else()
    if(NOT rc EQUAL 0)
      message(FATAL_ERROR
        "positive control ${FIXTURE} failed to compile — harness broken, not gate working:\n${err}")
    endif()
    message(STATUS "positive control accepted, harness sound")
  endif()

elseif(MODE STREQUAL "sa_neg")
  execute_process(COMMAND ${TOOL} "--root=${TREE}" src CMakeLists.txt
                  RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(rc EQUAL 0)
    message(FATAL_ERROR "cpt_sa exited 0 on the violating fixture tree:\n${out}")
  endif()
  if(NOT rc EQUAL 1)
    message(FATAL_ERROR "cpt_sa failed to run (exit ${rc}): ${err}")
  endif()
  if(NOT "${out}" MATCHES "\\[${EXPECT_RULE}\\]")
    message(FATAL_ERROR "cpt_sa report is missing rule '${EXPECT_RULE}':\n${out}")
  endif()
  message(STATUS "cpt_sa rejected the fixture tree with [${EXPECT_RULE}], as required")

else()
  message(FATAL_ERROR "sa_compile_test.cmake: unknown MODE '${MODE}'")
endif()
