// Tests for the cpt-router sharding tier (DESIGN.md §15): the consistent
// hash ring's stability property (a membership change moves only the changed
// node's key ranges), the pure routing/spill decision, and — against live
// backends over TCP — failover that returns byte-identical streams to a
// single-backend run, plus probe-driven down/up transitions.
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "core/model_hub.hpp"
#include "serve/router.hpp"
#include "serve/server.hpp"
#include "trace/synthetic.hpp"

namespace cpt {
namespace {

// ---- HashRing --------------------------------------------------------------

std::vector<std::string> make_nodes(std::size_t n) {
    std::vector<std::string> nodes;
    for (std::size_t i = 0; i < n; ++i) {
        nodes.push_back("10.0.0." + std::to_string(i + 1) + ":7400");
    }
    return nodes;
}

std::vector<std::string> make_keys(std::size_t n) {
    std::vector<std::string> keys;
    for (std::size_t i = 0; i < n; ++i) {
        keys.push_back("slice-" + std::to_string(i));
    }
    return keys;
}

TEST(HashRing, OwnerIsIndependentOfInsertionOrder) {
    const auto nodes = make_nodes(5);
    serve::HashRing forward(64);
    for (const auto& n : nodes) forward.add(n);
    serve::HashRing reverse(64);
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) reverse.add(*it);
    for (const auto& key : make_keys(500)) {
        EXPECT_EQ(forward.owner(key), reverse.owner(key)) << key;
    }
}

TEST(HashRing, JoinMovesAtMostItsShareAndOnlyToTheJoiner) {
    constexpr std::size_t kKeys = 2000;
    constexpr std::size_t kNodes = 8;
    const auto keys = make_keys(kKeys);
    serve::HashRing ring(64);
    for (const auto& n : make_nodes(kNodes)) ring.add(n);

    std::map<std::string, std::string> before;
    for (const auto& key : keys) before[key] = ring.owner(key);

    const std::string joiner = "10.0.0.99:7400";
    ring.add(joiner);
    std::size_t moved = 0;
    for (const auto& key : keys) {
        const std::string after = ring.owner(key);
        if (after != before[key]) {
            ++moved;
            // Every moved key must land on the new node — nothing reshuffles
            // between the old nodes.
            EXPECT_EQ(after, joiner) << key;
        }
    }
    // Expected share is K/(n+1) ≈ 222; vnode placement is uneven, so allow
    // a generous factor, but well below what naive mod-n rehashing would
    // move (≈ K * n/(n+1) ≈ 1777).
    EXPECT_GT(moved, std::size_t{0});
    EXPECT_LE(moved, 3 * kKeys / (kNodes + 1));
}

TEST(HashRing, LeaveMovesOnlyTheLeaverKeys) {
    const auto keys = make_keys(2000);
    const auto nodes = make_nodes(8);
    serve::HashRing ring(64);
    for (const auto& n : nodes) ring.add(n);

    std::map<std::string, std::string> before;
    for (const auto& key : keys) before[key] = ring.owner(key);

    const std::string leaver = nodes[3];
    ring.remove(leaver);
    EXPECT_FALSE(ring.contains(leaver));
    for (const auto& key : keys) {
        const std::string after = ring.owner(key);
        if (before[key] == leaver) {
            EXPECT_NE(after, leaver) << key;
        } else {
            // Keys the leaver did not own keep their backend-resident engine.
            EXPECT_EQ(after, before[key]) << key;
        }
    }
}

TEST(HashRing, OwnersAreDistinctAndLedByTheOwner) {
    serve::HashRing ring(64);
    for (const auto& n : make_nodes(4)) ring.add(n);
    for (const auto& key : make_keys(100)) {
        const auto owners = ring.owners(key, 3);
        ASSERT_EQ(owners.size(), std::size_t{3}) << key;
        EXPECT_EQ(owners[0], ring.owner(key)) << key;
        EXPECT_NE(owners[0], owners[1]);
        EXPECT_NE(owners[1], owners[2]);
        EXPECT_NE(owners[0], owners[2]);
    }
}

TEST(HashRing, EmptyRingHasNoOwner) {
    serve::HashRing ring(64);
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.owner("slice"), "");
    ring.add("a:1");
    ring.remove("a:1");
    EXPECT_EQ(ring.owner("slice"), "");
}

// ---- plan_route ------------------------------------------------------------

TEST(PlanRoute, PrimaryWinsBelowSpillThreshold) {
    const std::vector<serve::RouteCandidate> c = {{true, 7}, {true, 0}};
    EXPECT_EQ(serve::plan_route(c, 8), std::size_t{0});
}

TEST(PlanRoute, HotPrimarySpillsToStrictlyLessLoaded) {
    const std::vector<serve::RouteCandidate> c = {{true, 8}, {true, 3}};
    EXPECT_EQ(serve::plan_route(c, 8), std::size_t{1});
}

TEST(PlanRoute, HotPrimaryKeepsEquallyLoadedAlternative) {
    // Spilling to an equally-loaded replica just doubles the hot set.
    const std::vector<serve::RouteCandidate> c = {{true, 8}, {true, 8}};
    EXPECT_EQ(serve::plan_route(c, 8), std::size_t{0});
}

TEST(PlanRoute, UnavailablePrimarySkipsToNextCandidate) {
    const std::vector<serve::RouteCandidate> c = {{false, 0}, {true, 5}};
    EXPECT_EQ(serve::plan_route(c, 8), std::size_t{1});
}

TEST(PlanRoute, AllUnavailableReturnsEnd) {
    const std::vector<serve::RouteCandidate> c = {{false, 0}, {false, 0}};
    EXPECT_EQ(serve::plan_route(c, 8), c.size());
}

// ---- config validation -----------------------------------------------------

TEST(RouterConfig, RejectsHostnamesAndBadPortsAtConstruction) {
    // TcpClient only dials IPv4 literals; a hostname must fail fast at
    // config time, not throw per-request inside a forwarder thread.
    for (const char* backend :
         {"localhost:7400", "127.0.0.1:notaport", "127.0.0.1:70000", "127.0.0.1:0",
          "127.0.0.1", ":7400", "127.0.0.1:"}) {
        serve::RouterConfig rc;
        rc.backends = {backend};
        EXPECT_THROW(serve::Router{rc}, std::runtime_error) << backend;
    }
}

// ---- live failover ---------------------------------------------------------

core::CptGptConfig tiny_config() {
    core::CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 32;
    cfg.head_hidden = 16;
    return cfg;
}

void expect_streams_identical(const trace::Stream& a, const trace::Stream& b) {
    EXPECT_EQ(a.ue_id, b.ue_id);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.hour_of_day, b.hour_of_day);
    ASSERT_EQ(a.events.size(), b.events.size()) << a.ue_id;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        // Byte-identical, not approximately equal: the determinism contract.
        EXPECT_EQ(a.events[i].timestamp, b.events[i].timestamp) << a.ue_id << " event " << i;
        EXPECT_EQ(a.events[i].type, b.events[i].type) << a.ue_id << " event " << i;
    }
}

// A cpt-serve backend as the router sees one: a Server behind the epoll
// TcpServer on loopback. stop() tears the listener down completely (the
// listening fd closes with the TcpServer), so subsequent connects are
// refused — the same signal a killed backend process gives the router.
struct LiveBackend {
    explicit LiveBackend(const std::string& hub_dir, std::uint16_t port = 0)
        : server(backend_config(hub_dir)),
          tcp(std::make_unique<serve::TcpServer>(server, "127.0.0.1", port)),
          port_(tcp->port()),
          acceptor([this] { tcp->serve_forever(); }) {}
    ~LiveBackend() { stop(); }

    static serve::ServeConfig backend_config(const std::string& hub_dir) {
        serve::ServeConfig cfg;
        cfg.hub_dir = hub_dir;
        cfg.model = tiny_config();
        return cfg;
    }

    void stop() {
        if (!tcp) return;
        tcp->stop();
        acceptor.join();
        tcp.reset();
        server.drain();
    }

    std::string name() const { return "127.0.0.1:" + std::to_string(port_); }
    std::uint16_t port() const { return port_; }

    serve::Server server;
    std::unique_ptr<serve::TcpServer> tcp;
    std::uint16_t port_;
    std::thread acceptor;
};

struct RouterFixture : ::testing::Test {
    static void SetUpTestSuite() {
        dir = (std::filesystem::temp_directory_path() /
               ("cpt_router_test_hub_" + std::to_string(::getpid())))
                  .string();
        std::filesystem::remove_all(dir);
        trace::SyntheticWorldConfig w;
        w.population = {40, 0, 0};
        const auto data = trace::SyntheticWorldGenerator(w).generate();
        const auto tok = core::Tokenizer::fit(data);
        util::Rng rng(21);
        const core::CptGpt model(tok, tiny_config(), rng);
        core::ModelHub hub(dir);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 9);
    }
    static void TearDownTestSuite() { std::filesystem::remove_all(dir); }

    static serve::GenerateRequest pinned_request() {
        serve::GenerateRequest req;
        req.device = trace::DeviceType::kPhone;
        req.hour_of_day = 9;
        req.count = 4;
        req.seed = 77;
        req.deterministic = true;
        req.max_stream_len = 16;
        req.ue_prefix = "pin";
        return req;
    }

    static std::string dir;
};
std::string RouterFixture::dir;

TEST_F(RouterFixture, FailoverIsByteIdenticalToSingleBackend) {
    LiveBackend b1(dir);
    LiveBackend b2(dir);

    serve::RouterConfig rc;
    rc.backends = {b1.name(), b2.name()};
    rc.down_after_failures = 1;
    rc.health_interval_ms = 60000;  // transitions driven by forwards/check_backends_now
    serve::Router router(rc);

    const serve::GenerateRequest req = pinned_request();
    // Reference: the same deterministic request straight into one backend's
    // Server (the in-process path is pinned byte-identical to TCP by
    // serve_test / epoll_server_test).
    serve::GenerateResponse want = b1.server.generate(req);
    ASSERT_EQ(want.status, serve::Status::kOk) << want.error;
    ASSERT_EQ(want.streams.size(), req.count);

    serve::GenerateResponse through = router.generate(req);
    ASSERT_EQ(through.status, serve::Status::kOk) << through.error;
    ASSERT_EQ(through.streams.size(), want.streams.size());
    for (std::size_t i = 0; i < want.streams.size(); ++i) {
        expect_streams_identical(want.streams[i], through.streams[i]);
    }

    // Kill the slice's owner; the retried request must come back identical
    // from the survivor — which backend generates is invisible in the bytes.
    const std::string owner = router.owner_of(trace::DeviceType::kPhone, 9);
    ASSERT_TRUE(owner == b1.name() || owner == b2.name());
    (owner == b1.name() ? b1 : b2).stop();

    serve::GenerateResponse after = router.generate(req);
    ASSERT_EQ(after.status, serve::Status::kOk) << after.error;
    ASSERT_EQ(after.streams.size(), want.streams.size());
    for (std::size_t i = 0; i < want.streams.size(); ++i) {
        expect_streams_identical(want.streams[i], after.streams[i]);
    }

    const std::string stats = router.stats_json();
    EXPECT_NE(stats.find("\"failovers\": 1"), std::string::npos) << stats;
    router.drain();
}

TEST_F(RouterFixture, ProbeMarksDownAndRecoversOwnership) {
    auto backend = std::make_unique<LiveBackend>(dir);
    const std::string name = backend->name();
    const std::uint16_t port = backend->port();

    serve::RouterConfig rc;
    rc.backends = {name};
    rc.down_after_failures = 1;
    rc.health_interval_ms = 60000;
    serve::Router router(rc);
    EXPECT_EQ(router.owner_of(trace::DeviceType::kPhone, 9), name);
    EXPECT_TRUE(router.health().ok);

    backend->stop();
    router.check_backends_now();
    // Every backend down: no owner, health reports not-ok.
    EXPECT_EQ(router.owner_of(trace::DeviceType::kPhone, 9), "");
    EXPECT_FALSE(router.health().ok);

    // Restart on the same port; the next probe puts it back in the ring and
    // routing resumes.
    backend = std::make_unique<LiveBackend>(dir, port);
    router.check_backends_now();
    EXPECT_EQ(router.owner_of(trace::DeviceType::kPhone, 9), name);

    serve::GenerateResponse resp = router.generate(pinned_request());
    EXPECT_EQ(resp.status, serve::Status::kOk) << resp.error;
    router.drain();
}

}  // namespace
}  // namespace cpt
