// Robustness fuzzing: random garbage into the parsers and random (possibly
// invalid) event sequences into the replay/metrics pipeline. Nothing here may
// crash; structured errors must surface as exceptions.
#include <gtest/gtest.h>

#include <sstream>

#include "metrics/fidelity.hpp"
#include "trace/io.hpp"
#include "trace/ngram.hpp"
#include "util/rng.hpp"

namespace cpt {
namespace {

class FuzzTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzTest, CsvParserNeverCrashesOnGarbage) {
    util::Rng rng(GetParam());
    static constexpr char kAlphabet[] =
        "abcdefghijklmnopqrstuvwxyz0123456789,.\n\t -_%$#@!\"'";
    for (int round = 0; round < 50; ++round) {
        std::string payload = "generation,ue_id,device,hour,timestamp,event\n";
        const std::size_t len = rng.uniform_index(400);
        for (std::size_t i = 0; i < len; ++i) {
            payload.push_back(kAlphabet[rng.uniform_index(sizeof(kAlphabet) - 1)]);
        }
        std::stringstream in(payload);
        try {
            const auto ds = trace::read_csv(in);
            // Parsed successfully: the result must be structurally sound.
            for (const auto& s : ds.streams) {
                double prev = -1e18;
                for (const auto& e : s.events) {
                    EXPECT_GE(e.timestamp, prev);
                    prev = e.timestamp;
                }
            }
        } catch (const std::invalid_argument&) {
            // expected for malformed payloads
        }
    }
}

TEST_P(FuzzTest, MetricsPipelineHandlesArbitraryEventSequences) {
    util::Rng rng(GetParam() + 100);
    trace::Dataset ds;
    const std::size_t streams = 1 + rng.uniform_index(20);
    for (std::size_t i = 0; i < streams; ++i) {
        trace::Stream s;
        s.ue_id = "fuzz" + std::to_string(i);
        double t = 0.0;
        const std::size_t len = rng.uniform_index(60);
        for (std::size_t k = 0; k < len; ++k) {
            t += rng.uniform(0.0, 30.0);
            s.events.push_back(
                {t, static_cast<cellular::EventId>(rng.uniform_index(cellular::lte::kNumEvents))});
        }
        ds.streams.push_back(std::move(s));
    }
    // Violations, sojourns, breakdowns, n-grams: must all be well defined for
    // arbitrary (including heavily violating or empty) streams.
    const auto v = metrics::semantic_violations(ds);
    EXPECT_LE(v.violating_events, v.counted_events);
    EXPECT_LE(v.violating_streams, v.total_streams);
    const auto s = metrics::collect_sojourns(ds);
    for (double x : s.connected) EXPECT_GE(x, 0.0);
    const auto report = metrics::evaluate_fidelity(ds, ds);
    EXPECT_DOUBLE_EQ(report.maxy_flow_length_all, 0.0);
    const trace::NgramIndex index(ds, 3);
    EXPECT_GE(trace::repeated_ngram_fraction(ds, index, 0.1), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzTest, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace cpt
