// Tests for the autograd graph linter: a healthy tape lints clean (including
// the real CPT-GPT training graph), and each defect category is detected on a
// deliberately broken tape.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/model.hpp"
#include "core/tokenizer.hpp"
#include "nn/autograd.hpp"
#include "nn/graph_lint.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace cpt::nn {
namespace {

Var param_of(std::vector<float> values, Shape shape) {
    return make_param(Tensor::from(std::move(values), std::move(shape)));
}

TEST(GraphLintTest, CleanGraphHasNoFindings) {
    const Var a = param_of({1.0f, 2.0f, 3.0f, 4.0f}, {2, 2});
    const Var b = param_of({0.5f, 0.5f, 0.5f, 0.5f}, {2, 2});
    const Var loss = mean_all(mul(a, b));
    const std::vector<Var> params{a, b};

    const auto report = lint_graph(loss, params);
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(report.params_reachable, 2u);
    // At least a, b, mul, and the reduction (ops may add interior nodes).
    EXPECT_GE(report.nodes_visited, 4u);
    EXPECT_TRUE(report.summary().empty());
}

TEST(GraphLintTest, DetachedParamIsFlaggedUnreachable) {
    const Var a = param_of({1.0f, 2.0f}, {2});
    const Var b = param_of({3.0f, 4.0f}, {2});
    const Var orphan = param_of({9.0f}, {1});
    const Var loss = sum_all(add(a, b));
    const std::vector<Var> params{a, b, orphan};

    const auto report = lint_graph(loss, params);
    EXPECT_EQ(report.count(GraphLintKind::kUnreachableParam), 1u);
    EXPECT_EQ(report.params_reachable, 2u);
    ASSERT_FALSE(report.findings.empty());
    // The detail names the parameter's position in the optimizer list.
    EXPECT_NE(report.findings[0].detail.find("param #2"), std::string::npos)
        << report.findings[0].detail;
    EXPECT_NE(report.summary().find("unreachable-param"), std::string::npos);
}

TEST(GraphLintTest, ParamBehindNoGradNodeIsUnreachable) {
    // backward() prunes at non-requires_grad nodes, so a parameter whose only
    // route to the loss passes through a detached constant never gets a grad.
    const Var a = param_of({1.0f, 2.0f}, {2});
    Var detached = make_var(Tensor::from({5.0f, 6.0f}, {2}));
    detached->parents.push_back(a);  // edge exists, but requires_grad is off
    const Var loss = sum_all(detached);
    const std::vector<Var> params{a};

    const auto report = lint_graph(loss, params);
    EXPECT_EQ(report.count(GraphLintKind::kUnreachableParam), 1u);
    EXPECT_EQ(report.params_reachable, 0u);
}

TEST(GraphLintTest, ReusedGraphAfterBackwardHasStaleInteriorGrads) {
    const Var a = param_of({1.0f, 2.0f, 3.0f, 4.0f}, {2, 2});
    const Var b = param_of({2.0f, 2.0f, 2.0f, 2.0f}, {2, 2});
    const Var loss = mean_all(mul(a, b));
    const std::vector<Var> params{a, b};

    ASSERT_TRUE(lint_graph(loss, params).clean());
    backward(loss);
    // Interior nodes now hold gradient buffers; re-running backward() on the
    // same tape would double-count them. Parameter leaves are exempt — grads
    // legitimately accumulate there across batches.
    const auto report = lint_graph(loss, params);
    EXPECT_GE(report.count(GraphLintKind::kStaleInteriorGradient), 1u);
    EXPECT_EQ(report.count(GraphLintKind::kUnreachableParam), 0u);
}

TEST(GraphLintTest, GradShapeMismatchIsFlagged) {
    const Var a = param_of({1.0f, 2.0f, 3.0f, 4.0f}, {2, 2});
    const Var loss = sum_all(a);
    a->grad = Tensor::zeros({5});  // wrong numel for a {2,2} value

    const auto report = lint_graph(loss, std::vector<Var>{a});
    EXPECT_EQ(report.count(GraphLintKind::kGradShapeMismatch), 1u);
    EXPECT_NE(report.summary().find("grad-shape-mismatch"), std::string::npos);
}

TEST(GraphLintTest, InteriorNodeWithoutBackwardClosureIsFlagged) {
    const Var a = param_of({1.0f, 2.0f}, {2});
    // Hand-built interior node that claims to need a gradient but has no way
    // to scatter one to its parents — exactly the bug a mis-written op would
    // introduce.
    auto broken = std::make_shared<Node>();
    broken->value = Tensor::from({3.0f, 4.0f}, {2});
    broken->requires_grad = true;
    broken->parents.push_back(a);
    const Var loss = sum_all(Var(broken));

    const auto report = lint_graph(loss, std::vector<Var>{a});
    EXPECT_EQ(report.count(GraphLintKind::kUnconsumedGradient), 1u);
    EXPECT_NE(report.summary().find("unconsumed-gradient"), std::string::npos);
}

TEST(GraphLintTest, NullRootThrows) {
    EXPECT_THROW(lint_graph(nullptr, {}), std::invalid_argument);
}

TEST(GraphLintTest, RealModelTrainingGraphLintsClean) {
    // End-to-end guard: the actual CPT-GPT forward + loss tape must produce
    // zero findings, and every model parameter must be reachable.
    trace::SyntheticWorldConfig cfg;
    cfg.population = {25, 0, 0};
    cfg.seed = 11;
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    const auto tok = core::Tokenizer::fit(world);

    core::CptGptConfig mcfg;
    mcfg.d_model = 24;
    mcfg.heads = 2;
    mcfg.mlp_hidden = 48;
    mcfg.blocks = 1;
    mcfg.max_seq_len = 32;
    mcfg.head_hidden = 24;
    util::Rng rng(7);
    const core::CptGpt model(tok, mcfg, rng);

    const std::size_t batch = 2, seq = 6;
    const auto tokens =
        make_var(Tensor::randn(rng, {batch, seq, tok.d_token()}, 0.1f));
    const auto out = model.forward(tokens);

    std::vector<int> targets(batch * seq, 0);
    const std::vector<float> mask(batch * seq, 1.0f);
    const Tensor ia_target = Tensor::zeros({batch * seq});
    Var loss = cross_entropy(out.event_logits, targets);
    loss = add(loss, gaussian_nll(out.ia_mu, out.ia_logvar, ia_target, mask));
    loss = add(loss, cross_entropy(out.stop_logits, targets));

    const auto params = model.parameters();
    const auto report = lint_graph(loss, params);
    EXPECT_TRUE(report.clean()) << report.summary();
    EXPECT_EQ(report.params_reachable, params.size());
    EXPECT_GT(report.nodes_visited, params.size());
}

}  // namespace
}  // namespace cpt::nn
