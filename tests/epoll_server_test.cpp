// Tests for the epoll event-loop TCP transport (DESIGN.md §15): partial
// frames dribbled across epoll ticks reassemble, pipelined frames answer in
// order, a slow reader drains a backpressured response intact, idle
// connections are reaped, and the bytes match the in-process path exactly
// (the transport only moves frames).
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/model_hub.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "trace/synthetic.hpp"

namespace cpt {
namespace {

core::CptGptConfig tiny_config() {
    core::CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 32;
    cfg.head_hidden = 16;
    return cfg;
}

void expect_streams_identical(const trace::Stream& a, const trace::Stream& b) {
    EXPECT_EQ(a.ue_id, b.ue_id);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.hour_of_day, b.hour_of_day);
    ASSERT_EQ(a.events.size(), b.events.size()) << a.ue_id;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].timestamp, b.events[i].timestamp) << a.ue_id << " event " << i;
        EXPECT_EQ(a.events[i].type, b.events[i].type) << a.ue_id << " event " << i;
    }
}

// Raw blocking client socket, for driving the server below the TcpClient
// abstraction (chunked writes, pipelining, idle behaviour).
int raw_connect(std::uint16_t port) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    sockaddr_in addr = serve::net::make_addr("127.0.0.1", port);
    EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);
    return fd;
}

void send_all(int fd, const std::uint8_t* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
        const ssize_t n = ::send(fd, data + off, len - off, 0);
        ASSERT_GT(n, 0) << std::strerror(errno);
        off += static_cast<std::size_t>(n);
    }
}

// Length-prefixed frame bytes for a payload (what write_frame puts on the
// wire), materialized so tests can split them at arbitrary offsets.
std::vector<std::uint8_t> frame_bytes(const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> out(4 + payload.size());
    const auto len = static_cast<std::uint32_t>(payload.size());
    out[0] = static_cast<std::uint8_t>(len & 0xff);
    out[1] = static_cast<std::uint8_t>((len >> 8) & 0xff);
    out[2] = static_cast<std::uint8_t>((len >> 16) & 0xff);
    out[3] = static_cast<std::uint8_t>((len >> 24) & 0xff);
    std::copy(payload.begin(), payload.end(), out.begin() + 4);
    return out;
}

struct EpollFixture : ::testing::Test {
    static void SetUpTestSuite() {
        dir = (std::filesystem::temp_directory_path() /
               ("cpt_epoll_test_hub_" + std::to_string(::getpid())))
                  .string();
        std::filesystem::remove_all(dir);
        trace::SyntheticWorldConfig w;
        w.population = {40, 0, 0};
        const auto data = trace::SyntheticWorldGenerator(w).generate();
        const auto tok = core::Tokenizer::fit(data);
        util::Rng rng(21);
        const core::CptGpt model(tok, tiny_config(), rng);
        core::ModelHub hub(dir);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 9);
    }
    static void TearDownTestSuite() { std::filesystem::remove_all(dir); }

    static serve::ServeConfig server_config() {
        serve::ServeConfig cfg;
        cfg.hub_dir = dir;
        cfg.model = tiny_config();
        return cfg;
    }

    static serve::GenerateRequest pinned_request(std::uint64_t seed, const char* prefix) {
        serve::GenerateRequest req;
        req.device = trace::DeviceType::kPhone;
        req.hour_of_day = 9;
        req.count = 3;
        req.seed = seed;
        req.deterministic = true;
        req.max_stream_len = 16;
        req.ue_prefix = prefix;
        return req;
    }

    static std::string dir;
};
std::string EpollFixture::dir;

// The epoll listener and a serve_forever thread, torn down on scope exit.
struct LiveServer {
    explicit LiveServer(serve::Server& server, serve::TcpServer::Options opts = {})
        : tcp(server, "127.0.0.1", 0, opts), acceptor([this] { tcp.serve_forever(); }) {}
    ~LiveServer() {
        tcp.stop();
        acceptor.join();
    }
    serve::TcpServer tcp;
    std::thread acceptor;
};

TEST_F(EpollFixture, TransportMatchesInProcessByteForByte) {
    serve::Server server(server_config());
    serve::TcpServer::Options opts;
    opts.workers = 3;
    LiveServer live(server, opts);

    const serve::GenerateRequest req = pinned_request(101, "pin");
    serve::GenerateResponse want = server.generate(req);
    ASSERT_EQ(want.status, serve::Status::kOk) << want.error;

    serve::TcpClient client("127.0.0.1", live.tcp.port());
    serve::GenerateResponse got = client.generate(req);
    ASSERT_EQ(got.status, serve::Status::kOk) << got.error;
    ASSERT_EQ(got.streams.size(), want.streams.size());
    for (std::size_t i = 0; i < want.streams.size(); ++i) {
        expect_streams_identical(want.streams[i], got.streams[i]);
    }
}

TEST_F(EpollFixture, PartialFramesDribbledAcrossTicksReassemble) {
    serve::Server server(server_config());
    serve::TcpServer::Options opts;
    opts.tick_ms = 20;  // several ticks elapse while the frame dribbles in
    LiveServer live(server, opts);

    const serve::GenerateRequest req = pinned_request(202, "dribble");
    const auto bytes = frame_bytes(serve::encode_generate_request(req));
    const int fd = raw_connect(live.tcp.port());

    // 3-byte chunks split the length prefix itself as well as the payload.
    for (std::size_t off = 0; off < bytes.size(); off += 3) {
        const std::size_t n = std::min<std::size_t>(3, bytes.size() - off);
        send_all(fd, bytes.data() + off, n);
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }

    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(serve::read_frame(fd, payload));
    serve::GenerateResponse got = serve::decode_generate_response(payload);
    ASSERT_EQ(got.status, serve::Status::kOk) << got.error;

    serve::GenerateResponse want = server.generate(req);
    ASSERT_EQ(got.streams.size(), want.streams.size());
    for (std::size_t i = 0; i < want.streams.size(); ++i) {
        expect_streams_identical(want.streams[i], got.streams[i]);
    }
    ::close(fd);
}

TEST_F(EpollFixture, PipelinedFramesAnswerInOrder) {
    serve::Server server(server_config());
    LiveServer live(server);

    const serve::GenerateRequest first = pinned_request(301, "first");
    const serve::GenerateRequest second = pinned_request(302, "second");
    // Both requests and a stats probe land in one send; the connection must
    // answer strictly in order even though generation is asynchronous.
    std::vector<std::uint8_t> wire;
    for (const auto* req : {&first, &second}) {
        const auto f = frame_bytes(serve::encode_generate_request(*req));
        wire.insert(wire.end(), f.begin(), f.end());
    }
    const auto stats_frame = frame_bytes(serve::encode_stats_request());
    wire.insert(wire.end(), stats_frame.begin(), stats_frame.end());

    const int fd = raw_connect(live.tcp.port());
    send_all(fd, wire.data(), wire.size());

    for (const auto* req : {&first, &second}) {
        std::vector<std::uint8_t> payload;
        ASSERT_TRUE(serve::read_frame(fd, payload));
        serve::GenerateResponse got = serve::decode_generate_response(payload);
        ASSERT_EQ(got.status, serve::Status::kOk) << got.error;
        ASSERT_EQ(got.streams.size(), req->count);
        // Stream labels carry the request's prefix — proof responses are not
        // reordered across the pipelined frames.
        EXPECT_EQ(got.streams[0].ue_id.rfind(req->ue_prefix + "-", 0), std::size_t{0})
            << got.streams[0].ue_id;
    }
    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(serve::read_frame(fd, payload));
    EXPECT_EQ(serve::peek_type(payload), serve::MsgType::kStatsResponse);
    ::close(fd);
}

TEST_F(EpollFixture, SlowReaderDrainsBackpressuredResponseIntact) {
    serve::Server server(server_config());
    LiveServer live(server);

    // A response big enough to overflow the client's shrunken receive window,
    // forcing the worker through its EAGAIN -> EPOLLOUT write-buffer path.
    serve::GenerateRequest req = pinned_request(404, "slow");
    req.count = 24;
    req.max_stream_len = 30;

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    const int rcvbuf = 2048;
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVBUF, &rcvbuf, sizeof(rcvbuf)), 0);
    sockaddr_in addr = serve::net::make_addr("127.0.0.1", live.tcp.port());
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0)
        << std::strerror(errno);

    const auto bytes = frame_bytes(serve::encode_generate_request(req));
    send_all(fd, bytes.data(), bytes.size());
    // Let the response land in the server's write buffer before reading.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    // Drain the length prefix, then the payload in small delayed bites.
    std::uint8_t len_le[4];
    std::size_t got_len = 0;
    while (got_len < 4) {
        const ssize_t n = ::recv(fd, len_le + got_len, 4 - got_len, 0);
        ASSERT_GT(n, 0) << std::strerror(errno);
        got_len += static_cast<std::size_t>(n);
    }
    const std::uint32_t frame_len = static_cast<std::uint32_t>(len_le[0]) |
                                    (static_cast<std::uint32_t>(len_le[1]) << 8) |
                                    (static_cast<std::uint32_t>(len_le[2]) << 16) |
                                    (static_cast<std::uint32_t>(len_le[3]) << 24);
    ASSERT_GT(frame_len, 0u);
    std::vector<std::uint8_t> payload(frame_len);
    std::size_t off = 0;
    while (off < payload.size()) {
        const std::size_t want = std::min<std::size_t>(512, payload.size() - off);
        const ssize_t n = ::recv(fd, payload.data() + off, want, 0);
        ASSERT_GT(n, 0) << std::strerror(errno);
        off += static_cast<std::size_t>(n);
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }

    serve::GenerateResponse got = serve::decode_generate_response(payload);
    ASSERT_EQ(got.status, serve::Status::kOk) << got.error;
    serve::GenerateResponse want = server.generate(req);
    ASSERT_EQ(got.streams.size(), want.streams.size());
    for (std::size_t i = 0; i < want.streams.size(); ++i) {
        expect_streams_identical(want.streams[i], got.streams[i]);
    }
    ::close(fd);
}

TEST_F(EpollFixture, PipelineBurstBeyondFrameCapAnswersCompletely) {
    serve::Server server(server_config());
    serve::TcpServer::Options opts;
    opts.workers = 1;
    LiveServer live(server, opts);

    // One generate parks the connection busy, then a burst of stats frames
    // larger than the worker's queued-frame cap lands behind it. The loop
    // must pause reading (bounded memory) instead of queueing unboundedly,
    // then resume once the generate completes and answer every frame in
    // order — a response per request, nothing dropped.
    constexpr int kBurst = 100;  // > kMaxQueuedFrames (64)
    std::vector<std::uint8_t> wire =
        frame_bytes(serve::encode_generate_request(pinned_request(606, "burst")));
    const auto stats_frame = frame_bytes(serve::encode_stats_request());
    for (int i = 0; i < kBurst; ++i) {
        wire.insert(wire.end(), stats_frame.begin(), stats_frame.end());
    }

    const int fd = raw_connect(live.tcp.port());
    send_all(fd, wire.data(), wire.size());

    std::vector<std::uint8_t> payload;
    ASSERT_TRUE(serve::read_frame(fd, payload));
    ASSERT_EQ(serve::peek_type(payload), serve::MsgType::kGenerateResponse);
    serve::GenerateResponse got = serve::decode_generate_response(payload);
    ASSERT_EQ(got.status, serve::Status::kOk) << got.error;
    for (int i = 0; i < kBurst; ++i) {
        ASSERT_TRUE(serve::read_frame(fd, payload)) << "stats reply " << i;
        ASSERT_EQ(serve::peek_type(payload), serve::MsgType::kStatsResponse) << i;
    }
    ::close(fd);
}

TEST_F(EpollFixture, IdleConnectionsAreReaped) {
    serve::Server server(server_config());
    serve::TcpServer::Options opts;
    opts.workers = 1;
    opts.idle_timeout_ms = 100;
    opts.tick_ms = 20;
    LiveServer live(server, opts);

    const int fd = raw_connect(live.tcp.port());
    // Send nothing: the sweep must close us. Bound the wait so a regression
    // fails instead of hanging.
    timeval tv{};
    tv.tv_sec = 5;
    ASSERT_EQ(::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)), 0);
    std::uint8_t byte = 0;
    const ssize_t n = ::recv(fd, &byte, 1, 0);
    EXPECT_EQ(n, 0) << "expected EOF from idle sweep, got " << n << " (" << std::strerror(errno)
                    << ")";
    ::close(fd);
}

TEST_F(EpollFixture, HealthAndStatsServeFromTheEventLoop) {
    serve::Server server(server_config());
    LiveServer live(server);

    serve::TcpClient client("127.0.0.1", live.tcp.port());
    const serve::HealthInfo h = client.health();
    EXPECT_TRUE(h.ok);
    EXPECT_FALSE(h.draining);
    const std::string stats = client.stats_json();
    EXPECT_FALSE(stats.empty());
    EXPECT_EQ(stats.front(), '{');
}

TEST_F(EpollFixture, StopDrainsWorkersAndUnblocksServeForever) {
    serve::Server server(server_config());
    auto live = std::make_unique<LiveServer>(server);
    const std::uint16_t port = live->tcp.port();
    {
        serve::TcpClient client("127.0.0.1", port);
        serve::GenerateResponse resp = client.generate(pinned_request(505, "stop"));
        ASSERT_EQ(resp.status, serve::Status::kOk) << resp.error;
    }
    live->tcp.stop();
    live.reset();  // joins serve_forever; hangs (and times out) on regression
    EXPECT_THROW(serve::TcpClient("127.0.0.1", port), serve::TransportError);
}

}  // namespace
}  // namespace cpt
