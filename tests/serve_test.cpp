// Tests for the cpt-serve subsystem: the SlotBatch continuous-batching
// scheduler core (including the determinism pin against generate_batch — the
// contract that admission timing cannot perturb stream content), the wire
// protocol, and the Server/TcpServer end-to-end paths.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <map>
#include <thread>

#include "core/model_hub.hpp"
#include "core/sampler.hpp"
#include "serve/client.hpp"
#include "serve/net.hpp"
#include "serve/server.hpp"
#include "trace/synthetic.hpp"

namespace cpt {
namespace {

core::CptGptConfig tiny_config() {
    core::CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 32;
    cfg.head_hidden = 16;
    return cfg;
}

// generate_batch returns streams in completion order; re-sort by ue_id
// (which encodes the serial index) for stable comparison.
std::vector<trace::Stream> sorted_by_ue(std::vector<trace::Stream> streams) {
    std::sort(streams.begin(), streams.end(),
              [](const trace::Stream& a, const trace::Stream& b) { return a.ue_id < b.ue_id; });
    return streams;
}

void expect_streams_identical(const trace::Stream& a, const trace::Stream& b) {
    EXPECT_EQ(a.ue_id, b.ue_id);
    EXPECT_EQ(a.device, b.device);
    EXPECT_EQ(a.hour_of_day, b.hour_of_day);
    ASSERT_EQ(a.events.size(), b.events.size()) << a.ue_id;
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        // Byte-identical, not approximately equal: the determinism contract.
        EXPECT_EQ(a.events[i].timestamp, b.events[i].timestamp) << a.ue_id << " event " << i;
        EXPECT_EQ(a.events[i].type, b.events[i].type) << a.ue_id << " event " << i;
    }
}

// Shared tiny released model: built once, published into a temp hub.
struct ServeFixture : ::testing::Test {
    static void SetUpTestSuite() {
        // Per-process hub: ctest runs this binary's cases as separate
        // concurrent processes, each with its own SetUpTestSuite.
        dir = (std::filesystem::temp_directory_path() /
               ("cpt_serve_test_hub_" + std::to_string(::getpid())))
                  .string();
        std::filesystem::remove_all(dir);
        trace::SyntheticWorldConfig w;
        w.population = {40, 0, 0};
        const auto data = trace::SyntheticWorldGenerator(w).generate();
        const auto tok = core::Tokenizer::fit(data);
        util::Rng rng(21);
        const core::CptGpt model(tok, tiny_config(), rng);
        core::ModelHub hub(dir);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 9);
    }
    static void TearDownTestSuite() { std::filesystem::remove_all(dir); }

    // A sampler over the *released* package (same floats the server decodes
    // with), for reference generate_batch runs.
    static core::CptGpt::Package load_package() {
        core::ModelHub hub(dir);
        return hub.load(trace::DeviceType::kPhone, 9, tiny_config());
    }
    static core::SamplerConfig slice_sampler_config(std::size_t batch) {
        core::SamplerConfig sc;
        sc.batch = batch;
        sc.device = trace::DeviceType::kPhone;
        sc.hour_of_day = 9;
        return sc;
    }

    static std::string dir;
};
std::string ServeFixture::dir;

// ---- SlotBatch scheduler core ----------------------------------------------

TEST_F(ServeFixture, SlotBatchMatchesGenerateBatchByteForByte) {
    const auto pkg = load_package();
    const core::Sampler sampler(*pkg.model, pkg.tokenizer, pkg.initial_event_dist,
                                slice_sampler_config(8));

    constexpr std::size_t kStreams = 8;
    std::vector<util::Rng> rngs;
    util::Rng root(42);
    for (std::size_t i = 0; i < kStreams; ++i) rngs.push_back(root.fork(i));
    auto rngs_copy = rngs;
    const auto want = sorted_by_ue(sampler.generate_batch(std::span(rngs_copy), "pin", 0));
    ASSERT_EQ(want.size(), kStreams);

    auto batch = sampler.make_slot_batch(kStreams);
    char id[64];
    for (std::size_t i = 0; i < kStreams; ++i) {
        std::snprintf(id, sizeof(id), "pin-%06zu", i);
        batch.admit(rngs[i], id, i);
    }
    std::vector<core::Sampler::SlotBatch::Finished> finished;
    while (batch.live() > 0) batch.step(finished);

    ASSERT_EQ(finished.size(), kStreams);
    std::map<std::uint64_t, const trace::Stream*> by_ticket;
    for (const auto& f : finished) {
        EXPECT_FALSE(f.evicted);
        by_ticket[f.ticket] = &f.stream;
    }
    for (std::size_t i = 0; i < kStreams; ++i) {
        ASSERT_TRUE(by_ticket.count(i));
        expect_streams_identical(*by_ticket[i], want[i]);
    }
}

TEST_F(ServeFixture, AdmissionTimingDoesNotPerturbStreamContent) {
    const auto pkg = load_package();
    const core::Sampler sampler(*pkg.model, pkg.tokenizer, pkg.initial_event_dist,
                                slice_sampler_config(4));

    // A common per-stream length cap, so the solo and mid-admitted decodes
    // share the same finish rule (and the cap fits the remaining context at
    // every admission point below).
    core::Sampler::SlotBatch::AdmitParams params;
    params.max_len = 16;

    // Reference: each stream decoded alone, from context position 0.
    util::Rng root(7);
    std::vector<util::Rng> rngs;
    for (std::size_t i = 0; i < 4; ++i) rngs.push_back(root.fork(i));
    std::vector<trace::Stream> alone;
    for (std::size_t i = 0; i < 4; ++i) {
        auto solo = sampler.make_slot_batch(1);
        solo.admit(rngs[i], "ue-" + std::to_string(i), i, params);
        std::vector<core::Sampler::SlotBatch::Finished> fin;
        while (solo.live() > 0) solo.step(fin);
        ASSERT_EQ(fin.size(), 1u);
        alone.push_back(std::move(fin[0].stream));
    }

    // Same four streams, but two join mid-decode (slot refill at a step
    // boundary): content must be identical despite the different admission
    // times and batch companions.
    auto batch = sampler.make_slot_batch(4);
    batch.admit(rngs[0], "ue-0", 0, params);
    batch.admit(rngs[1], "ue-1", 1, params);
    std::vector<core::Sampler::SlotBatch::Finished> fin;
    batch.step(fin);
    batch.step(fin);
    ASSERT_GE(batch.admissible_len(), params.max_len);
    batch.admit(rngs[2], "ue-2", 2, params);
    batch.step(fin);
    ASSERT_GE(batch.admissible_len(), params.max_len);
    batch.admit(rngs[3], "ue-3", 3, params);
    while (batch.live() > 0) batch.step(fin);

    std::map<std::uint64_t, const trace::Stream*> by_ticket;
    for (const auto& f : fin) by_ticket[f.ticket] = &f.stream;
    ASSERT_EQ(by_ticket.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        expect_streams_identical(*by_ticket[i], alone[i]);
    }
}

TEST_F(ServeFixture, EvictReturnsPartialStreamsMarkedEvicted) {
    const auto pkg = load_package();
    const core::Sampler sampler(*pkg.model, pkg.tokenizer, pkg.initial_event_dist,
                                slice_sampler_config(2));
    auto batch = sampler.make_slot_batch(2);
    util::Rng root(3);
    batch.admit(root.fork(0), "a", 100);
    batch.admit(root.fork(1), "b", 200);
    std::vector<core::Sampler::SlotBatch::Finished> fin;
    batch.step(fin);

    // Stream 100 may have finished on its own in step 1; otherwise eviction
    // must hand back its partial stream flagged as evicted.
    const bool done_naturally = std::any_of(fin.begin(), fin.end(),
                                            [](const auto& f) { return f.ticket == 100; });
    std::vector<core::Sampler::SlotBatch::Finished> evicted;
    const std::size_t n = batch.evict([](std::uint64_t t) { return t == 100; }, evicted);
    EXPECT_EQ(n, done_naturally ? 0u : 1u);
    if (!done_naturally) {
        ASSERT_EQ(evicted.size(), 1u);
        EXPECT_TRUE(evicted[0].evicted);
        EXPECT_EQ(evicted[0].ticket, 100u);
        EXPECT_GE(evicted[0].stream.events.size(), 1u);
    }
    const std::size_t live = batch.live();
    std::vector<core::Sampler::SlotBatch::Finished> rest;
    EXPECT_EQ(batch.evict([](std::uint64_t) { return true; }, rest), live);
    EXPECT_EQ(batch.live(), 0u);
}

TEST_F(ServeFixture, AdmissibleLenIsInvariantUnderOccupancy) {
    // Decoder rows own independent per-row KV contexts, so a fresh slot can
    // always host a full-length stream no matter how far the current
    // residents have decoded: admissible_len() is an invariant, equal to the
    // sampler's max_stream_len cap.
    const auto pkg = load_package();
    const core::Sampler sampler(*pkg.model, pkg.tokenizer, pkg.initial_event_dist,
                                slice_sampler_config(2));
    auto batch = sampler.make_slot_batch(2);
    const std::size_t full = batch.admissible_len();
    EXPECT_EQ(full, sampler.config().max_stream_len);
    EXPECT_GE(full, 2u);
    util::Rng root(5);
    batch.admit(root.fork(0), "a", 0);
    std::vector<core::Sampler::SlotBatch::Finished> fin;
    batch.step(fin);
    batch.step(fin);  // resident advances; a fresh slot is unaffected
    EXPECT_EQ(batch.admissible_len(), full);
    if (batch.live() > 0) {
        // A late joiner really can run to the full cap beside the resident.
        batch.admit(root.fork(1), "b", 1,
                    core::Sampler::SlotBatch::AdmitParams{.max_len = full,
                                                          .temperature = -1.0,
                                                          .top_p = -1.0});
        batch.step(fin);
    }
    std::vector<core::Sampler::SlotBatch::Finished> evicted;
    batch.evict([](std::uint64_t) { return true; }, evicted);
    EXPECT_EQ(batch.admissible_len(), full);
}

// ---- wire protocol ----------------------------------------------------------

TEST(ServeProtocolTest, GenerateRequestRoundTrip) {
    serve::GenerateRequest req;
    req.device = trace::DeviceType::kTablet;
    req.hour_of_day = 21;
    req.count = 17;
    req.seed = 0xdeadbeefULL;
    req.deterministic = true;
    req.temperature = 0.8f;
    req.top_p = 0.95f;
    req.max_stream_len = 64;
    req.deadline_ms = 1500;
    req.ue_prefix = "lt";
    const auto bytes = serve::encode_generate_request(req);
    EXPECT_EQ(serve::peek_type(bytes), serve::MsgType::kGenerateRequest);
    const auto back = serve::decode_generate_request(bytes);
    EXPECT_EQ(back.device, req.device);
    EXPECT_EQ(back.hour_of_day, req.hour_of_day);
    EXPECT_EQ(back.count, req.count);
    EXPECT_EQ(back.seed, req.seed);
    EXPECT_EQ(back.deterministic, req.deterministic);
    EXPECT_EQ(back.temperature, req.temperature);
    EXPECT_EQ(back.top_p, req.top_p);
    EXPECT_EQ(back.max_stream_len, req.max_stream_len);
    EXPECT_EQ(back.deadline_ms, req.deadline_ms);
    EXPECT_EQ(back.ue_prefix, req.ue_prefix);
}

TEST(ServeProtocolTest, GenerateResponseRoundTripAndTruncationThrows) {
    serve::GenerateResponse resp;
    resp.status = serve::Status::kDeadline;
    resp.error = "deadline exceeded";
    trace::Stream s;
    s.ue_id = "pin-000001";
    s.device = trace::DeviceType::kPhone;
    s.hour_of_day = 9;
    s.events.push_back({0.0, 3});
    s.events.push_back({1.25, 7});
    resp.streams.push_back(s);
    const auto bytes = serve::encode_generate_response(resp);
    const auto back = serve::decode_generate_response(bytes);
    EXPECT_EQ(back.status, resp.status);
    EXPECT_EQ(back.error, resp.error);
    ASSERT_EQ(back.streams.size(), 1u);
    expect_streams_identical(back.streams[0], s);

    for (const std::size_t cut : {std::size_t{1}, bytes.size() / 2, bytes.size() - 1}) {
        const std::span<const std::uint8_t> trunc(bytes.data(), cut);
        EXPECT_THROW(serve::decode_generate_response(trunc), std::runtime_error) << cut;
    }
    EXPECT_THROW(serve::peek_type(std::span<const std::uint8_t>()), std::runtime_error);
}

TEST(ServeProtocolTest, StatsRoundTrip) {
    const auto req = serve::encode_stats_request();
    EXPECT_EQ(serve::peek_type(req), serve::MsgType::kStatsRequest);
    const std::string json = "{\"queue_depth\": 0}";
    const auto resp = serve::encode_stats_response(json);
    EXPECT_EQ(serve::decode_stats_response(resp), json);
}

// ---- Server end-to-end -------------------------------------------------------

serve::ServeConfig base_config(const std::string& dir) {
    serve::ServeConfig cfg;
    cfg.hub_dir = dir;
    cfg.model = tiny_config();
    cfg.slot_capacity = 8;
    return cfg;
}

TEST_F(ServeFixture, DeterministicRequestReproducesGenerateBatch) {
    // Reference decode with the released package, exactly as the docs
    // prescribe: stream i <- Rng(seed).fork(i), ue_id "<prefix>-%06zu" % i.
    const auto pkg = load_package();
    const core::Sampler ref(*pkg.model, pkg.tokenizer, pkg.initial_event_dist,
                            slice_sampler_config(8));
    util::Rng root(42);
    std::vector<util::Rng> rngs;
    for (std::size_t i = 0; i < 5; ++i) rngs.push_back(root.fork(i));
    const auto want = sorted_by_ue(ref.generate_batch(std::span(rngs), "pin", 0));

    serve::Server server(base_config(dir));
    serve::GenerateRequest req;
    req.device = trace::DeviceType::kPhone;
    req.hour_of_day = 9;
    req.count = 5;
    req.seed = 42;
    req.deterministic = true;
    req.ue_prefix = "pin";
    const auto resp = server.generate(req);
    ASSERT_EQ(resp.status, serve::Status::kOk) << resp.error;
    ASSERT_EQ(resp.streams.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
        expect_streams_identical(resp.streams[i], want[i]);
    }

    // Stats reflect the work.
    const std::string stats = server.stats_json();
    EXPECT_NE(stats.find("\"streams\": 5"), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"p99\""), std::string::npos) << stats;
    EXPECT_NE(stats.find("\"completed\": 1"), std::string::npos) << stats;
    server.drain();
    EXPECT_EQ(server.generate(req).status, serve::Status::kShuttingDown);
}

TEST_F(ServeFixture, MissingSliceReportsSliceAndHubDirectory) {
    serve::Server server(base_config(dir));
    serve::GenerateRequest req;
    req.device = trace::DeviceType::kTablet;
    req.hour_of_day = 3;
    const auto resp = server.generate(req);
    EXPECT_EQ(resp.status, serve::Status::kNoModel);
    EXPECT_NE(resp.error.find("tablet"), std::string::npos) << resp.error;
    EXPECT_NE(resp.error.find(dir), std::string::npos) << resp.error;
}

TEST_F(ServeFixture, BadRequestsAreRejectedUpFront) {
    serve::Server server(base_config(dir));
    serve::GenerateRequest req;
    req.device = trace::DeviceType::kPhone;
    req.hour_of_day = 9;
    req.count = 0;
    EXPECT_EQ(server.generate(req).status, serve::Status::kBadRequest);
    req.count = 1;
    req.hour_of_day = 24;
    EXPECT_EQ(server.generate(req).status, serve::Status::kBadRequest);
    req.hour_of_day = 9;
    req.top_p = 1.5f;
    EXPECT_EQ(server.generate(req).status, serve::Status::kBadRequest);
}

TEST_F(ServeFixture, DeadlineEvictsAndReturnsCompletedPrefix) {
    auto cfg = base_config(dir);
    cfg.slot_capacity = 4;
    serve::Server server(cfg);
    serve::GenerateRequest req;
    req.device = trace::DeviceType::kPhone;
    req.hour_of_day = 9;
    req.count = 100000;  // far more than 1ms of decode
    req.seed = 9;
    req.deadline_ms = 1;
    const auto resp = server.generate(req);
    EXPECT_EQ(resp.status, serve::Status::kDeadline) << resp.error;
    EXPECT_LT(resp.streams.size(), req.count);
    const std::string stats = server.stats_json();
    EXPECT_NE(stats.find("\"timed_out\": 1"), std::string::npos) << stats;
}

TEST_F(ServeFixture, QueueFullAppliesBackpressure) {
    auto cfg = base_config(dir);
    cfg.queue_capacity = 1;
    cfg.slot_capacity = 2;
    serve::Server server(cfg);
    serve::GenerateRequest big;
    big.device = trace::DeviceType::kPhone;
    big.hour_of_day = 9;
    big.count = 50000;
    big.deadline_ms = 500;  // evicted long before 50000 tiny-model streams finish

    std::thread first([&] {
        const auto resp = server.generate(big);
        EXPECT_NE(resp.status, serve::Status::kQueueFull);
    });
    // Give the big request time to occupy the single queue slot, then expect
    // backpressure until its deadline clears it out.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    serve::GenerateRequest small = big;
    small.count = 1;
    serve::GenerateResponse resp;
    for (int i = 0; i < 300; ++i) {
        resp = server.generate(small);
        if (resp.status == serve::Status::kQueueFull) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    EXPECT_EQ(resp.status, serve::Status::kQueueFull);
    first.join();
    server.drain();
}

TEST_F(ServeFixture, TcpTransportMatchesInProcess) {
    serve::Server server(base_config(dir));
    serve::TcpServer tcp(server, "127.0.0.1", 0);
    ASSERT_GT(tcp.port(), 0);
    std::thread accept_thread([&] { tcp.serve_forever(); });

    serve::GenerateRequest req;
    req.device = trace::DeviceType::kPhone;
    req.hour_of_day = 9;
    req.count = 3;
    req.seed = 1234;
    req.deterministic = true;
    req.ue_prefix = "tcp";

    const auto in_process = server.generate(req);
    ASSERT_EQ(in_process.status, serve::Status::kOk) << in_process.error;
    {
        serve::TcpClient client("127.0.0.1", tcp.port());
        const auto over_tcp = client.generate(req);
        ASSERT_EQ(over_tcp.status, serve::Status::kOk) << over_tcp.error;
        ASSERT_EQ(over_tcp.streams.size(), in_process.streams.size());
        for (std::size_t i = 0; i < over_tcp.streams.size(); ++i) {
            expect_streams_identical(over_tcp.streams[i], in_process.streams[i]);
        }
        const std::string stats = client.stats_json();
        EXPECT_NE(stats.find("latency_seconds"), std::string::npos) << stats;
    }
    tcp.stop();
    accept_thread.join();
    server.drain();
}

TEST(TcpClientTest, BadHostThrowsTypedErrorWithoutLeakingFds) {
    const auto count_fds = [] {
        std::size_t n = 0;
        for (const auto& entry : std::filesystem::directory_iterator("/proc/self/fd")) {
            (void)entry;
            ++n;
        }
        return n;
    };
    const std::size_t before = count_fds();
    // The router's health probe constructs a TcpClient every interval and
    // swallows the exception; a leak here exhausts the fd table in seconds.
    for (int i = 0; i < 32; ++i) {
        try {
            serve::TcpClient client("not-an-ip", 1);
            FAIL() << "connecting to a hostname should have thrown";
        } catch (const serve::TransportError& e) {
            EXPECT_EQ(e.kind(), serve::TransportError::Kind::kConnectFailed);
            EXPECT_FALSE(e.response_started());
            EXPECT_NE(std::string(e.what()).find("not-an-ip"), std::string::npos);
        }
    }
    EXPECT_EQ(count_fds(), before);
}

TEST(TcpClientTest, GarbagePayloadIsNonRetriableProtocolError) {
    std::uint16_t port = 0;
    const int lfd = serve::net::listen_socket("127.0.0.1", 0, 4, &port);
    std::thread peer([lfd] {
        const int fd = ::accept(lfd, nullptr, nullptr);
        if (fd < 0) return;
        std::uint8_t buf[4096];
        (void)::recv(fd, buf, sizeof(buf), 0);  // discard the request frame
        // Well-framed junk: length prefix 3, then a payload no decoder
        // accepts. The client must surface this as a typed protocol error
        // (response started, never retriable), not a bare runtime_error.
        const std::uint8_t junk[] = {3, 0, 0, 0, 0xEE, 0xBA, 0xAD};
        (void)::send(fd, junk, sizeof(junk), 0);
        ::close(fd);
    });
    try {
        serve::TcpClient client("127.0.0.1", port);
        serve::GenerateRequest req;
        req.device = trace::DeviceType::kPhone;
        req.hour_of_day = 9;
        req.count = 1;
        (void)client.generate(req);
        FAIL() << "junk payload should have thrown";
    } catch (const serve::TransportError& e) {
        EXPECT_EQ(e.kind(), serve::TransportError::Kind::kProtocol);
        EXPECT_TRUE(e.response_started());
    }
    peer.join();
    ::close(lfd);
}

}  // namespace
}  // namespace cpt
