// Tests for the secondary trace analytics: autocorrelation, burstiness,
// Jensen-Shannon divergence, diurnal volume profiles.
#include <gtest/gtest.h>

#include <cmath>

#include "metrics/analytics.hpp"
#include "trace/synthetic.hpp"
#include "util/rng.hpp"

namespace cpt::metrics {
namespace {

namespace lte = cellular::lte;

TEST(AutocorrelationTest, KnownSeries) {
    // Perfectly alternating series has lag-1 autocorrelation near -1.
    std::vector<double> alternating;
    for (int i = 0; i < 100; ++i) alternating.push_back(i % 2 ? 1.0 : -1.0);
    EXPECT_NEAR(autocorrelation(alternating, 1), -1.0, 0.05);
    EXPECT_NEAR(autocorrelation(alternating, 2), 1.0, 0.05);
    // Lag 0 is 1 by definition; degenerate inputs give 0.
    EXPECT_DOUBLE_EQ(autocorrelation(alternating, 0), 1.0);
    const std::vector<double> constant(50, 3.0);
    EXPECT_DOUBLE_EQ(autocorrelation(constant, 1), 0.0);
    const std::vector<double> tiny{1.0, 2.0};
    EXPECT_DOUBLE_EQ(autocorrelation(tiny, 1), 0.0);
}

TEST(AutocorrelationTest, IidIsNearZero) {
    util::Rng rng(1);
    std::vector<double> xs(5000);
    for (auto& x : xs) x = rng.normal();
    EXPECT_NEAR(autocorrelation(xs, 1), 0.0, 0.05);
    EXPECT_NEAR(autocorrelation(xs, 5), 0.0, 0.05);
}

TEST(AnalyticsTest, WorldInterarrivalsAreTemporallyCorrelated) {
    // Per-UE activity scaling induces positive autocorrelation of
    // interarrival magnitudes within streams — a property of real traffic
    // that i.i.d. generators cannot show.
    trace::SyntheticWorldConfig cfg;
    cfg.population = {300, 0, 0};
    cfg.seed = 2;
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    EXPECT_GT(mean_interarrival_autocorrelation(world, 2), 0.0);
}

TEST(AnalyticsTest, IndexOfDispersionDetectsBurstiness) {
    // Regular arrivals: IDC << 1. Bursty arrivals: IDC > 1.
    trace::Dataset regular;
    trace::Dataset bursty;
    util::Rng rng(3);
    for (int s = 0; s < 20; ++s) {
        trace::Stream r;
        for (int i = 0; i < 200; ++i) {
            r.events.push_back({static_cast<double>(i) * 5.0, lte::kSrvReq});
        }
        regular.streams.push_back(r);

        trace::Stream b;
        double t = 0.0;
        for (int burst = 0; burst < 20; ++burst) {
            for (int i = 0; i < 10; ++i) {
                b.events.push_back({t, lte::kSrvReq});
                t += 0.2;
            }
            t += 100.0;
        }
        bursty.streams.push_back(b);
    }
    const double idc_regular = index_of_dispersion(regular, 20.0);
    const double idc_bursty = index_of_dispersion(bursty, 20.0);
    EXPECT_LT(idc_regular, 0.5);
    EXPECT_GT(idc_bursty, 2.0);
    EXPECT_THROW(index_of_dispersion(regular, 0.0), std::invalid_argument);
}

TEST(JensenShannonTest, BoundsAndSymmetry) {
    const std::vector<double> p{0.5, 0.5, 0.0};
    const std::vector<double> q{0.0, 0.5, 0.5};
    const std::vector<double> r{0.5, 0.5, 0.0};
    EXPECT_DOUBLE_EQ(jensen_shannon(p, r), 0.0);
    const double d = jensen_shannon(p, q);
    EXPECT_GT(d, 0.0);
    EXPECT_LE(d, std::log(2.0) + 1e-12);
    EXPECT_DOUBLE_EQ(jensen_shannon(p, q), jensen_shannon(q, p));
    EXPECT_THROW(jensen_shannon(p, std::vector<double>{0.5, 0.5}), std::invalid_argument);
    // Disjoint supports hit the ln 2 bound.
    EXPECT_NEAR(jensen_shannon(std::vector<double>{1.0, 0.0}, std::vector<double>{0.0, 1.0}),
                std::log(2.0), 1e-12);
}

TEST(AnalyticsTest, HourlyVolumeShowsDiurnalPeak) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {120, 0, 0};
    cfg.hour_of_day = 0;
    const auto slices = trace::SyntheticWorldGenerator(cfg).generate_hours(24);
    const auto volume = hourly_volume(slices);
    ASSERT_EQ(volume.size(), 24u);
    // Peak (phones: ~14:00) should comfortably exceed the nightly trough.
    double peak = 0.0;
    double trough = 1e18;
    for (double v : volume) {
        peak = std::max(peak, v);
        trough = std::min(trough, v);
    }
    EXPECT_GT(peak, trough * 1.2);
}

TEST(AnalyticsTest, InterarrivalCvShowsHeavyTail) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {200, 0, 0};
    cfg.seed = 5;
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    // Log-normal mixtures across heterogeneous UEs -> CV well above 1
    // (exponential would be exactly 1).
    EXPECT_GT(interarrival_cv(world), 1.2);
}

}  // namespace
}  // namespace cpt::metrics
