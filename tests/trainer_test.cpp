// Trainer control-flow contract: up-front config validation, early stopping
// on a plateaued validation loss, the cosine learning-rate floor, fine-tuning
// resuming from pretrained weights, and the step/token accounting the
// training benchmarks report.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "core/model.hpp"
#include "core/trainer.hpp"
#include "trace/synthetic.hpp"

namespace cpt::core {
namespace {

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 33) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

CptGptConfig tiny_config() {
    CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 64;
    cfg.head_hidden = 24;
    return cfg;
}

TEST(TrainerConfigTest, RejectsInvalidConfigUpFront) {
    const auto world = phone_world(20);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(1);
    CptGpt model(tok, tiny_config(), rng);

    auto with = [](auto mutate) {
        TrainConfig cfg;
        mutate(cfg);
        return cfg;
    };
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.batch_size = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.window = 1; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.val_fraction = 1.0; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.val_fraction = -0.1; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.lr = -1e-3f; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.max_epochs = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.patience = 0; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.grad_clip = 0.0f; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.min_lr_fraction = 0.0f; })),
                 std::invalid_argument);
    EXPECT_THROW(Trainer(model, tok, with([](TrainConfig& c) { c.max_stream_len = 1; })),
                 std::invalid_argument);
    // The defaults are valid.
    EXPECT_NO_THROW(Trainer(model, tok, TrainConfig{}));
}

TEST(TrainerControlFlowTest, EarlyStopsOnPlateauedValLoss) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(2);
    CptGpt model(tok, tiny_config(), rng);
    TrainConfig cfg;
    cfg.max_epochs = 50;
    cfg.patience = 2;
    cfg.window = 32;
    // A vanishing learning rate cannot move the val loss past the 1e-4
    // improvement threshold, so the run must stop after the first epoch's
    // best plus `patience` stale epochs.
    cfg.lr = 1e-8f;
    cfg.lr_decay = false;
    Trainer trainer(model, tok, cfg);
    const auto r = trainer.train(world);
    EXPECT_EQ(r.epochs_run, cfg.patience + 1);
    EXPECT_EQ(r.best_epoch, 0);
}

TEST(TrainerControlFlowTest, CosineScheduleHitsFloorAtFinalEpoch) {
    TrainConfig cfg;
    cfg.lr = 2e-3f;
    cfg.max_epochs = 10;
    cfg.min_lr_fraction = 0.25f;
    EXPECT_FLOAT_EQ(Trainer::cosine_lr(cfg, 0), cfg.lr);
    const float floor = cfg.lr * cfg.min_lr_fraction;
    EXPECT_NEAR(Trainer::cosine_lr(cfg, cfg.max_epochs - 1), floor, 1e-6f * cfg.lr);
    // Monotone non-increasing across the schedule.
    for (int e = 1; e < cfg.max_epochs; ++e) {
        EXPECT_LE(Trainer::cosine_lr(cfg, e), Trainer::cosine_lr(cfg, e - 1));
    }
    // Decay off -> constant lr.
    cfg.lr_decay = false;
    EXPECT_FLOAT_EQ(Trainer::cosine_lr(cfg, cfg.max_epochs - 1), cfg.lr);
}

TEST(TrainerControlFlowTest, FineTuneResumesFromPretrainedWeights) {
    const auto pretrain_world = phone_world(50, 41);
    const auto adapt_world = phone_world(40, 42);
    const auto tok = Tokenizer::fit(pretrain_world);

    TrainConfig cfg;
    cfg.max_epochs = 4;
    cfg.window = 32;

    util::Rng rng_a(3);
    CptGpt pretrained(tok, tiny_config(), rng_a);
    Trainer(pretrained, tok, cfg).train(pretrain_world);

    // Fine-tuning the pretrained model must start from a lower loss than
    // training the same architecture from scratch on the adaptation data.
    util::Rng rng_b(3);
    CptGpt scratch(tok, tiny_config(), rng_b);
    TrainConfig one_epoch = cfg;
    one_epoch.max_epochs = 1;
    one_epoch.lr_decay = false;
    const auto scratch_first = Trainer(scratch, tok, one_epoch).train(adapt_world);

    util::Rng rng_c(4);
    CptGpt resumed(tok, tiny_config(), rng_c);
    copy_weights(pretrained, resumed);
    const auto ft = Trainer(resumed, tok, cfg).fine_tune(adapt_world);
    ASSERT_FALSE(ft.train_loss.empty());
    EXPECT_LT(ft.train_loss.front(), scratch_first.train_loss.front());
}

TEST(TrainerControlFlowTest, CountsStepsAndTokens) {
    const auto world = phone_world(30);
    const auto tok = Tokenizer::fit(world);
    util::Rng rng(5);
    CptGpt model(tok, tiny_config(), rng);
    TrainConfig cfg;
    cfg.max_epochs = 2;
    cfg.window = 32;
    cfg.lr_decay = false;
    Trainer trainer(model, tok, cfg);
    const auto r = trainer.train(world);
    EXPECT_GT(r.steps, 0u);
    EXPECT_GE(r.tokens, r.steps);  // every step covers at least one window
    EXPECT_EQ(r.tokens % cfg.window, 0u);
}

}  // namespace
}  // namespace cpt::core
