// Module-level tests: shape behaviour, parameter registration, gradient flow
// through composite modules, and tiny end-to-end learning checks proving the
// transformer and LSTM can actually fit data.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/modules.hpp"
#include "nn/optim.hpp"

namespace cpt::nn {
namespace {

TEST(LinearTest, ShapesAndParamCount) {
    util::Rng rng(1);
    Linear fc(4, 3, rng);
    EXPECT_EQ(fc.num_parameters(), 4u * 3u + 3u);
    Var x = make_var(Tensor::randn(rng, {2, 5, 4}));
    Var y = fc.forward(x);
    EXPECT_EQ(y->value.shape(), (Shape{2, 5, 3}));
    EXPECT_THROW(fc.forward(make_var(Tensor::zeros({2, 5}))), std::invalid_argument);
}

TEST(LinearTest, ComputesAffineMap) {
    util::Rng rng(2);
    Linear fc(2, 1, rng);
    // Overwrite weights with known values: y = 2a - b + 0.5.
    fc.weight()->value.data()[0] = 2.0f;
    fc.weight()->value.data()[1] = -1.0f;
    fc.bias()->value.data()[0] = 0.5f;
    Var x = make_var(Tensor::from({3.0f, 4.0f}, {1, 2}));
    Var y = fc.forward(x);
    EXPECT_NEAR(y->value[0], 2.0f * 3.0f - 4.0f + 0.5f, 1e-5f);
}

TEST(MlpTest, GradFlowsToAllParams) {
    util::Rng rng(3);
    Mlp mlp(3, 8, 2, rng);
    Var x = make_var(Tensor::randn(rng, {4, 3}));
    Var loss = mean_all(mul(mlp.forward(x), mlp.forward(x)));
    backward(loss);
    for (const auto& p : mlp.parameters()) {
        ASSERT_EQ(p->grad.numel(), p->value.numel());
    }
}

TEST(AttentionTest, OutputShapeAndCausality) {
    util::Rng rng(4);
    MultiHeadSelfAttention attn(8, 2, rng);
    Var x = make_var(Tensor::randn(rng, {2, 5, 8}));
    Var y = attn.forward(x);
    EXPECT_EQ(y->value.shape(), (Shape{2, 5, 8}));

    // Causality: perturbing a later timestep must not change earlier outputs.
    Tensor x2 = x->value.clone();
    for (std::size_t j = 0; j < 8; ++j) x2.data()[(0 * 5 + 4) * 8 + j] += 3.0f;  // t=4, batch 0
    Var y2 = attn.forward(make_var(x2));
    for (std::size_t t = 0; t < 4; ++t) {
        for (std::size_t j = 0; j < 8; ++j) {
            EXPECT_NEAR(y->value[(0 * 5 + t) * 8 + j], y2->value[(0 * 5 + t) * 8 + j], 1e-5f)
                << "t=" << t << " j=" << j;
        }
    }
}

TEST(TransformerTest, EndToEndShapesAndCausality) {
    util::Rng rng(5);
    TransformerConfig cfg;
    cfg.d_token = 6;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 2;
    cfg.max_seq_len = 10;
    Transformer model(cfg, rng);
    Var x = make_var(Tensor::randn(rng, {3, 7, 6}));
    Var y = model.forward(x);
    EXPECT_EQ(y->value.shape(), (Shape{3, 7, 16}));

    // Causality through the whole stack.
    Tensor x2 = x->value.clone();
    for (std::size_t j = 0; j < 6; ++j) x2.data()[(0 * 7 + 6) * 6 + j] = 9.0f;
    Var y2 = model.forward(make_var(x2));
    for (std::size_t t = 0; t < 6; ++t) {
        for (std::size_t j = 0; j < 16; ++j) {
            EXPECT_NEAR(y->value[(0 * 7 + t) * 16 + j], y2->value[(0 * 7 + t) * 16 + j], 1e-4f);
        }
    }
    // Too-long input rejected.
    EXPECT_THROW(model.forward(make_var(Tensor::zeros({1, 11, 6}))), std::invalid_argument);
}

TEST(TransformerTest, LearnsDeterministicNextToken) {
    // Task: tokens alternate between two one-hot symbols; model must predict
    // the next symbol. A transformer that cannot fit this is broken.
    util::Rng rng(6);
    TransformerConfig cfg;
    cfg.d_token = 2;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 8;
    Transformer model(cfg, rng);
    Linear head(16, 2, rng);

    std::vector<Var> params = model.parameters();
    for (auto& p : head.parameters()) params.push_back(p);
    Adam opt(params, 3e-3f);

    const std::size_t b = 4;
    const std::size_t t = 8;
    std::vector<float> input(b * t * 2, 0.0f);
    std::vector<int> targets(b * t);
    for (std::size_t i = 0; i < b; ++i) {
        for (std::size_t k = 0; k < t; ++k) {
            const int sym = static_cast<int>((k + i) % 2);
            input[(i * t + k) * 2 + static_cast<std::size_t>(sym)] = 1.0f;
            targets[i * t + k] = 1 - sym;  // next symbol alternates
        }
    }
    float first_loss = 0.0f;
    float last_loss = 0.0f;
    for (int step = 0; step < 150; ++step) {
        Var x = make_var(Tensor::from(input, {b, t, 2}));
        Var logits = reshape(head.forward(model.forward(x)), {b * t, 2});
        Var loss = cross_entropy(logits, targets);
        opt.zero_grad();
        backward(loss);
        opt.step();
        if (step == 0) first_loss = loss->value[0];
        last_loss = loss->value[0];
    }
    EXPECT_LT(last_loss, 0.1f);
    EXPECT_LT(last_loss, first_loss * 0.3f);
}

TEST(LstmCellTest, StateShapesAndGradFlow) {
    util::Rng rng(7);
    LstmCell cell(3, 5, rng);
    auto st = cell.zero_state(2);
    EXPECT_EQ(st.h->value.shape(), (Shape{2, 5}));
    Var x = make_var(Tensor::randn(rng, {2, 3}));
    auto st2 = cell.step(x, st);
    EXPECT_EQ(st2.h->value.shape(), (Shape{2, 5}));
    Var loss = mean_all(mul(st2.h, st2.h));
    backward(loss);
    for (const auto& p : cell.parameters()) EXPECT_EQ(p->grad.numel(), p->value.numel());
}

TEST(LstmStackTest, LearnsToRememberFirstInput) {
    // Task: output after 6 steps should equal the first input bit — requires
    // carrying state across steps.
    util::Rng rng(8);
    LstmStack lstm(1, 12, 1, rng);
    Linear head(12, 1, rng);
    std::vector<Var> params = lstm.parameters();
    for (auto& p : head.parameters()) params.push_back(p);
    Adam opt(params, 1e-2f);

    util::Rng data_rng(99);
    float last_loss = 1e9f;
    for (int step = 0; step < 200; ++step) {
        const std::size_t b = 8;
        std::vector<float> first_bits(b);
        auto state = lstm.zero_state(b);
        Var out;
        for (int k = 0; k < 6; ++k) {
            std::vector<float> xin(b);
            for (std::size_t i = 0; i < b; ++i) {
                const float bit = data_rng.bernoulli(0.5) ? 1.0f : 0.0f;
                xin[i] = bit;
                if (k == 0) first_bits[i] = bit;
            }
            auto [h, next] = lstm.step(make_var(Tensor::from(xin, {b, 1})), state);
            state = std::move(next);
            out = h;
        }
        Var logits = reshape(head.forward(out), {b});
        Var loss = bce_with_logits(logits, first_bits);
        opt.zero_grad();
        backward(loss);
        opt.step();
        last_loss = loss->value[0];
    }
    EXPECT_LT(last_loss, 0.25f);
}

TEST(ModuleTest, NamedParametersAreUnique) {
    util::Rng rng(9);
    TransformerConfig cfg;
    cfg.d_token = 4;
    cfg.d_model = 8;
    cfg.heads = 2;
    cfg.mlp_hidden = 16;
    cfg.blocks = 2;
    cfg.max_seq_len = 4;
    Transformer model(cfg, rng);
    auto named = model.named_parameters("model.");
    std::set<std::string> names;
    for (const auto& [name, p] : named) {
        EXPECT_TRUE(names.insert(name).second) << "duplicate parameter name " << name;
        EXPECT_TRUE(name.starts_with("model."));
    }
}

}  // namespace
}  // namespace cpt::nn
