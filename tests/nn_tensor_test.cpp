#include <gtest/gtest.h>

#include <stdexcept>

#include "nn/tensor.hpp"

namespace cpt::nn {
namespace {

TEST(TensorTest, ZeroInitialized) {
    Tensor t({2, 3});
    EXPECT_EQ(t.numel(), 6u);
    EXPECT_EQ(t.rank(), 2u);
    for (float x : t.data()) EXPECT_EQ(x, 0.0f);
}

TEST(TensorTest, FromValidatesSize) {
    EXPECT_THROW(Tensor::from({1.0f, 2.0f}, {3}), std::invalid_argument);
    const Tensor t = Tensor::from({1.0f, 2.0f, 3.0f}, {3});
    EXPECT_EQ(t[1], 2.0f);
}

TEST(TensorTest, ReshapeSharesStorage) {
    Tensor t = Tensor::from({1, 2, 3, 4, 5, 6}, {2, 3});
    Tensor r = t.reshaped({3, 2});
    r[0] = 99.0f;
    EXPECT_EQ(t[0], 99.0f);  // same storage
    EXPECT_THROW(t.reshaped({4}), std::invalid_argument);
}

TEST(TensorTest, CloneDetaches) {
    Tensor t = Tensor::from({1, 2}, {2});
    Tensor c = t.clone();
    c[0] = 50.0f;
    EXPECT_EQ(t[0], 1.0f);
}

TEST(TensorTest, AddScaleFill) {
    Tensor a = Tensor::from({1, 2, 3}, {3});
    Tensor b = Tensor::from({10, 20, 30}, {3});
    a.add_(b);
    EXPECT_EQ(a[2], 33.0f);
    a.scale_(0.5f);
    EXPECT_EQ(a[0], 5.5f);
    a.fill(7.0f);
    EXPECT_EQ(a[1], 7.0f);
    Tensor wrong = Tensor::zeros({4});
    EXPECT_THROW(a.add_(wrong), std::invalid_argument);
}

TEST(TensorTest, RandnStatistics) {
    util::Rng rng(3);
    const Tensor t = Tensor::randn(rng, {10000}, 2.0f);
    double sum = 0.0;
    double sq = 0.0;
    for (float x : t.data()) {
        sum += x;
        sq += static_cast<double>(x) * x;
    }
    const double mean = sum / 10000.0;
    const double var = sq / 10000.0 - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorTest, UniformBounds) {
    util::Rng rng(4);
    const Tensor t = Tensor::uniform(rng, {1000}, -0.5f, 0.5f);
    for (float x : t.data()) {
        EXPECT_GE(x, -0.5f);
        EXPECT_LT(x, 0.5f);
    }
}

TEST(TensorTest, FirstRowsSharesStorageAndValidates) {
    Tensor t = Tensor::from({1, 2, 3, 4, 5, 6}, {3, 2});
    Tensor head = t.first_rows(2);
    EXPECT_EQ(head.shape(), (Shape{2, 2}));
    EXPECT_EQ(head.numel(), 4u);
    head[0] = 9.0f;  // view: writes land in the parent storage
    EXPECT_EQ(t[0], 9.0f);
    EXPECT_EQ(t.first_rows(0).numel(), 0u);
    EXPECT_THROW(t.first_rows(4), std::invalid_argument);
    EXPECT_THROW(Tensor().first_rows(1), std::invalid_argument);
}

TEST(TensorTest, ShapeToString) {
    EXPECT_EQ(shape_to_string({2, 3, 4}), "[2, 3, 4]");
    EXPECT_EQ(shape_numel({2, 3, 4}), 24u);
    EXPECT_EQ(shape_numel({}), 0u);
}

}  // namespace
}  // namespace cpt::nn
