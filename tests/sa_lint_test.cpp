// Tests for the cpt_sa project-invariant linter (tools/cpt_sa). Three
// layers: per-rule unit tests over inline snippets (lint_text), the
// violating fixture tree under tests/sa_fixtures/bad_tree (every rule must
// fire exactly where seeded, and the suppressed twin must stay silent), and
// the real repository (src/ + CMakeLists.txt must lint clean — this is the
// same invocation scripts/check.sh runs in its `sa` stage, so a regression
// here is caught before the gate does).
#include "sa_lint.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

namespace {

using cpt::sa::LintResult;
using cpt::sa::Violation;

std::vector<Violation> lint(const std::string& rel, const std::string& text) {
    std::vector<Violation> out;
    cpt::sa::lint_text(rel, text, out);
    return out;
}

std::size_t count_rule(const std::vector<Violation>& vs, const std::string& rule) {
    return static_cast<std::size_t>(
        std::count_if(vs.begin(), vs.end(),
                      [&](const Violation& v) { return v.rule == rule; }));
}

bool has(const std::vector<Violation>& vs, const std::string& file,
         const std::string& rule) {
    return std::any_of(vs.begin(), vs.end(), [&](const Violation& v) {
        return v.file == file && v.rule == rule;
    });
}

// ---- sync-types ------------------------------------------------------------

TEST(SyncTypes, FlagsStdMutexAndHeaderOutsideSyncHpp) {
    const auto vs = lint("src/serve/engine.cpp",
                         "#include <mutex>\n"
                         "std::mutex mu;\n"
                         "std::condition_variable cv;\n"
                         "std::lock_guard<std::mutex> lk(mu);\n");
    EXPECT_EQ(count_rule(vs, "sync-types"), 5u);  // header + 4 type mentions
    EXPECT_EQ(vs.front().line, 1u);
}

TEST(SyncTypes, SyncHppItselfIsExempt) {
    const auto vs = lint("src/util/sync.hpp",
                         "#include <mutex>\nstd::mutex mu_;\n");
    EXPECT_TRUE(vs.empty());
}

TEST(SyncTypes, IgnoresCommentsAndStrings) {
    const auto vs = lint("src/serve/engine.cpp",
                         "// wraps std::mutex\n"
                         "/* #include <mutex> */\n"
                         "const char* doc = \"std::mutex\";\n"
                         "const char* raw = R\"(std::lock_guard)\";\n");
    EXPECT_TRUE(vs.empty());
}

TEST(SyncTypes, AnnotatedWrappersAreClean) {
    const auto vs = lint("src/serve/engine.cpp",
                         "#include \"util/sync.hpp\"\n"
                         "util::Mutex mu;\nutil::CondVar cv;\n"
                         "util::LockGuard lk(mu);\n");
    EXPECT_TRUE(vs.empty());
}

// ---- avx2-isolation --------------------------------------------------------

TEST(Avx2Isolation, FlagsIntrinsicsOutsideAvx2Tu) {
    const auto vs = lint("src/nn/gemm.cpp", "#include <immintrin.h>\n");
    EXPECT_EQ(count_rule(vs, "avx2-isolation"), 1u);
}

TEST(Avx2Isolation, FlagsAvx2HeaderInclusionFromBaselineTu) {
    const auto vs = lint("src/nn/kernels.cpp", "#include \"kernels_avx2.hpp\"\n");
    EXPECT_EQ(count_rule(vs, "avx2-isolation"), 1u);
}

TEST(Avx2Isolation, Avx2TuMayUseIntrinsics) {
    const auto vs = lint("src/nn/gemm_avx2.cpp",
                         "#include <immintrin.h>\n#include \"kernels_avx2.hpp\"\n");
    EXPECT_TRUE(vs.empty());
}

// ---- determinism -----------------------------------------------------------

TEST(Determinism, FlagsLibcRandAndTimeInScope) {
    const auto vs = lint("src/nn/sampler_helpers.cpp",
                         "int f() { srand(1); return rand(); }\n"
                         "long g() { return std::time(nullptr); }\n"
                         "long h() { return ::time(nullptr); }\n");
    EXPECT_EQ(count_rule(vs, "determinism"), 4u);
}

TEST(Determinism, MemberCallsAndPrefixedNamesAreClean) {
    const auto vs = lint("src/nn/sampler_helpers.cpp",
                         "long f(Clock& c) { return c.time(0); }\n"
                         "long g(Clock* c) { return c->clock(); }\n"
                         "long h() { return stage_times(1); }\n"
                         "long i() { return Wall::time(); }\n");
    EXPECT_TRUE(vs.empty());
}

TEST(Determinism, FlagsUnorderedIterationButNotLookup) {
    const auto vs = lint("src/core/sampler.cpp",
                         "std::unordered_map<int, int> counts;\n"
                         "int f(int k) { return counts[k]; }\n"
                         "int g() { int t = 0; for (const auto& kv : counts) t += kv.second; return t; }\n"
                         "auto h() { return counts.begin(); }\n");
    EXPECT_EQ(count_rule(vs, "determinism"), 2u);
    EXPECT_EQ(vs[0].line, 3u);
    EXPECT_EQ(vs[1].line, 4u);
}

TEST(Determinism, CoversColumnarAndSketchPaths) {
    // The streaming substrate promises reproducible files and mergeable
    // sketches, so src/trace/columnar.* and src/util/sketch.* sit inside the
    // determinism scope alongside the nn and sampler paths.
    const auto vs_col = lint("src/trace/columnar.cpp",
                             "long f() { return std::time(nullptr); }\n");
    EXPECT_EQ(count_rule(vs_col, "determinism"), 1u);
    const auto vs_sk = lint("src/util/sketch.cpp",
                            "std::unordered_map<int, int> m;\n"
                            "int g() { int t = 0; for (auto& kv : m) t += kv.second; return t; }\n");
    EXPECT_EQ(count_rule(vs_sk, "determinism"), 1u);
}

TEST(Determinism, OutsideDeterministicPathsIsUnscoped) {
    const auto vs = lint("src/serve/server.cpp",
                         "long f() { return std::time(nullptr); }\n"
                         "std::unordered_map<int, int> m;\n"
                         "int g() { int t = 0; for (auto& kv : m) t += kv.second; return t; }\n");
    EXPECT_EQ(count_rule(vs, "determinism"), 0u);
}

// ---- raw-stderr ------------------------------------------------------------

TEST(RawStderr, FlagsStderrWritesOutsideLogCpp) {
    const auto vs = lint("src/core/trainer.cpp",
                         "void f() { fprintf(stderr, \"x\\n\"); }\n"
                         "void g() { std::fprintf(stderr, \"x\\n\"); }\n"
                         "void h() { std::cerr << \"x\"; }\n"
                         "void i() { fputs(\"x\", stderr); }\n");
    EXPECT_EQ(count_rule(vs, "raw-stderr"), 4u);
}

TEST(RawStderr, StdoutAndLogCppAreClean) {
    EXPECT_TRUE(lint("src/core/trainer.cpp",
                     "void f() { std::printf(\"x\\n\"); }\n"
                     "void g() { fprintf(stdout, \"x\\n\"); }\n")
                    .empty());
    EXPECT_TRUE(lint("src/util/log.cpp",
                     "void f() { std::fwrite(\"x\", 1, 1, stderr); }\n")
                    .empty());
}

// ---- avx2-flags (CMake) ----------------------------------------------------

TEST(Avx2Flags, FlagsDirectCompileOptions) {
    const auto vs = lint("CMakeLists.txt",
                         "target_compile_options(cpt_nn PRIVATE -mavx2)\n");
    EXPECT_EQ(count_rule(vs, "avx2-flags"), 1u);
}

TEST(Avx2Flags, ProbeAndNamedVariableAreAllowed) {
    const auto vs = lint("CMakeLists.txt",
                         "check_cxx_compiler_flag(\"-mavx2\" HAS_AVX2)\n"
                         "set(CPT_AVX2_TU_OPTIONS \"-mavx2;-mfma\")\n");
    EXPECT_TRUE(vs.empty());
}

TEST(Avx2Flags, MisnamedVariableIsFlagged) {
    const auto vs = lint("CMakeLists.txt", "set(FAST_FLAGS \"-mavx2\")\n");
    EXPECT_EQ(count_rule(vs, "avx2-flags"), 1u);
}

TEST(Avx2Flags, SourceFilePropertiesRequireAvx2Sources) {
    EXPECT_TRUE(lint("src/nn/CMakeLists.txt",
                     "set_source_files_properties(gemm_avx2.cpp kernels_avx2.cpp\n"
                     "  PROPERTIES COMPILE_OPTIONS \"${CPT_AVX2_TU_OPTIONS}\")\n")
                    .empty());
    const auto vs = lint("src/nn/CMakeLists.txt",
                         "set_source_files_properties(gemm.cpp PROPERTIES\n"
                         "  COMPILE_OPTIONS \"${CPT_AVX2_TU_OPTIONS}\")\n");
    EXPECT_EQ(count_rule(vs, "avx2-flags"), 1u);
}

TEST(Avx2Flags, CMakeCommentsAreIgnored) {
    EXPECT_TRUE(lint("CMakeLists.txt",
                     "# target_compile_options(cpt_nn PRIVATE -mavx2)\n")
                    .empty());
}

// ---- suppression -----------------------------------------------------------

TEST(Suppression, SameLineAndPreviousLineAndWildcard) {
    EXPECT_TRUE(lint("src/serve/engine.cpp",
                     "std::mutex mu;  // cpt-sa-allow(sync-types)\n")
                    .empty());
    EXPECT_TRUE(lint("src/serve/engine.cpp",
                     "// cpt-sa-allow(sync-types)\nstd::mutex mu;\n")
                    .empty());
    EXPECT_TRUE(lint("src/serve/engine.cpp",
                     "std::mutex mu;  // cpt-sa-allow(*)\n")
                    .empty());
    EXPECT_TRUE(lint("CMakeLists.txt",
                     "# cpt-sa-allow(avx2-flags)\n"
                     "target_compile_options(t PRIVATE -mavx2)\n")
                    .empty());
}

TEST(Suppression, WrongRuleDoesNotSuppress) {
    const auto vs = lint("src/serve/engine.cpp",
                         "std::mutex mu;  // cpt-sa-allow(raw-stderr)\n");
    EXPECT_EQ(count_rule(vs, "sync-types"), 1u);
}

// ---- report format ---------------------------------------------------------

TEST(Format, FileLineRuleAndSuppressionHint) {
    const auto vs = lint("src/serve/engine.cpp", "std::mutex mu;\n");
    ASSERT_EQ(vs.size(), 1u);
    const std::string line = cpt::sa::format(vs.front());
    EXPECT_NE(line.find("src/serve/engine.cpp:1: [sync-types]"), std::string::npos);
    EXPECT_NE(line.find("(suppress: cpt-sa-allow(sync-types))"), std::string::npos);
}

// ---- fixture tree ----------------------------------------------------------

TEST(FixtureTree, EveryRuleFiresWhereSeeded) {
    std::string error;
    const LintResult result = cpt::sa::lint_paths(
        std::string(CPT_SA_FIXTURES) + "/bad_tree", {"src", "CMakeLists.txt"}, &error);
    ASSERT_TRUE(error.empty()) << error;
    const auto& vs = result.violations;

    EXPECT_TRUE(has(vs, "src/serve/rogue_mutex.cpp", "sync-types"));
    EXPECT_TRUE(has(vs, "src/nn/rogue_simd.cpp", "avx2-isolation"));
    EXPECT_TRUE(has(vs, "src/core/sampler.cpp", "determinism"));
    EXPECT_TRUE(has(vs, "src/mcn/rogue_stderr.cpp", "raw-stderr"));
    EXPECT_TRUE(has(vs, "CMakeLists.txt", "avx2-flags"));

    // The seeded counts, exactly: a drift here means a rule got looser or
    // noisier without the fixtures being updated alongside it.
    EXPECT_EQ(count_rule(vs, "sync-types"), 5u);       // header ×2 + mutex + lock_guard/mutex pair
    EXPECT_EQ(count_rule(vs, "avx2-isolation"), 2u);   // immintrin + _avx2 header
    EXPECT_EQ(count_rule(vs, "determinism"), 6u);      // srand,time,std::time,rand + 2 iterations
    EXPECT_EQ(count_rule(vs, "raw-stderr"), 2u);       // fprintf + cerr
    EXPECT_EQ(count_rule(vs, "avx2-flags"), 3u);       // tco + misnamed set + mixed ssfp

    // The suppressed twin must be absent entirely.
    for (const Violation& v : vs) {
        EXPECT_NE(v.file, "src/gan/suppressed_ok.cpp") << cpt::sa::format(v);
    }
}

// ---- the real tree ---------------------------------------------------------

TEST(RealTree, SrcAndRootCMakeLintClean) {
    std::string error;
    const LintResult result =
        cpt::sa::lint_paths(CPT_REPO_ROOT, {"src", "CMakeLists.txt"}, &error);
    ASSERT_TRUE(error.empty()) << error;
    EXPECT_GT(result.files_scanned, 50u);
    for (const Violation& v : result.violations) {
        ADD_FAILURE() << cpt::sa::format(v);
    }
}

}  // namespace
