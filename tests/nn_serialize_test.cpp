// Error-path coverage for the binary checkpoint format (nn/serialize.hpp):
// every way a checkpoint can fail to match the model must be a loud
// std::runtime_error naming the problem, never a silent partial load — the
// ModelHub release/consume flow (and now cpt-serve) depends on it.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "nn/serialize.hpp"
#include "util/rng.hpp"

namespace cpt::nn {
namespace {

std::vector<NamedParam> two_params(util::Rng& rng) {
    std::vector<NamedParam> params;
    params.push_back({"layer.weight", make_param(Tensor::randn(rng, {4, 3}, 1.0f))});
    params.push_back({"layer.bias", make_param(Tensor::zeros({4}))});
    return params;
}

// Runs `f` and asserts it throws std::runtime_error whose message contains
// `needle`.
template <typename F>
void expect_error_containing(F&& f, const std::string& needle) {
    try {
        f();
        FAIL() << "expected std::runtime_error containing '" << needle << "'";
    } catch (const std::runtime_error& e) {
        EXPECT_NE(std::string(e.what()).find(needle), std::string::npos) << e.what();
    }
}

struct SerializeFixture : ::testing::Test {
    void SetUp() override {
        path = (std::filesystem::temp_directory_path() / "cpt_serialize_test.ckpt").string();
        std::filesystem::remove(path);
    }
    void TearDown() override { std::filesystem::remove(path); }

    std::vector<char> slurp() const {
        std::ifstream in(path, std::ios::binary);
        return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
    }
    void dump(const std::vector<char>& bytes) const {
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    }

    std::string path;
};

TEST_F(SerializeFixture, RoundTripRestoresEveryValue) {
    util::Rng rng(11);
    const auto src = two_params(rng);
    save_parameters(path, src);
    util::Rng rng2(99);
    const auto dst = two_params(rng2);
    load_parameters(path, dst);
    for (std::size_t p = 0; p < src.size(); ++p) {
        const auto a = src[p].param->value.data();
        const auto b = dst[p].param->value.data();
        ASSERT_EQ(a.size(), b.size());
        for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
}

TEST_F(SerializeFixture, TruncatedHeaderThrows) {
    util::Rng rng(12);
    save_parameters(path, two_params(rng));
    auto bytes = slurp();
    bytes.resize(6);  // magic + 2 bytes of the version field
    dump(bytes);
    expect_error_containing([&] { load_parameters(path, two_params(rng)); }, "truncated");
}

TEST_F(SerializeFixture, TruncatedTensorDataThrows) {
    util::Rng rng(13);
    save_parameters(path, two_params(rng));
    auto bytes = slurp();
    bytes.resize(bytes.size() - 7);  // cut into the last tensor's floats
    dump(bytes);
    expect_error_containing([&] { load_parameters(path, two_params(rng)); }, "truncated");
}

TEST_F(SerializeFixture, BadMagicThrows) {
    util::Rng rng(14);
    save_parameters(path, two_params(rng));
    auto bytes = slurp();
    bytes[0] = 'X';
    dump(bytes);
    expect_error_containing([&] { load_parameters(path, two_params(rng)); }, "bad magic");
}

TEST_F(SerializeFixture, NameMismatchNamesTheUnknownParameter) {
    util::Rng rng(15);
    save_parameters(path, two_params(rng));
    std::vector<NamedParam> renamed;
    renamed.push_back({"other.weight", make_param(Tensor::zeros({4, 3}))});
    renamed.push_back({"other.bias", make_param(Tensor::zeros({4}))});
    expect_error_containing([&] { load_parameters(path, renamed); },
                            "unknown parameter 'layer.weight'");
}

TEST_F(SerializeFixture, ShapeMismatchNamesParameterAndShapes) {
    util::Rng rng(16);
    save_parameters(path, two_params(rng));
    std::vector<NamedParam> reshaped;
    reshaped.push_back({"layer.weight", make_param(Tensor::zeros({3, 4}))});  // transposed
    reshaped.push_back({"layer.bias", make_param(Tensor::zeros({4}))});
    expect_error_containing([&] { load_parameters(path, reshaped); },
                            "shape mismatch for 'layer.weight'");
}

TEST_F(SerializeFixture, MissingParameterIsCountedNotSilentlySkipped) {
    util::Rng rng(17);
    std::vector<NamedParam> one;
    one.push_back({"layer.weight", make_param(Tensor::randn(rng, {4, 3}, 1.0f))});
    save_parameters(path, one);
    expect_error_containing([&] { load_parameters(path, two_params(rng)); }, "covers 1 of 2");
}

TEST_F(SerializeFixture, MissingFileThrows) {
    util::Rng rng(18);
    expect_error_containing(
        [&] { load_parameters("/nonexistent/cpt_nope.ckpt", two_params(rng)); }, "cannot open");
}

}  // namespace
}  // namespace cpt::nn
