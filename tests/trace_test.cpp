// Tests for the trace data model, CSV round trip, the synthetic world
// generator (statefulness, breakdown calibration, diurnal drift), and n-gram
// memorization matching.
#include <gtest/gtest.h>

#include <sstream>

#include "cellular/state_machine.hpp"
#include "trace/io.hpp"
#include "trace/ngram.hpp"
#include "trace/stream.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

namespace cpt::trace {
namespace {

namespace lte = cellular::lte;

Stream make_stream(std::initializer_list<std::pair<double, cellular::EventId>> list) {
    Stream s;
    s.ue_id = "ue-test";
    for (auto& [t, e] : list) s.events.push_back({t, e});
    return s;
}

TEST(StreamTest, InterarrivalsStartAtZero) {
    const Stream s =
        make_stream({{0.0, lte::kSrvReq}, {4.0, lte::kS1ConnRel}, {10.0, lte::kSrvReq}});
    const auto ia = s.interarrivals();
    ASSERT_EQ(ia.size(), 3u);
    EXPECT_DOUBLE_EQ(ia[0], 0.0);
    EXPECT_DOUBLE_EQ(ia[1], 4.0);
    EXPECT_DOUBLE_EQ(ia[2], 6.0);
}

TEST(DatasetTest, BreakdownAndFlowLengths) {
    Dataset ds;
    ds.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}}));
    ds.streams.push_back(make_stream(
        {{0.0, lte::kSrvReq}, {1.0, lte::kHo}, {2.0, lte::kTau}, {3.0, lte::kS1ConnRel}}));
    EXPECT_EQ(ds.total_events(), 6u);
    const auto p = ds.event_type_breakdown();
    EXPECT_NEAR(p[lte::kSrvReq], 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(p[lte::kS1ConnRel], 2.0 / 6.0, 1e-12);
    EXPECT_NEAR(p[lte::kHo], 1.0 / 6.0, 1e-12);
    const auto lens = ds.flow_lengths();
    EXPECT_EQ(lens, (std::vector<double>{2.0, 4.0}));
    const auto srv_lens = ds.flow_lengths(lte::kSrvReq);
    EXPECT_EQ(srv_lens, (std::vector<double>{1.0, 1.0}));
}

TEST(DatasetTest, InitialEventDistribution) {
    Dataset ds;
    ds.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}}));
    ds.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}}));
    ds.streams.push_back(make_stream({{0.0, lte::kAtch}, {1.0, lte::kS1ConnRel}}));
    const auto d = ds.initial_event_distribution();
    EXPECT_NEAR(d[lte::kSrvReq], 2.0 / 3.0, 1e-12);
    EXPECT_NEAR(d[lte::kAtch], 1.0 / 3.0, 1e-12);
}

TEST(DatasetTest, TruncatedDropsOutliers) {
    Dataset ds;
    ds.streams.push_back(make_stream({{0.0, lte::kSrvReq}}));  // too short
    ds.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}}));
    Stream long_stream;
    for (int i = 0; i < 600; ++i) {
        long_stream.events.push_back(
            {static_cast<double>(i), i % 2 == 0 ? lte::kSrvReq : lte::kS1ConnRel});
    }
    ds.streams.push_back(long_stream);
    const auto t = ds.truncated(500);
    ASSERT_EQ(t.streams.size(), 1u);
    EXPECT_EQ(t.streams[0].length(), 2u);
}

TEST(IoTest, CsvRoundTrip) {
    SyntheticWorldConfig cfg;
    cfg.population = {5, 3, 2};
    cfg.seed = 99;
    const Dataset ds = SyntheticWorldGenerator(cfg).generate();
    ASSERT_FALSE(ds.streams.empty());
    std::stringstream buf;
    write_csv(buf, ds);
    const Dataset back = read_csv(buf);
    ASSERT_EQ(back.streams.size(), ds.streams.size());
    for (std::size_t i = 0; i < ds.streams.size(); ++i) {
        EXPECT_EQ(back.streams[i].ue_id, ds.streams[i].ue_id);
        EXPECT_EQ(back.streams[i].device, ds.streams[i].device);
        EXPECT_EQ(back.streams[i].hour_of_day, ds.streams[i].hour_of_day);
        ASSERT_EQ(back.streams[i].events.size(), ds.streams[i].events.size());
        for (std::size_t j = 0; j < ds.streams[i].events.size(); ++j) {
            EXPECT_EQ(back.streams[i].events[j].type, ds.streams[i].events[j].type);
            EXPECT_NEAR(back.streams[i].events[j].timestamp, ds.streams[i].events[j].timestamp,
                        1e-6);
        }
    }
}

TEST(IoTest, FiveGCsvRoundTrip) {
    trace::SyntheticWorldConfig cfg;
    cfg.generation = cellular::Generation::kNr5G;
    cfg.population = {8, 3, 2};
    cfg.seed = 123;
    const Dataset ds = SyntheticWorldGenerator(cfg).generate();
    std::stringstream buf;
    write_csv(buf, ds);
    EXPECT_NE(buf.str().find("5g,"), std::string::npos);
    EXPECT_NE(buf.str().find("AN_REL"), std::string::npos);
    const Dataset back = read_csv(buf);
    EXPECT_EQ(back.generation, cellular::Generation::kNr5G);
    EXPECT_EQ(back.total_events(), ds.total_events());
}

TEST(DatasetTest, FilterHourSelectsSlice) {
    Dataset ds;
    Stream a = make_stream({{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}});
    a.hour_of_day = 3;
    Stream b = make_stream({{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}});
    b.hour_of_day = 7;
    ds.streams = {a, b, a};
    EXPECT_EQ(ds.filter_hour(3).streams.size(), 2u);
    EXPECT_EQ(ds.filter_hour(7).streams.size(), 1u);
    EXPECT_TRUE(ds.filter_hour(12).streams.empty());
}

// Asserts read_csv rejects `csv` with a message containing every expected
// substring — the satellite contract: each malformed branch names the 1-based
// line and the offending field.
void expect_csv_rejected(const std::string& csv,
                         const std::vector<std::string>& expected_substrings) {
    std::stringstream in(csv);
    try {
        read_csv(in);
        FAIL() << "input must be rejected:\n" << csv;
    } catch (const std::invalid_argument& e) {
        const std::string what = e.what();
        for (const auto& sub : expected_substrings) {
            EXPECT_NE(what.find(sub), std::string::npos)
                << "message '" << what << "' lacks '" << sub << "'";
        }
    }
}

constexpr const char* kCsvHeader = "generation,ue_id,device,hour,timestamp,event\n";

TEST(IoTest, RejectsMalformedInputNamingLineAndField) {
    expect_csv_rejected("", {"empty input"});
    expect_csv_rejected("nope\n", {"line 1", "unexpected header"});
    expect_csv_rejected(std::string(kCsvHeader) + "4g,u1,phone,0,0.0\n",
                        {"line 2", "expected 6 columns"});
    expect_csv_rejected(std::string(kCsvHeader) + "6g,u1,phone,0,0.0,SRV_REQ\n",
                        {"line 2", "generation", "6g"});
    expect_csv_rejected(std::string(kCsvHeader) + "4g,,phone,0,0.0,SRV_REQ\n",
                        {"line 2", "empty ue_id"});
    expect_csv_rejected(std::string(kCsvHeader) + "4g,u1,toaster,0,0.0,SRV_REQ\n",
                        {"line 2", "device", "toaster"});
    expect_csv_rejected(std::string(kCsvHeader) + "4g,u1,phone,noon,0.0,SRV_REQ\n",
                        {"line 2", "hour", "noon"});
    expect_csv_rejected(std::string(kCsvHeader) + "4g,u1,phone,0,sometime,SRV_REQ\n",
                        {"line 2", "timestamp", "sometime"});
    expect_csv_rejected(std::string(kCsvHeader) + "4g,u1,phone,0,0.0,BOGUS\n",
                        {"line 2", "unknown event", "BOGUS"});
    expect_csv_rejected(std::string(kCsvHeader) +
                            "4g,u1,phone,0,5.0,SRV_REQ\n4g,u1,phone,0,1.0,S1_CONN_REL\n",
                        {"line 3", "decreasing timestamp", "u1"});
    expect_csv_rejected(std::string(kCsvHeader) +
                            "4g,u1,phone,0,0.0,SRV_REQ\n5g,u2,phone,0,0.0,SRV_REQ\n",
                        {"line 3", "mixed generations"});
    // The error on a later row reports that row's line, not the first.
    expect_csv_rejected(std::string(kCsvHeader) +
                            "4g,u1,phone,0,0.0,SRV_REQ\n4g,u1,phone,0,1.0,SRV_REQ\n"
                            "4g,u2,phone,0,0.0,BOGUS\n",
                        {"line 4", "unknown event"});
}

// ---- Synthetic world ----------------------------------------------------------

class SyntheticWorldTest : public ::testing::Test {
protected:
    static Dataset generate(std::size_t phones, std::size_t cars, std::size_t tablets,
                            int hour = 10, std::uint64_t seed = 7) {
        SyntheticWorldConfig cfg;
        cfg.population = {phones, cars, tablets};
        cfg.hour_of_day = hour;
        cfg.seed = seed;
        return SyntheticWorldGenerator(cfg).generate();
    }
};

TEST_F(SyntheticWorldTest, ProducesZeroSemanticViolations) {
    const Dataset ds = generate(150, 60, 30);
    const auto& m = cellular::StateMachine::for_generation(cellular::Generation::kLte4G);
    cellular::StateMachineReplayer rep(m);
    for (const auto& s : ds.streams) {
        const auto r = rep.replay(s.events);
        EXPECT_EQ(r.violations, 0u) << "stream " << s.ue_id;
    }
}

TEST_F(SyntheticWorldTest, TimestampsMonotoneAndWithinWindow) {
    const Dataset ds = generate(100, 40, 20);
    for (const auto& s : ds.streams) {
        double prev = -1.0;
        for (const auto& e : s.events) {
            EXPECT_GE(e.timestamp, prev);
            prev = e.timestamp;
        }
        EXPECT_LE(s.events.back().timestamp, 3600.0);
        EXPECT_DOUBLE_EQ(s.events.front().timestamp, 0.0);
    }
}

TEST_F(SyntheticWorldTest, PhoneBreakdownNearPaperTargets) {
    const Dataset ds = generate(800, 0, 0);
    const auto p = ds.event_type_breakdown();
    // Paper Table 7 (real, phones): SRV_REQ 47.06%, S1_CONN_REL 48.25%,
    // HO 2.88%, TAU 1.59%, ATCH 0.12%, DTCH 0.11%. Match loosely — the shape
    // is what matters.
    EXPECT_NEAR(p[lte::kSrvReq], 0.47, 0.05);
    EXPECT_NEAR(p[lte::kS1ConnRel], 0.48, 0.05);
    EXPECT_LT(p[lte::kHo], 0.08);
    EXPECT_GT(p[lte::kHo], 0.005);
    EXPECT_LT(p[lte::kAtch], 0.02);
}

TEST_F(SyntheticWorldTest, CarsHaveMoreHandoversThanPhones) {
    const Dataset phones = generate(500, 0, 0);
    const Dataset cars = generate(0, 500, 0);
    const auto pp = phones.event_type_breakdown();
    const auto pc = cars.event_type_breakdown();
    EXPECT_GT(pc[lte::kHo], pp[lte::kHo] * 1.5);
    EXPECT_GT(pc[lte::kTau], pp[lte::kTau]);
}

TEST_F(SyntheticWorldTest, FlowLengthsAreDiverse) {
    const Dataset ds = generate(500, 0, 0);
    const auto lens = ds.flow_lengths();
    const auto s = util::summarize(lens);
    EXPECT_GT(s.max, 4.0 * s.mean) << "expect a heavy tail of long flows";
    EXPECT_GT(s.stddev, 0.3 * s.mean);
}

TEST_F(SyntheticWorldTest, PhoneConnectedSojournInPaperRange) {
    const Dataset ds = generate(400, 0, 0);
    const auto& m = cellular::StateMachine::for_generation(cellular::Generation::kLte4G);
    cellular::StateMachineReplayer rep(m);
    std::vector<double> means;
    for (const auto& s : ds.streams) {
        const auto r = rep.replay(s.events);
        if (r.sojourn_connected.empty()) continue;
        means.push_back(util::summarize(r.sojourn_connected).mean);
    }
    ASSERT_GT(means.size(), 100u);
    // Paper Fig. 2: the majority of per-UE mean CONNECTED sojourns in 5-50 s.
    std::size_t in_range = 0;
    for (double v : means) {
        if (v >= 5.0 && v <= 50.0) ++in_range;
    }
    EXPECT_GT(static_cast<double>(in_range) / means.size(), 0.5);
}

TEST_F(SyntheticWorldTest, DiurnalDriftChangesVolume) {
    // Peak-hour traffic should be denser than 4am traffic for phones.
    const Dataset busy = generate(300, 0, 0, /*hour=*/14, /*seed=*/5);
    const Dataset quiet = generate(300, 0, 0, /*hour=*/2, /*seed=*/5);
    const double busy_mean = util::summarize(busy.flow_lengths()).mean;
    const double quiet_mean = util::summarize(quiet.flow_lengths()).mean;
    EXPECT_GT(busy_mean, quiet_mean * 1.1);
}

TEST_F(SyntheticWorldTest, GenerateHoursProducesDistinctSlices) {
    SyntheticWorldConfig cfg;
    cfg.population = {50, 0, 0};
    cfg.hour_of_day = 22;
    const auto slices = SyntheticWorldGenerator(cfg).generate_hours(4);
    ASSERT_EQ(slices.size(), 4u);
    EXPECT_EQ(slices[0].streams.front().hour_of_day, 22);
    EXPECT_EQ(slices[2].streams.front().hour_of_day, 0);  // wraps midnight
    // Different slices should not be byte-identical.
    EXPECT_NE(slices[0].streams.front().events.size(), 0u);
}

TEST_F(SyntheticWorldTest, DeterministicForSameSeed) {
    const Dataset a = generate(30, 10, 5, 10, 1234);
    const Dataset b = generate(30, 10, 5, 10, 1234);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        ASSERT_EQ(a.streams[i].events.size(), b.streams[i].events.size());
        for (std::size_t j = 0; j < a.streams[i].events.size(); ++j) {
            EXPECT_EQ(a.streams[i].events[j].timestamp, b.streams[i].events[j].timestamp);
        }
    }
}

TEST_F(SyntheticWorldTest, FiveGWorldIsValidAndTauFree) {
    // §7 future work: the same generator covers 5G by swapping the domain
    // layer. Streams must satisfy the Fig. 1b machine and contain no TAU.
    trace::SyntheticWorldConfig cfg;
    cfg.generation = cellular::Generation::kNr5G;
    cfg.population = {120, 40, 20};
    cfg.seed = 77;
    const auto ds = trace::SyntheticWorldGenerator(cfg).generate();
    ASSERT_GT(ds.streams.size(), 100u);
    EXPECT_EQ(ds.generation, cellular::Generation::kNr5G);
    const auto& m = cellular::StateMachine::for_generation(cellular::Generation::kNr5G);
    cellular::StateMachineReplayer rep(m);
    for (const auto& s : ds.streams) {
        EXPECT_EQ(rep.replay(s.events).violations, 0u);
        for (const auto& e : s.events) EXPECT_LT(e.type, cellular::nr::kNumEvents);
    }
    // Breakdown mirrors 4G structure: SRV_REQ and AN_REL dominate.
    const auto p = ds.event_type_breakdown();
    EXPECT_GT(p[cellular::nr::kSrvReq], 0.35);
    EXPECT_GT(p[cellular::nr::kAnRel], 0.35);
}

TEST_F(SyntheticWorldTest, FiveGCarsStillHandoverMore) {
    trace::SyntheticWorldConfig cfg;
    cfg.generation = cellular::Generation::kNr5G;
    cfg.seed = 78;
    cfg.population = {300, 0, 0};
    const auto phones = trace::SyntheticWorldGenerator(cfg).generate();
    cfg.population = {0, 300, 0};
    const auto cars = trace::SyntheticWorldGenerator(cfg).generate();
    EXPECT_GT(cars.event_type_breakdown()[cellular::nr::kHo],
              phones.event_type_breakdown()[cellular::nr::kHo] * 1.5);
}

TEST(DiurnalFactorTest, PeaksAtConfiguredHour) {
    const auto& p = device_profile(DeviceType::kPhone);
    const double at_peak = diurnal_factor(p, p.diurnal_peak_hour);
    const double off_peak = diurnal_factor(p, p.diurnal_peak_hour + 12.0);
    EXPECT_GT(at_peak, off_peak);
    EXPECT_NEAR(at_peak, 1.0 + p.diurnal_amplitude, 1e-9);
}

// ---- N-grams --------------------------------------------------------------------

TEST(NgramTest, InterarrivalToleranceSemantics) {
    EXPECT_TRUE(interarrival_matches(10.0, 10.5, 0.1));
    EXPECT_FALSE(interarrival_matches(10.0, 12.0, 0.1));
    EXPECT_TRUE(interarrival_matches(0.0, 0.0, 0.1));
    EXPECT_FALSE(interarrival_matches(0.0, 1.0, 0.1));
    EXPECT_FALSE(interarrival_matches(1.0, 0.0, 0.1));
}

TEST(NgramTest, ExtractCountsWindows) {
    Dataset ds;
    ds.streams.push_back(make_stream(
        {{0.0, lte::kSrvReq}, {1.0, lte::kS1ConnRel}, {2.0, lte::kSrvReq}, {3.0, lte::kS1ConnRel}}));
    EXPECT_EQ(extract_ngrams(ds, 2).size(), 3u);
    EXPECT_EQ(extract_ngrams(ds, 4).size(), 1u);
    EXPECT_EQ(extract_ngrams(ds, 5).size(), 0u);
}

TEST(NgramTest, ExactCopyIsDetected) {
    Dataset train;
    train.streams.push_back(make_stream(
        {{0.0, lte::kSrvReq}, {7.0, lte::kS1ConnRel}, {19.0, lte::kSrvReq}}));
    const NgramIndex index(train, 2);
    // The generated dataset IS the training dataset.
    EXPECT_DOUBLE_EQ(repeated_ngram_fraction(train, index, 0.1), 1.0);
}

TEST(NgramTest, EventMismatchIsNotAMatch) {
    Dataset train;
    train.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {7.0, lte::kS1ConnRel}}));
    Dataset gen;
    gen.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {7.0, lte::kHo}}));
    const NgramIndex index(train, 2);
    EXPECT_DOUBLE_EQ(repeated_ngram_fraction(gen, index, 0.5), 0.0);
}

TEST(NgramTest, ToleranceWidensMatches) {
    Dataset train;
    train.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {10.0, lte::kS1ConnRel}}));
    Dataset gen;
    gen.streams.push_back(make_stream({{0.0, lte::kSrvReq}, {11.5, lte::kS1ConnRel}}));
    const NgramIndex index(train, 2);
    EXPECT_DOUBLE_EQ(repeated_ngram_fraction(gen, index, 0.10), 0.0);  // 15% off
    EXPECT_DOUBLE_EQ(repeated_ngram_fraction(gen, index, 0.20), 1.0);
}

}  // namespace
}  // namespace cpt::trace
