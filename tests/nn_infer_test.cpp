// Tests pinning the KV-cached TransformerDecoder to the autograd forward:
// step-by-step decoding must reproduce Transformer::forward()'s last-position
// outputs, including after compaction.
#include <gtest/gtest.h>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "nn/infer.hpp"

namespace cpt::nn {
namespace {

TransformerConfig small_config() {
    TransformerConfig cfg;
    cfg.d_token = 7;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 2;
    cfg.max_seq_len = 12;
    return cfg;
}

TEST(TransformerDecoderTest, MatchesFullForwardPerStep) {
    util::Rng rng(1);
    const Transformer model(small_config(), rng);
    const std::size_t b = 3;
    const std::size_t steps = 9;
    const Tensor sequence = Tensor::randn(rng, {b, steps, 7}, 0.6f);

    TransformerDecoder decoder(model, b);
    for (std::size_t t = 0; t < steps; ++t) {
        // Feed token t of each row.
        Tensor x({b, 7});
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < 7; ++j) x[r * 7 + j] = sequence[(r * steps + t) * 7 + j];
        }
        const Tensor h = decoder.step(x);
        EXPECT_EQ(decoder.length(), t + 1);

        // Reference: full forward over the prefix [0, t].
        Tensor prefix({b, t + 1, 7});
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t k = 0; k <= t; ++k) {
                for (std::size_t j = 0; j < 7; ++j) {
                    prefix[(r * (t + 1) + k) * 7 + j] = sequence[(r * steps + k) * 7 + j];
                }
            }
        }
        const Var ref = model.forward(make_var(prefix));
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < 16; ++j) {
                EXPECT_NEAR(h[r * 16 + j], ref->value[(r * (t + 1) + t) * 16 + j], 2e-4f)
                    << "t=" << t << " row=" << r << " j=" << j;
            }
        }
    }
}

TEST(TransformerDecoderTest, CompactionPreservesKeptRows) {
    util::Rng rng(2);
    const Transformer model(small_config(), rng);
    const std::size_t b = 4;
    const Tensor seq = Tensor::randn(rng, {b, 6, 7}, 0.6f);

    TransformerDecoder full(model, b);
    TransformerDecoder compacted(model, b);
    auto token_at = [&](std::size_t t, const std::vector<std::size_t>& rows) {
        Tensor x({rows.size(), 7});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            for (std::size_t j = 0; j < 7; ++j) x[i * 7 + j] = seq[(rows[i] * 6 + t) * 7 + j];
        }
        return x;
    };
    const std::vector<std::size_t> all{0, 1, 2, 3};
    const std::vector<std::size_t> kept{1, 3};

    // Three steps with all rows, then drop rows 0 and 2 and continue.
    for (std::size_t t = 0; t < 3; ++t) {
        full.step(token_at(t, all));
        compacted.step(token_at(t, all));
    }
    compacted.compact(kept);
    EXPECT_EQ(compacted.batch(), 2u);
    for (std::size_t t = 3; t < 6; ++t) {
        const Tensor hf = full.step(token_at(t, all));
        const Tensor hc = compacted.step(token_at(t, kept));
        for (std::size_t i = 0; i < kept.size(); ++i) {
            for (std::size_t j = 0; j < 16; ++j) {
                EXPECT_NEAR(hc[i * 16 + j], hf[kept[i] * 16 + j], 1e-5f);
            }
        }
    }
}

TEST(TransformerDecoderTest, RejectsOverflowAndBadShapes) {
    util::Rng rng(3);
    const Transformer model(small_config(), rng);
    TransformerDecoder decoder(model, 2);
    EXPECT_THROW(decoder.step(Tensor::zeros({2, 5})), std::invalid_argument);
    EXPECT_THROW(decoder.step(Tensor::zeros({3, 7})), std::invalid_argument);
    for (int t = 0; t < 12; ++t) decoder.step(Tensor::zeros({2, 7}));
    EXPECT_THROW(decoder.step(Tensor::zeros({2, 7})), std::logic_error);
    EXPECT_THROW(decoder.compact({1, 0}), std::invalid_argument);  // not ascending
    EXPECT_THROW(decoder.compact({5}), std::invalid_argument);     // out of range
}

TEST(CptGptDecodeTest, DecodeStepMatchesForwardHeads) {
    util::Rng world_rng(4);
    const core::Tokenizer tok(cellular::Generation::kLte4G, 0.0, 8.0);
    core::CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 10;
    cfg.head_hidden = 16;
    util::Rng rng(5);
    const core::CptGpt model(tok, cfg, rng);

    const std::size_t b = 2;
    const std::size_t steps = 6;
    const Tensor sequence = Tensor::randn(world_rng, {b, steps, tok.d_token()}, 0.4f);
    auto decoder = model.make_decoder(b);
    for (std::size_t t = 0; t < steps; ++t) {
        Tensor x({b, tok.d_token()});
        const std::size_t dt = tok.d_token();
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < dt; ++j) x[r * dt + j] = sequence[(r * steps + t) * dt + j];
        }
        const auto inc = model.decode_step(decoder, x);

        Tensor prefix({b, t + 1, dt});
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t k = 0; k <= t; ++k) {
                for (std::size_t j = 0; j < dt; ++j) {
                    prefix[(r * (t + 1) + k) * dt + j] = sequence[(r * steps + k) * dt + j];
                }
            }
        }
        const auto ref = model.forward(make_var(prefix));
        for (std::size_t r = 0; r < b; ++r) {
            const std::size_t last_row = r * (t + 1) + t;
            for (std::size_t e = 0; e < 6; ++e) {
                EXPECT_NEAR(inc.event_logits[r * 6 + e], ref.event_logits->value[last_row * 6 + e],
                            2e-4f);
            }
            EXPECT_NEAR(inc.ia_mu[r], ref.ia_mu->value[last_row], 2e-4f);
            EXPECT_NEAR(inc.ia_logvar[r], ref.ia_logvar->value[last_row], 2e-4f);
            EXPECT_NEAR(inc.stop_logits[r * 2], ref.stop_logits->value[last_row * 2], 2e-4f);
        }
    }
}

}  // namespace
}  // namespace cpt::nn
