// Tests pinning the KV-cached TransformerDecoder to the autograd forward:
// step-by-step decoding must reproduce Transformer::forward()'s last-position
// outputs, including after compaction — plus the admit/evict churn property:
// under any randomized schedule of admissions and compactions, every live
// row's output is byte-identical to a fresh decoder fed the same stream.
#include <gtest/gtest.h>

#include <cstring>
#include <random>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "nn/infer.hpp"

namespace cpt::nn {
namespace {

TransformerConfig small_config() {
    TransformerConfig cfg;
    cfg.d_token = 7;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 2;
    cfg.max_seq_len = 12;
    return cfg;
}

TEST(TransformerDecoderTest, MatchesFullForwardPerStep) {
    util::Rng rng(1);
    const Transformer model(small_config(), rng);
    const std::size_t b = 3;
    const std::size_t steps = 9;
    const Tensor sequence = Tensor::randn(rng, {b, steps, 7}, 0.6f);

    TransformerDecoder decoder(model, b);
    for (std::size_t t = 0; t < steps; ++t) {
        // Feed token t of each row.
        Tensor x({b, 7});
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < 7; ++j) x[r * 7 + j] = sequence[(r * steps + t) * 7 + j];
        }
        const Tensor h = decoder.step(x);
        EXPECT_EQ(decoder.length(), t + 1);

        // Reference: full forward over the prefix [0, t].
        Tensor prefix({b, t + 1, 7});
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t k = 0; k <= t; ++k) {
                for (std::size_t j = 0; j < 7; ++j) {
                    prefix[(r * (t + 1) + k) * 7 + j] = sequence[(r * steps + k) * 7 + j];
                }
            }
        }
        const Var ref = model.forward(make_var(prefix));
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < 16; ++j) {
                EXPECT_NEAR(h[r * 16 + j], ref->value[(r * (t + 1) + t) * 16 + j], 2e-4f)
                    << "t=" << t << " row=" << r << " j=" << j;
            }
        }
    }
}

TEST(TransformerDecoderTest, CompactionPreservesKeptRows) {
    util::Rng rng(2);
    const Transformer model(small_config(), rng);
    const std::size_t b = 4;
    const Tensor seq = Tensor::randn(rng, {b, 6, 7}, 0.6f);

    TransformerDecoder full(model, b);
    TransformerDecoder compacted(model, b);
    auto token_at = [&](std::size_t t, const std::vector<std::size_t>& rows) {
        Tensor x({rows.size(), 7});
        for (std::size_t i = 0; i < rows.size(); ++i) {
            for (std::size_t j = 0; j < 7; ++j) x[i * 7 + j] = seq[(rows[i] * 6 + t) * 7 + j];
        }
        return x;
    };
    const std::vector<std::size_t> all{0, 1, 2, 3};
    const std::vector<std::size_t> kept{1, 3};

    // Three steps with all rows, then drop rows 0 and 2 and continue.
    for (std::size_t t = 0; t < 3; ++t) {
        full.step(token_at(t, all));
        compacted.step(token_at(t, all));
    }
    compacted.compact(kept);
    EXPECT_EQ(compacted.batch(), 2u);
    for (std::size_t t = 3; t < 6; ++t) {
        const Tensor hf = full.step(token_at(t, all));
        const Tensor hc = compacted.step(token_at(t, kept));
        for (std::size_t i = 0; i < kept.size(); ++i) {
            for (std::size_t j = 0; j < 16; ++j) {
                EXPECT_NEAR(hc[i * 16 + j], hf[kept[i] * 16 + j], 1e-5f);
            }
        }
    }
}

TEST(TransformerDecoderTest, RejectsOverflowAndBadShapes) {
    util::Rng rng(3);
    const Transformer model(small_config(), rng);
    TransformerDecoder decoder(model, 2);
    EXPECT_THROW(decoder.step(Tensor::zeros({2, 5})), std::invalid_argument);
    EXPECT_THROW(decoder.step(Tensor::zeros({3, 7})), std::invalid_argument);
    for (int t = 0; t < 12; ++t) decoder.step(Tensor::zeros({2, 7}));
    EXPECT_THROW(decoder.step(Tensor::zeros({2, 7})), std::logic_error);
    EXPECT_THROW(decoder.compact({1, 0}), std::invalid_argument);  // not ascending
    EXPECT_THROW(decoder.compact({5}), std::invalid_argument);     // out of range
}

// Property test for the logical->physical row map + free list behind
// compact()/admit(): under a randomized admit/evict churn schedule, every
// surviving row's per-step output must be BYTE-identical to a fresh batch=1
// decoder fed that row's token history from position 0 (the invariance that
// lets a serving scheduler refill freed slots mid-decode). Exercised in both
// KV modes — fp32 and fp16 storage — because the fp16 path indexes the same
// phys_[r] map through its own half-width buffers.
void run_churn_property(const DecodeOptions& opts, unsigned schedule_seed) {
    util::Rng rng(6);
    TransformerConfig cfg = small_config();
    cfg.max_seq_len = 20;
    const Transformer model(cfg, rng);
    const std::size_t cap = 4;
    const std::size_t dt = cfg.d_token;
    const std::size_t dm = cfg.d_model;

    struct StreamLog {
        std::vector<float> tokens;   // concatenated [d_token] inputs
        std::vector<float> outputs;  // concatenated [d_model] hidden states
    };

    std::mt19937 gen(schedule_seed);
    std::uniform_real_distribution<float> tok_dist(-0.8f, 0.8f);
    TransformerDecoder churned(model, cap, opts);
    churned.reset();
    std::vector<StreamLog> live;       // index == decoder row
    std::vector<StreamLog> survivors;  // rows evicted or drained, kept for checking

    const std::size_t steps = cfg.max_seq_len;
    for (std::size_t t = 0; t < steps; ++t) {
        // Randomly evict a subset (keeping >= 1 row when any are live).
        if (live.size() > 1) {
            std::vector<std::size_t> keep;
            for (std::size_t r = 0; r < live.size(); ++r) {
                if (keep.size() + (live.size() - r) > 1 && gen() % 4 == 0) {
                    survivors.push_back(std::move(live[r]));  // evicted mid-decode
                } else {
                    keep.push_back(r);
                }
            }
            if (keep.size() != live.size()) {
                churned.compact(keep);
                std::vector<StreamLog> kept;
                kept.reserve(keep.size());
                for (std::size_t r : keep) kept.push_back(std::move(live[r]));
                live = std::move(kept);
            }
        }
        // Randomly admit into free slots (always admit when empty). A row
        // admitted at position s can still decode max_seq_len - s tokens.
        const std::size_t remaining = cfg.max_seq_len - churned.length();
        if (remaining >= 2) {
            std::size_t want = 0;
            for (std::size_t f = live.size(); f < cap; ++f) {
                if (live.empty() || gen() % 3 == 0) ++want;
            }
            if (want > 0) {
                churned.admit(want);
                for (std::size_t i = 0; i < want; ++i) live.emplace_back();
            }
        }
        if (live.empty()) break;

        Tensor x({live.size(), dt});
        for (std::size_t r = 0; r < live.size(); ++r) {
            for (std::size_t j = 0; j < dt; ++j) {
                const float v = tok_dist(gen);
                x[r * dt + j] = v;
                live[r].tokens.push_back(v);
            }
        }
        const Tensor& h = churned.step(x);
        for (std::size_t r = 0; r < live.size(); ++r) {
            const auto row = h.data().subspan(r * dm, dm);
            live[r].outputs.insert(live[r].outputs.end(), row.begin(), row.end());
        }
    }
    for (auto& s : live) survivors.push_back(std::move(s));

    // Every stream the churned decoder produced must match a fresh batch=1
    // decode of the same tokens, bit for bit.
    ASSERT_GT(survivors.size(), cap);  // the schedule actually churned
    for (std::size_t s = 0; s < survivors.size(); ++s) {
        const auto& log = survivors[s];
        const std::size_t len = log.tokens.size() / dt;
        ASSERT_EQ(log.outputs.size(), len * dm);
        if (len == 0) continue;
        TransformerDecoder fresh(model, 1, opts);
        for (std::size_t t = 0; t < len; ++t) {
            Tensor x({1, dt});
            std::copy_n(log.tokens.data() + t * dt, dt, x.data().data());
            const Tensor& h = fresh.step(x);
            ASSERT_EQ(std::memcmp(h.data().data(), log.outputs.data() + t * dm,
                                  dm * sizeof(float)),
                      0)
                << "stream " << s << " step " << t << " of " << len;
        }
    }
}

TEST(TransformerDecoderTest, ChurnRowMapPropertyFp32Kv) {
    for (unsigned seed : {101u, 202u, 303u}) run_churn_property(DecodeOptions{}, seed);
}

TEST(TransformerDecoderTest, ChurnRowMapPropertyFp16Kv) {
    DecodeOptions opts;
    opts.kv_fp16 = true;
    for (unsigned seed : {404u, 505u, 606u}) run_churn_property(opts, seed);
}

TEST(CptGptDecodeTest, DecodeStepMatchesForwardHeads) {
    util::Rng world_rng(4);
    const core::Tokenizer tok(cellular::Generation::kLte4G, 0.0, 8.0);
    core::CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 10;
    cfg.head_hidden = 16;
    util::Rng rng(5);
    const core::CptGpt model(tok, cfg, rng);

    const std::size_t b = 2;
    const std::size_t steps = 6;
    const Tensor sequence = Tensor::randn(world_rng, {b, steps, tok.d_token()}, 0.4f);
    auto decoder = model.make_decoder(b);
    for (std::size_t t = 0; t < steps; ++t) {
        Tensor x({b, tok.d_token()});
        const std::size_t dt = tok.d_token();
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t j = 0; j < dt; ++j) x[r * dt + j] = sequence[(r * steps + t) * dt + j];
        }
        const auto inc = model.decode_step(decoder, x);

        Tensor prefix({b, t + 1, dt});
        for (std::size_t r = 0; r < b; ++r) {
            for (std::size_t k = 0; k <= t; ++k) {
                for (std::size_t j = 0; j < dt; ++j) {
                    prefix[(r * (t + 1) + k) * dt + j] = sequence[(r * steps + k) * dt + j];
                }
            }
        }
        const auto ref = model.forward(make_var(prefix));
        for (std::size_t r = 0; r < b; ++r) {
            const std::size_t last_row = r * (t + 1) + t;
            for (std::size_t e = 0; e < 6; ++e) {
                EXPECT_NEAR(inc.event_logits[r * 6 + e], ref.event_logits->value[last_row * 6 + e],
                            2e-4f);
            }
            EXPECT_NEAR(inc.ia_mu[r], ref.ia_mu->value[last_row], 2e-4f);
            EXPECT_NEAR(inc.ia_logvar[r], ref.ia_logvar->value[last_row], 2e-4f);
            EXPECT_NEAR(inc.stop_logits[r * 2], ref.stop_logits->value[last_row * 2], 2e-4f);
        }
    }
}

}  // namespace
}  // namespace cpt::nn
