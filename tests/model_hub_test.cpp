// Tests for the ModelHub release registry.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <iterator>

#include "core/model_hub.hpp"
#include "trace/synthetic.hpp"

namespace cpt::core {
namespace {

CptGptConfig tiny_config() {
    CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 32;
    cfg.head_hidden = 16;
    return cfg;
}

struct HubFixture : ::testing::Test {
    void SetUp() override {
        // Per-test directory: ctest runs the cases of this binary as separate
        // concurrent processes, so a shared directory would race.
        const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
        dir = (std::filesystem::temp_directory_path() /
               (std::string("cpt_hub_test_") + info->name()))
                  .string();
        std::filesystem::remove_all(dir);
    }
    void TearDown() override { std::filesystem::remove_all(dir); }
    std::string dir;
};

TEST_F(HubFixture, PublishLoadRoundTrip) {
    trace::SyntheticWorldConfig w;
    w.population = {40, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(1);
    const CptGpt model(tok, tiny_config(), rng);

    ModelHub hub(dir);
    EXPECT_FALSE(hub.has(trace::DeviceType::kPhone, 9));
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 9);
    EXPECT_TRUE(hub.has(trace::DeviceType::kPhone, 9));
    EXPECT_FALSE(hub.has(trace::DeviceType::kTablet, 9));

    const auto pkg = hub.load(trace::DeviceType::kPhone, 9, tiny_config());
    EXPECT_NEAR(pkg.tokenizer.max_log_interarrival(), tok.max_log_interarrival(), 1e-5);
    EXPECT_THROW(hub.load(trace::DeviceType::kPhone, 10, tiny_config()), std::out_of_range);
}

TEST_F(HubFixture, AbsentSliceErrorNamesSliceAndDirectory) {
    ModelHub hub(dir);
    try {
        hub.load(trace::DeviceType::kConnectedCar, 17, tiny_config());
        FAIL() << "expected std::out_of_range";
    } catch (const std::out_of_range& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("connected_car"), std::string::npos) << msg;
        EXPECT_NE(msg.find("17"), std::string::npos) << msg;
        EXPECT_NE(msg.find(dir), std::string::npos) << msg;
    }
}

TEST_F(HubFixture, PublishLoadManifestRoundTrip) {
    trace::SyntheticWorldConfig w;
    w.population = {30, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(7);
    const CptGpt model(tok, tiny_config(), rng);

    ModelHub hub(dir);
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 9);
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kTablet, 21);

    // The manifest on disk names both slices and their checkpoint files exist.
    std::ifstream manifest(dir + "/manifest.csv");
    ASSERT_TRUE(manifest.good());
    std::string text((std::istreambuf_iterator<char>(manifest)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("phone,9"), std::string::npos) << text;
    EXPECT_NE(text.find("tablet,21"), std::string::npos) << text;
    for (const auto& e : hub.entries()) {
        EXPECT_TRUE(std::filesystem::exists(dir + "/" + e.file)) << e.file;
    }

    // Loading each slice back returns the published package: same weights
    // (spot-checked through a forward-free proxy — the tokenizer scaling)
    // and the same initial-event distribution.
    for (const auto& [device, hour] :
         {std::pair{trace::DeviceType::kPhone, 9}, std::pair{trace::DeviceType::kTablet, 21}}) {
        const auto pkg = hub.load(device, hour, tiny_config());
        ASSERT_NE(pkg.model, nullptr);
        EXPECT_NEAR(pkg.tokenizer.max_log_interarrival(), tok.max_log_interarrival(), 1e-5);
        const auto& want = data.initial_event_distribution();
        ASSERT_EQ(pkg.initial_event_dist.size(), want.size());
        for (std::size_t i = 0; i < want.size(); ++i) {
            // The package stores the distribution as f32.
            EXPECT_NEAR(pkg.initial_event_dist[i], want[i], 1e-6);
        }
    }
}

TEST_F(HubFixture, ManifestSurvivesReopen) {
    trace::SyntheticWorldConfig w;
    w.population = {30, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(2);
    const CptGpt model(tok, tiny_config(), rng);
    {
        ModelHub hub(dir);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kTablet, 3);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kTablet, 3);
        EXPECT_EQ(hub.entries().size(), 1u);  // republish replaces
    }
    ModelHub reopened(dir);
    EXPECT_TRUE(reopened.has(trace::DeviceType::kTablet, 3));
    EXPECT_EQ(reopened.entries().size(), 1u);
}

TEST_F(HubFixture, NearestHourFallbackIsCyclic) {
    trace::SyntheticWorldConfig w;
    w.population = {30, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(3);
    const CptGpt model(tok, tiny_config(), rng);
    ModelHub hub(dir);
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 23);

    // Hour 1 is distance 2 from 23 across midnight: must resolve.
    const auto pkg = hub.load_nearest(trace::DeviceType::kPhone, 1, tiny_config());
    EXPECT_TRUE(pkg.has_value());
    // No releases for cars at all.
    EXPECT_FALSE(hub.load_nearest(trace::DeviceType::kConnectedCar, 1, tiny_config()).has_value());
}

}  // namespace
}  // namespace cpt::core
