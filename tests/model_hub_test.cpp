// Tests for the ModelHub release registry.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/model_hub.hpp"
#include "trace/synthetic.hpp"

namespace cpt::core {
namespace {

CptGptConfig tiny_config() {
    CptGptConfig cfg;
    cfg.d_model = 16;
    cfg.heads = 2;
    cfg.mlp_hidden = 32;
    cfg.blocks = 1;
    cfg.max_seq_len = 32;
    cfg.head_hidden = 16;
    return cfg;
}

struct HubFixture : ::testing::Test {
    void SetUp() override {
        dir = (std::filesystem::temp_directory_path() / "cpt_hub_test").string();
        std::filesystem::remove_all(dir);
    }
    void TearDown() override { std::filesystem::remove_all(dir); }
    std::string dir;
};

TEST_F(HubFixture, PublishLoadRoundTrip) {
    trace::SyntheticWorldConfig w;
    w.population = {40, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(1);
    const CptGpt model(tok, tiny_config(), rng);

    ModelHub hub(dir);
    EXPECT_FALSE(hub.has(trace::DeviceType::kPhone, 9));
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 9);
    EXPECT_TRUE(hub.has(trace::DeviceType::kPhone, 9));
    EXPECT_FALSE(hub.has(trace::DeviceType::kTablet, 9));

    const auto pkg = hub.load(trace::DeviceType::kPhone, 9, tiny_config());
    EXPECT_NEAR(pkg.tokenizer.max_log_interarrival(), tok.max_log_interarrival(), 1e-5);
    EXPECT_THROW(hub.load(trace::DeviceType::kPhone, 10, tiny_config()), std::out_of_range);
}

TEST_F(HubFixture, ManifestSurvivesReopen) {
    trace::SyntheticWorldConfig w;
    w.population = {30, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(2);
    const CptGpt model(tok, tiny_config(), rng);
    {
        ModelHub hub(dir);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kTablet, 3);
        hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kTablet, 3);
        EXPECT_EQ(hub.entries().size(), 1u);  // republish replaces
    }
    ModelHub reopened(dir);
    EXPECT_TRUE(reopened.has(trace::DeviceType::kTablet, 3));
    EXPECT_EQ(reopened.entries().size(), 1u);
}

TEST_F(HubFixture, NearestHourFallbackIsCyclic) {
    trace::SyntheticWorldConfig w;
    w.population = {30, 0, 0};
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(3);
    const CptGpt model(tok, tiny_config(), rng);
    ModelHub hub(dir);
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, 23);

    // Hour 1 is distance 2 from 23 across midnight: must resolve.
    const auto pkg = hub.load_nearest(trace::DeviceType::kPhone, 1, tiny_config());
    EXPECT_TRUE(pkg.has_value());
    // No releases for cars at all.
    EXPECT_FALSE(hub.load_nearest(trace::DeviceType::kConnectedCar, 1, tiny_config()).has_value());
}

}  // namespace
}  // namespace cpt::core
