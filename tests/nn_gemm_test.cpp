// Bit-exactness of the blocked/threaded GEMM kernels against the naive
// reference kernels (see the accumulation contract in src/nn/gemm.hpp),
// pinned per SIMD tier. On the scalar and sse2 tiers the comparison is
// memcmp, not tolerance: those kernels must produce the same bits as the
// reference for every shape and every thread count, because sampler/world-gen
// determinism across CPT_THREADS rests on it. The one carve-out is the m = 1
// NT decode GEMV, whose multi-accumulator dot is tolerance-vs-reference but
// still byte-stable across thread counts. Cross-tier behaviour (including
// avx2) is covered by nn_simd_parity_test.
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "nn/gemm.hpp"
#include "util/cpu.hpp"
#include "util/thread_pool.hpp"

namespace cpt::nn {
namespace {

using GemmFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t, std::size_t,
                        util::ThreadPool*);
using RefFn = void (*)(const float*, const float*, float*, std::size_t, std::size_t, std::size_t);

// Pins the active SIMD tier for a scope and restores the previous one.
class TierGuard {
public:
    explicit TierGuard(util::SimdTier tier) : prev_(util::set_simd_tier(tier)) {}
    ~TierGuard() { util::set_simd_tier(prev_); }
    TierGuard(const TierGuard&) = delete;
    TierGuard& operator=(const TierGuard&) = delete;

private:
    util::SimdTier prev_;
};

// The tiers whose kernels promise reference bit-exactness.
std::vector<util::SimdTier> bit_exact_tiers() {
    std::vector<util::SimdTier> tiers{util::SimdTier::kScalar};
    if (util::simd_tier_available(util::SimdTier::kSse2)) tiers.push_back(util::SimdTier::kSse2);
    return tiers;
}

std::vector<float> random_floats(std::size_t n, std::mt19937& gen) {
    std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
    std::vector<float> v(n);
    for (float& x : v) x = dist(gen);
    return v;
}

void expect_bitwise_equal(const std::vector<float>& a, const std::vector<float>& b,
                          const char* what, std::size_t m, std::size_t k, std::size_t n) {
    ASSERT_EQ(a.size(), b.size());
    EXPECT_EQ(std::memcmp(a.data(), b.data(), a.size() * sizeof(float)), 0)
        << what << " differs from reference at shape (" << m << ", " << k << ", " << n << ")";
}

struct Kernel {
    GemmFn blocked;
    RefFn ref;
    const char* name;
    bool nt = false;
};

void check_shape(const Kernel& kernel, std::size_t m, std::size_t k, std::size_t n,
                 std::mt19937& gen) {
    util::ThreadPool pool1(1);
    util::ThreadPool pool4(4);
    const auto a = random_floats(m * k, gen);
    const auto b = random_floats(k * n, gen);
    // Kernels accumulate into C, so start all variants from the same nonzero C.
    const auto c0 = random_floats(m * n, gen);

    auto c_ref = c0;
    kernel.ref(a.data(), b.data(), c_ref.data(), m, k, n);
    auto c_p1 = c0;
    kernel.blocked(a.data(), b.data(), c_p1.data(), m, k, n, &pool1);
    auto c_p4 = c0;
    kernel.blocked(a.data(), b.data(), c_p4.data(), m, k, n, &pool4);

    // Thread-count invariance is unconditional.
    expect_bitwise_equal(c_p4, c_p1, kernel.name, m, k, n);
    if (kernel.nt && m == 1) {
        // The NT decode GEMV reassociates the dot across accumulators:
        // tolerance vs the reference, bits vs itself (checked above).
        for (std::size_t i = 0; i < c_ref.size(); ++i) {
            EXPECT_NEAR(c_p1[i], c_ref[i], 1e-4f)
                << kernel.name << " gemv at shape (1, " << k << ", " << n << ") index " << i;
        }
        return;
    }
    expect_bitwise_equal(c_p1, c_ref, kernel.name, m, k, n);
}

const Kernel kKernels[] = {
    {gemm_nn, gemm_nn_ref, "gemm_nn", false},
    {gemm_nt, gemm_nt_ref, "gemm_nt", true},
    {gemm_tn, gemm_tn_ref, "gemm_tn", false},
};

TEST(GemmBitExactTest, ModelScaleShapes) {
    std::mt19937 gen(7);
    // Shapes the training/inference stack actually hits: decode (M = 1),
    // d_model projections, MLP expansion/contraction, attention score mats.
    const std::size_t shapes[][3] = {
        {1, 64, 256},  {1, 9, 64},     {128, 64, 256}, {128, 256, 64},
        {512, 64, 64}, {512, 128, 128}, {64, 64, 6},    {500, 9, 128},
    };
    for (util::SimdTier tier : bit_exact_tiers()) {
        TierGuard guard(tier);
        for (const auto& k : kKernels) {
            for (const auto& s : shapes) check_shape(k, s[0], s[1], s[2], gen);
        }
    }
}

TEST(GemmBitExactTest, RandomizedShapesIncludingTileEdges) {
    std::mt19937 gen(1234);
    std::uniform_int_distribution<std::size_t> dm(1, 37);
    std::uniform_int_distribution<std::size_t> dk(1, 48);
    std::uniform_int_distribution<std::size_t> dn(1, 70);
    for (util::SimdTier tier : bit_exact_tiers()) {
        TierGuard guard(tier);
        for (int iter = 0; iter < 40; ++iter) {
            const std::size_t m = dm(gen);
            const std::size_t k = dk(gen);
            const std::size_t n = dn(gen);
            for (const auto& ker : kKernels) check_shape(ker, m, k, n, gen);
        }
    }
}

TEST(GemmBitExactTest, NonMultipleOfBlockSizes) {
    std::mt19937 gen(99);
    // Deliberately straddle the 4x8 / 4x4 register tiles and the 256-wide
    // column block: sizes one below/above each boundary.
    const std::size_t shapes[][3] = {
        {3, 5, 7},   {5, 3, 9},    {4, 8, 8},    {7, 11, 255},
        {9, 2, 257}, {33, 17, 63}, {2, 300, 31}, {1, 1, 1},
    };
    for (util::SimdTier tier : bit_exact_tiers()) {
        TierGuard guard(tier);
        for (const auto& k : kKernels) {
            for (const auto& s : shapes) check_shape(k, s[0], s[1], s[2], gen);
        }
    }
}

TEST(GemmBitExactTest, GlobalPoolPathMatchesExplicitPool) {
    std::mt19937 gen(5);
    const std::size_t m = 50, k = 33, n = 29;
    const auto a = random_floats(m * k, gen);
    const auto b = random_floats(k * n, gen);
    const auto c0 = random_floats(m * n, gen);

    for (util::SimdTier tier : bit_exact_tiers()) {
        TierGuard guard(tier);
        auto c_ref = c0;
        gemm_nn_ref(a.data(), b.data(), c_ref.data(), m, k, n);
        util::set_global_threads(4);
        auto c_glob = c0;
        gemm_nn(a.data(), b.data(), c_glob.data(), m, k, n);  // pool = global
        util::set_global_threads(1);
        expect_bitwise_equal(c_glob, c_ref, "gemm_nn(global pool)", m, k, n);
    }
}

}  // namespace
}  // namespace cpt::nn
