// Bit-determinism of the training path: identical loss trajectories and
// final weights across repeated runs and across thread counts, for both the
// single-model Trainer and the parallel HubTrainer. This is the contract that
// makes `CPT_THREADS` a pure performance knob for training.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/hub_trainer.hpp"
#include "core/model.hpp"
#include "core/model_hub.hpp"
#include "core/trainer.hpp"
#include "trace/synthetic.hpp"
#include "util/thread_pool.hpp"

namespace cpt::core {
namespace {

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 77) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

CptGptConfig tiny_config() {
    CptGptConfig cfg;
    cfg.d_model = 24;
    cfg.heads = 2;
    cfg.mlp_hidden = 48;
    cfg.blocks = 1;
    cfg.max_seq_len = 64;
    cfg.head_hidden = 24;
    return cfg;
}

TrainConfig tiny_train_config() {
    TrainConfig cfg;
    cfg.max_epochs = 3;
    cfg.patience = 10;
    cfg.window = 32;
    cfg.batch_size = 8;
    return cfg;
}

// Restores the single-thread pool on scope exit so later tests see the
// default configuration.
struct ThreadCountGuard {
    ~ThreadCountGuard() { util::set_global_threads(1); }
};

std::vector<std::vector<float>> snapshot_weights(const CptGpt& model) {
    std::vector<std::vector<float>> out;
    for (const auto& np : model.named_parameters()) {
        const auto d = np.param->value.data();
        out.emplace_back(d.begin(), d.end());
    }
    return out;
}

// Trains a fresh tiny model on `data` and returns the loss trajectory plus a
// snapshot of the final weights.
std::pair<TrainResult, std::vector<std::vector<float>>> train_once(const trace::Dataset& data) {
    const auto tok = Tokenizer::fit(data);
    util::Rng rng(9);
    CptGpt model(tok, tiny_config(), rng);
    Trainer trainer(model, tok, tiny_train_config());
    TrainResult r = trainer.train(data);
    return {std::move(r), snapshot_weights(model)};
}

void expect_identical(const std::pair<TrainResult, std::vector<std::vector<float>>>& a,
                      const std::pair<TrainResult, std::vector<std::vector<float>>>& b) {
    ASSERT_EQ(a.first.train_loss.size(), b.first.train_loss.size());
    for (std::size_t e = 0; e < a.first.train_loss.size(); ++e) {
        EXPECT_EQ(a.first.train_loss[e], b.first.train_loss[e]) << "train epoch " << e;
    }
    ASSERT_EQ(a.first.val_loss.size(), b.first.val_loss.size());
    for (std::size_t e = 0; e < a.first.val_loss.size(); ++e) {
        EXPECT_EQ(a.first.val_loss[e], b.first.val_loss[e]) << "val epoch " << e;
    }
    EXPECT_EQ(a.first.steps, b.first.steps);
    EXPECT_EQ(a.first.tokens, b.first.tokens);
    ASSERT_EQ(a.second.size(), b.second.size());
    for (std::size_t p = 0; p < a.second.size(); ++p) {
        ASSERT_EQ(a.second[p].size(), b.second[p].size());
        for (std::size_t j = 0; j < a.second[p].size(); ++j) {
            ASSERT_EQ(a.second[p][j], b.second[p][j]) << "param " << p << " elem " << j;
        }
    }
}

TEST(TrainDeterminismTest, RepeatedRunsAreBitIdentical) {
    const auto world = phone_world(40);
    expect_identical(train_once(world), train_once(world));
}

TEST(TrainDeterminismTest, LossAndWeightsInvariantAcrossThreadCounts) {
    ThreadCountGuard guard;
    const auto world = phone_world(40);
    util::set_global_threads(1);
    const auto single = train_once(world);
    util::set_global_threads(4);
    const auto pooled = train_once(world);
    expect_identical(single, pooled);
}

TEST(TrainDeterminismTest, HubFineTuneMatchesSerialPerSlice) {
    ThreadCountGuard guard;
    const auto pretrain_world = phone_world(40, 101);
    const auto slice_a = phone_world(25, 102);
    const auto slice_b = phone_world(25, 103);
    const auto tok = Tokenizer::fit(pretrain_world);

    HubTrainOptions options;
    options.model = tiny_config();
    options.train = tiny_train_config();
    options.publish = false;  // determinism of training, not hub IO

    util::Rng rng(11);
    CptGpt pretrained(tok, options.model, rng);
    Trainer(pretrained, tok, options.train).train(pretrain_world);

    const std::vector<HubSlice> slices = {
        {trace::DeviceType::kPhone, 8, &slice_a},
        {trace::DeviceType::kPhone, 20, &slice_b},
    };

    ModelHub hub("unused_hub_dir");
    HubTrainer hub_trainer(hub, options);
    util::set_global_threads(1);
    const auto serial = hub_trainer.fine_tune_all(pretrained, tok, slices);
    util::set_global_threads(4);
    const auto parallel = hub_trainer.fine_tune_all(pretrained, tok, slices);

    ASSERT_EQ(serial.size(), slices.size());
    ASSERT_EQ(parallel.size(), slices.size());
    for (std::size_t i = 0; i < slices.size(); ++i) {
        EXPECT_EQ(serial[i].device, parallel[i].device);
        EXPECT_EQ(serial[i].hour_of_day, parallel[i].hour_of_day);
        ASSERT_EQ(serial[i].result.train_loss.size(), parallel[i].result.train_loss.size());
        for (std::size_t e = 0; e < serial[i].result.train_loss.size(); ++e) {
            EXPECT_EQ(serial[i].result.train_loss[e], parallel[i].result.train_loss[e])
                << "slice " << i << " epoch " << e;
        }
        EXPECT_EQ(serial[i].result.steps, parallel[i].result.steps);
    }

    // The hub's parallel fine-tune must reproduce what a plain serial
    // Trainer::fine_tune produces for each slice, seeded the same way.
    util::set_global_threads(1);
    util::Rng root(options.train.seed);
    for (std::size_t i = 0; i < slices.size(); ++i) {
        util::Rng init = root.fork(i);
        CptGpt model(tok, options.model, init);
        copy_weights(pretrained, model);
        TrainConfig cfg = options.train;
        cfg.seed = options.train.seed + i * 0x9E3779B97F4A7C15ull;
        Trainer trainer(model, tok, cfg);
        const auto ref = trainer.fine_tune(*slices[i].data, options.ft_lr_scale,
                                           options.ft_epoch_scale);
        ASSERT_EQ(ref.train_loss.size(), serial[i].result.train_loss.size());
        for (std::size_t e = 0; e < ref.train_loss.size(); ++e) {
            EXPECT_EQ(ref.train_loss[e], serial[i].result.train_loss[e])
                << "slice " << i << " epoch " << e;
        }
    }
}

}  // namespace
}  // namespace cpt::core
