// Tests for the shared parallel substrate: static chunking coverage,
// grain-size behaviour, nested-region inlining, exception propagation, and
// the global pool controls.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace cpt::util {
namespace {

TEST(ThreadPoolTest, CoversEveryIndexExactlyOnce) {
    ThreadPool pool(4);
    constexpr std::size_t n = 10007;
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(n, 1, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ThreadPoolTest, ChunksAreContiguousBalancedAndOrdered) {
    ThreadPool pool(3);
    constexpr std::size_t n = 10;
    std::vector<std::pair<std::size_t, std::size_t>> ranges(pool.num_chunks(n, 1));
    pool.parallel_chunks(n, 1, [&](std::size_t chunk, std::size_t b, std::size_t e) {
        ranges[chunk] = {b, e};
    });
    ASSERT_EQ(ranges.size(), 3u);
    std::size_t expect_begin = 0;
    std::size_t min_len = n;
    std::size_t max_len = 0;
    for (const auto& [b, e] : ranges) {
        EXPECT_EQ(b, expect_begin);
        EXPECT_GT(e, b);
        min_len = std::min(min_len, e - b);
        max_len = std::max(max_len, e - b);
        expect_begin = e;
    }
    EXPECT_EQ(expect_begin, n);
    EXPECT_LE(max_len - min_len, 1u);  // balanced to within one item
}

TEST(ThreadPoolTest, GrainLimitsChunkCount) {
    ThreadPool pool(8);
    EXPECT_EQ(pool.num_chunks(0, 1), 0u);
    EXPECT_EQ(pool.num_chunks(10, 100), 1u);   // less than one grain of work
    EXPECT_EQ(pool.num_chunks(250, 100), 3u);  // ceil(250/100)
    EXPECT_EQ(pool.num_chunks(10000, 1), 8u);  // capped by thread count
}

TEST(ThreadPoolTest, SingleThreadPoolRunsOnCaller) {
    ThreadPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    const auto caller = std::this_thread::get_id();
    std::size_t calls = 0;
    pool.parallel_for(100, 1, [&](std::size_t b, std::size_t e) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        calls += e - b;
    });
    EXPECT_EQ(calls, 100u);
}

TEST(ThreadPoolTest, ZeroItemsNeverInvokes) {
    ThreadPool pool(4);
    pool.parallel_for(0, 1, [&](std::size_t, std::size_t) { FAIL() << "called on n = 0"; });
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
    ThreadPool pool(4);
    std::atomic<std::size_t> total{0};
    pool.parallel_for(8, 1, [&](std::size_t b, std::size_t e) {
        EXPECT_TRUE(ThreadPool::in_worker());
        // The nested region must not redispatch to the pool (deadlock /
        // nondeterminism); it runs as one inline chunk.
        EXPECT_EQ(pool.num_chunks(100, 1), 1u);
        for (std::size_t i = b; i < e; ++i) {
            pool.parallel_for(10, 1, [&](std::size_t ib, std::size_t ie) {
                total.fetch_add(ie - ib);
            });
        }
    });
    EXPECT_FALSE(ThreadPool::in_worker());
    EXPECT_EQ(total.load(), 80u);
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallel_for(100, 1,
                                   [&](std::size_t b, std::size_t) {
                                       if (b >= 50) throw std::runtime_error("boom");
                                   }),
                 std::runtime_error);
    // The pool stays usable after an exception.
    std::atomic<std::size_t> n{0};
    pool.parallel_for(64, 1, [&](std::size_t b, std::size_t e) { n.fetch_add(e - b); });
    EXPECT_EQ(n.load(), 64u);
}

TEST(ThreadPoolTest, GrainForTargetsMinimumChunkCost) {
    EXPECT_EQ(grain_for(16384), 1u);
    EXPECT_EQ(grain_for(1, 100), 100u);
    EXPECT_EQ(grain_for(1 << 30), 1u);  // enormous per-item cost still legal
    EXPECT_EQ(grain_for(0, 100), 100u);
}

TEST(ThreadPoolTest, GlobalPoolControls) {
    set_global_threads(3);
    EXPECT_EQ(configured_threads(), 3u);
    EXPECT_EQ(global_pool().threads(), 3u);
    std::atomic<std::size_t> n{0};
    global_pool().parallel_for(30, 1, [&](std::size_t b, std::size_t e) { n.fetch_add(e - b); });
    EXPECT_EQ(n.load(), 30u);
    set_global_threads(1);
    EXPECT_EQ(global_pool().threads(), 1u);
}

}  // namespace
}  // namespace cpt::util
