// Tests for the trace semantic linter: counts agree with hand-replayed
// streams and with metrics::semantic_violations (which delegates to it),
// first-offender context is exact, and the text/JSON renderings carry the
// expected content.
#include <gtest/gtest.h>

#include <initializer_list>
#include <string>
#include <utility>

#include "lint/trace_lint.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"

namespace cpt::lint {
namespace {

namespace lte = cellular::lte;

trace::Stream stream_of(std::string ue_id,
                        std::initializer_list<std::pair<double, cellular::EventId>> list) {
    trace::Stream s;
    s.ue_id = std::move(ue_id);
    for (const auto& [t, e] : list) s.events.push_back({t, e});
    return s;
}

trace::Dataset two_stream_dataset() {
    trace::Dataset ds;
    // Clean stream: bootstrap on SRV_REQ, then 3 counted events, 0 violations.
    ds.streams.push_back(stream_of("ue-clean", {{0, lte::kSrvReq},
                                                {5, lte::kS1ConnRel},
                                                {60, lte::kSrvReq},
                                                {70, lte::kS1ConnRel}}));
    // Dirty stream: the second S1_CONN_REL fires while idle -> violation.
    ds.streams.push_back(stream_of("ue-dirty", {{0, lte::kSrvReq},
                                                {5, lte::kS1ConnRel},
                                                {6, lte::kS1ConnRel}}));
    return ds;
}

TEST(TraceLintTest, CountsMatchHandReplay) {
    const auto ds = two_stream_dataset();
    const auto report = TraceLinter(ds.generation).lint(ds);

    EXPECT_EQ(report.total_streams, 2u);
    EXPECT_EQ(report.total_events, 7u);
    // One bootstrap event per stream is excluded from counting.
    EXPECT_EQ(report.counted_events, 5u);
    EXPECT_EQ(report.violating_events, 1u);
    EXPECT_EQ(report.violating_streams, 1u);
    EXPECT_EQ(report.unbootstrapped_streams, 0u);
    EXPECT_DOUBLE_EQ(report.event_fraction(), 0.2);
    EXPECT_DOUBLE_EQ(report.stream_fraction(), 0.5);

    const auto top = report.top_categories(3);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_EQ(top[0].state, cellular::SubState::kIdleS1RelS);
    EXPECT_EQ(top[0].event, lte::kS1ConnRel);
    EXPECT_EQ(top[0].count, 1u);
    EXPECT_DOUBLE_EQ(top[0].event_fraction, 0.2);
}

TEST(TraceLintTest, FirstOffenderPinpointsEvent) {
    const auto ds = two_stream_dataset();
    const auto report = TraceLinter(ds.generation).lint(ds);

    ASSERT_TRUE(report.first_offender.has_value());
    const auto& fo = *report.first_offender;
    EXPECT_EQ(fo.stream_index, 1u);
    EXPECT_EQ(fo.ue_id, "ue-dirty");
    EXPECT_EQ(fo.event_index, 2u);
    EXPECT_DOUBLE_EQ(fo.timestamp, 6.0);
    EXPECT_EQ(fo.state, cellular::SubState::kIdleS1RelS);
    EXPECT_EQ(fo.event, lte::kS1ConnRel);
}

TEST(TraceLintTest, CleanDatasetHasNoOffenderOrCategories) {
    trace::Dataset ds;
    ds.streams.push_back(stream_of("ue-0", {{0, lte::kSrvReq}, {5, lte::kS1ConnRel}}));
    const auto report = TraceLinter(ds.generation).lint(ds);
    EXPECT_EQ(report.violating_events, 0u);
    EXPECT_FALSE(report.first_offender.has_value());
    EXPECT_TRUE(report.top_categories(3).empty());
}

TEST(TraceLintTest, UnbootstrappedStreamsAreTracked) {
    trace::Dataset ds;
    // kS1ConnRel never bootstraps an LTE machine: the whole stream is
    // pre-bootstrap, nothing is counted.
    ds.streams.push_back(stream_of("ue-lost", {{0, lte::kS1ConnRel}, {1, lte::kS1ConnRel}}));
    const auto report = TraceLinter(ds.generation).lint(ds);
    EXPECT_EQ(report.unbootstrapped_streams, 1u);
    EXPECT_EQ(report.counted_events, 0u);
    EXPECT_EQ(report.pre_bootstrap_events, 2u);
    EXPECT_EQ(report.violating_events, 0u);
}

TEST(TraceLintTest, PerUeSummariesWhenRequested) {
    const auto ds = two_stream_dataset();
    TraceLintConfig cfg;
    cfg.per_ue = true;
    const auto report = TraceLinter(ds.generation).lint(ds, cfg);

    ASSERT_EQ(report.per_ue.size(), 2u);
    EXPECT_EQ(report.per_ue[0].ue_id, "ue-clean");
    EXPECT_EQ(report.per_ue[0].events, 4u);
    EXPECT_EQ(report.per_ue[0].counted_events, 3u);
    EXPECT_EQ(report.per_ue[0].violations, 0u);
    EXPECT_TRUE(report.per_ue[0].bootstrapped);
    EXPECT_EQ(report.per_ue[1].ue_id, "ue-dirty");
    EXPECT_EQ(report.per_ue[1].violations, 1u);

    // Default config keeps the report light.
    const auto bulk = TraceLinter(ds.generation).lint(ds);
    EXPECT_TRUE(bulk.per_ue.empty());
}

TEST(TraceLintTest, AgreesWithMetricsSemanticViolations) {
    // metrics::semantic_violations delegates to the linter; pin the contract
    // from the caller's side on a nontrivial synthetic dataset.
    trace::SyntheticWorldConfig cfg;
    cfg.population = {120, 40, 15};
    cfg.seed = 33;
    const auto ds = trace::SyntheticWorldGenerator(cfg).generate();

    const auto report = TraceLinter(ds.generation).lint(ds);
    const auto v = metrics::semantic_violations(ds);
    EXPECT_EQ(v.total_streams, report.total_streams);
    EXPECT_EQ(v.counted_events, report.counted_events);
    EXPECT_EQ(v.violating_events, report.violating_events);
    EXPECT_EQ(v.violating_streams, report.violating_streams);
    EXPECT_DOUBLE_EQ(v.event_fraction(), report.event_fraction());
}

TEST(TraceLintTest, RenderMentionsTotalsAndCategories) {
    const auto ds = two_stream_dataset();
    TraceLintConfig cfg;
    cfg.per_ue = true;
    const auto report = TraceLinter(ds.generation).lint(ds, cfg);
    const std::string text = report.render();
    for (const char* needle :
         {"streams", "counted events", "S1_REL_S", "S1_CONN_REL", "ue-dirty"}) {
        EXPECT_NE(text.find(needle), std::string::npos) << needle << "\n" << text;
    }
}

TEST(TraceLintTest, JsonCarriesCountsAndOffender) {
    const auto ds = two_stream_dataset();
    const auto report = TraceLinter(ds.generation).lint(ds);
    const std::string json = report.to_json();
    for (const char* needle :
         {"\"streams\":2", "\"violating_events\":1", "\"first_offender\"",
          "\"ue_id\":\"ue-dirty\"", "\"top_categories\"", "\"S1_REL_S\""}) {
        EXPECT_NE(json.find(needle), std::string::npos) << needle << "\n" << json;
    }
}

}  // namespace
}  // namespace cpt::lint
