// Tests for the NetShare-style baseline: generator output contracts, batch
// generation structure, GAN training progress, and decoding invariants.
#include <gtest/gtest.h>

#include "gan/netshare.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

namespace cpt::gan {
namespace {

trace::Dataset phone_world(std::size_t n, std::uint64_t seed = 41) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {n, 0, 0};
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

NetShareConfig tiny_config() {
    NetShareConfig cfg;
    cfg.max_seq_len = 16;
    cfg.batch_generation = 4;
    cfg.noise_dim = 8;
    cfg.lstm_hidden = 16;
    cfg.disc_hidden = 32;
    cfg.batch_size = 8;
    return cfg;
}

TEST(NetShareTest, SequenceLengthRoundsToBatchMultiple) {
    const auto world = phone_world(30);
    const auto tok = core::Tokenizer::fit(world);
    auto cfg = tiny_config();
    cfg.max_seq_len = 10;  // not divisible by 4
    util::Rng rng(1);
    const NetShareGenerator gen(tok, cfg, rng);
    EXPECT_EQ(gen.config().max_seq_len % gen.config().batch_generation, 0u);
    EXPECT_GE(gen.config().max_seq_len, 10u);
}

TEST(NetShareTest, GeneratedBatchIsWellFormed) {
    const auto world = phone_world(30);
    const auto tok = core::Tokenizer::fit(world);
    util::Rng rng(2);
    const NetShareGenerator gen(tok, tiny_config(), rng);
    util::Rng noise(3);
    const auto batch = gen.generate_batch(5, noise);
    ASSERT_EQ(batch.sequence->value.shape(),
              (nn::Shape{5, gen.config().max_seq_len, tok.num_event_types() + 2}));
    ASSERT_EQ(batch.metadata->value.shape(), (nn::Shape{5, 2}));
    // Event probabilities sum to 1 per sample; ia and stop lie in (0, 1).
    const std::size_t dim = tok.num_event_types() + 2;
    const auto data = batch.sequence->value.data();
    for (std::size_t i = 0; i < 5 * gen.config().max_seq_len; ++i) {
        float total = 0.0f;
        for (std::size_t e = 0; e < tok.num_event_types(); ++e) total += data[i * dim + e];
        EXPECT_NEAR(total, 1.0f, 1e-4f);
        EXPECT_GT(data[i * dim + tok.num_event_types()], 0.0f);
        EXPECT_LT(data[i * dim + tok.num_event_types()], 1.0f);
    }
    for (float m : batch.metadata->value.data()) {
        EXPECT_GT(m, 0.0f);
        EXPECT_LT(m, 1.0f);
    }
}

TEST(NetShareTest, DecodedStreamsAreWellFormed) {
    const auto world = phone_world(30);
    const auto tok = core::Tokenizer::fit(world);
    util::Rng rng(4);
    const NetShareGenerator gen(tok, tiny_config(), rng);
    util::Rng noise(5);
    const auto ds = gen.generate(40, noise, trace::DeviceType::kConnectedCar);
    // Streams decoded to length < 2 are dropped; an untrained generator loses
    // a few draws that way.
    EXPECT_GT(ds.streams.size(), 10u);
    for (const auto& s : ds.streams) {
        EXPECT_GE(s.length(), 2u);
        EXPECT_LE(s.length(), gen.config().max_seq_len);
        EXPECT_EQ(s.device, trace::DeviceType::kConnectedCar);
        double prev = -1.0;
        for (const auto& e : s.events) {
            EXPECT_GE(e.timestamp, prev);
            EXPECT_LT(e.type, tok.num_event_types());
            prev = e.timestamp;
        }
    }
}

TEST(NetShareTest, TrainingRunsAndRecordsLosses) {
    const auto world = phone_world(60);
    const auto tok = core::Tokenizer::fit(world);
    util::Rng rng(6);
    NetShareGenerator gen(tok, tiny_config(), rng);
    GanTrainConfig tcfg;
    tcfg.max_epochs = 4;
    tcfg.eval_every = 2;
    tcfg.eval_streams = 16;
    const auto r = gen.train(world, tcfg);
    EXPECT_GE(r.epochs_run, 2);
    EXPECT_EQ(r.gen_loss.size(), static_cast<std::size_t>(r.epochs_run));
    EXPECT_EQ(r.disc_loss.size(), static_cast<std::size_t>(r.epochs_run));
    EXPECT_FALSE(r.eval_score.empty());
    EXPECT_GT(r.seconds, 0.0);
}

TEST(NetShareTest, TrainingImprovesEventBreakdown) {
    // After a short GAN training run, the generated event marginal should be
    // much closer to the data than an untrained generator's.
    const auto world = phone_world(120, 43);
    const auto tok = core::Tokenizer::fit(world);
    auto cfg = tiny_config();
    cfg.max_seq_len = 24;
    cfg.lstm_hidden = 24;
    util::Rng rng(7);
    NetShareGenerator untrained(tok, cfg, rng);
    util::Rng rng2(7);
    NetShareGenerator trained(tok, cfg, rng2);
    GanTrainConfig tcfg;
    tcfg.max_epochs = 25;
    tcfg.eval_every = 25;  // no early stop in this window
    tcfg.seed = 3;
    trained.train(world, tcfg);

    util::Rng g1(8);
    util::Rng g2(8);
    const auto before = untrained.generate(80, g1, trace::DeviceType::kPhone);
    const auto after = trained.generate(80, g2, trace::DeviceType::kPhone);
    const auto real_p = world.event_type_breakdown();
    const double tv_before = util::total_variation(before.event_type_breakdown(), real_p);
    const double tv_after = util::total_variation(after.event_type_breakdown(), real_p);
    EXPECT_LT(tv_after, tv_before) << "before " << tv_before << " after " << tv_after;
}

TEST(NetShareTest, GeneratorOutlivesTheTokenizerItWasBuiltFrom) {
    // Regression: the generator must own its tokenizer. When built from a
    // tokenizer that goes out of scope, interarrival decoding used to read a
    // dangling pointer and silently produce all-zero timestamps.
    const auto world = phone_world(40);
    std::unique_ptr<NetShareGenerator> gen;
    {
        const auto tok = core::Tokenizer::fit(world);  // dies at scope end
        util::Rng rng(31);
        gen = std::make_unique<NetShareGenerator>(tok, tiny_config(), rng);
    }
    util::Rng grng(32);
    const auto ds = gen->generate(30, grng, trace::DeviceType::kPhone);
    ASSERT_FALSE(ds.streams.empty());
    // With an untrained generator the sigmoid ia outputs hover near 0.5,
    // which decodes to strictly positive interarrivals — all-zero timestamps
    // would reveal the dangling read.
    double total = 0.0;
    for (const auto& s : ds.streams) total += s.events.back().timestamp;
    EXPECT_GT(total, 0.0);
}

TEST(NetShareTest, RejectsEmptyTrainingData) {
    const auto world = phone_world(20);
    const auto tok = core::Tokenizer::fit(world);
    util::Rng rng(9);
    NetShareGenerator gen(tok, tiny_config(), rng);
    trace::Dataset empty;
    EXPECT_THROW(gen.train(empty, GanTrainConfig{}), std::invalid_argument);
}

}  // namespace
}  // namespace cpt::gan
