// Parameterized property tests over randomized inputs: statistics invariants,
// tokenizer round trips, sampler determinism, SMM/state-machine invariants.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/sampler.hpp"
#include "core/tokenizer.hpp"
#include "smm/semi_markov.hpp"
#include "trace/synthetic.hpp"
#include "util/stats.hpp"

namespace cpt {
namespace {

class SeededTest : public ::testing::TestWithParam<std::uint64_t> {};

// ---- max_cdf_y_distance vs brute force ------------------------------------------

double brute_force_ks(std::vector<double> a, std::vector<double> b) {
    const util::Ecdf fa(a);
    const util::Ecdf fb(b);
    double d = 0.0;
    for (double x : a) d = std::max(d, std::abs(fa(x) - fb(x)));
    for (double x : b) d = std::max(d, std::abs(fa(x) - fb(x)));
    return d;
}

using KsTest = SeededTest;

TEST_P(KsTest, SweepMatchesBruteForce) {
    util::Rng rng(GetParam());
    std::vector<double> a(20 + rng.uniform_index(200));
    std::vector<double> b(20 + rng.uniform_index(200));
    for (auto& x : a) x = rng.lognormal(1.0, 1.0);
    for (auto& x : b) x = rng.lognormal(1.2, 0.8);
    // Duplicates stress the tie handling.
    a[0] = a[1];
    b[0] = b[1] = a[0];
    EXPECT_NEAR(util::max_cdf_y_distance(a, b), brute_force_ks(a, b), 1e-12);
}

TEST_P(KsTest, TriangleLikeBound) {
    // d(a, c) <= d(a, b) + d(b, c) holds for the sup-norm distance.
    util::Rng rng(GetParam() + 1000);
    auto sample = [&](double mu) {
        std::vector<double> v(100);
        for (auto& x : v) x = rng.normal(mu, 1.0);
        return v;
    };
    const auto a = sample(0.0);
    const auto b = sample(0.5);
    const auto c = sample(1.0);
    EXPECT_LE(util::max_cdf_y_distance(a, c),
              util::max_cdf_y_distance(a, b) + util::max_cdf_y_distance(b, c) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KsTest, ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

// ---- Ecdf inverse property ---------------------------------------------------------

using EcdfTestP = SeededTest;

TEST_P(EcdfTestP, QuantileIsGeneralizedInverse) {
    util::Rng rng(GetParam() + 77);
    std::vector<double> xs(50 + rng.uniform_index(100));
    for (auto& x : xs) x = rng.normal(0.0, 10.0);
    const util::Ecdf cdf(xs);
    for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99}) {
        const double v = cdf.quantile(q);
        EXPECT_GE(cdf(v), q - 1e-12);              // F(F^-1(q)) >= q
        // Any strictly smaller sample has F < q.
        const double eps = 1e-9 * (std::abs(v) + 1.0);
        EXPECT_LT(cdf(v - eps), q + 1e-12);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EcdfTestP, ::testing::Values(11, 12, 13, 14, 15, 16));

// ---- Tokenizer round trip over random streams ---------------------------------------

using TokenizerProperty = SeededTest;

TEST_P(TokenizerProperty, EncodeIsFaithful) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {20, 10, 5};
    cfg.seed = GetParam();
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    for (const auto& s : world.streams) {
        const auto t = tok.encode(s);
        ASSERT_EQ(t.shape()[0], std::min<std::size_t>(s.length(), 500));
        const auto ia = s.interarrivals();
        for (std::size_t k = 0; k < t.shape()[0]; ++k) {
            const auto row = t.data().subspan(k * tok.d_token(), tok.d_token());
            // Exactly one event bit set, matching the event id.
            std::size_t set = 0;
            for (std::size_t e = 0; e < tok.num_event_types(); ++e) {
                if (row[e] == 1.0f) ++set;
            }
            EXPECT_EQ(set, 1u);
            EXPECT_EQ(row[s.events[k].type], 1.0f);
            // Interarrival decodes back within float precision.
            const double back = tok.unscale_interarrival(row[tok.interarrival_offset()]);
            EXPECT_NEAR(back, ia[k], 1e-4 + 1e-3 * ia[k]);
            // Stop bit exactly on the last token.
            EXPECT_EQ(row[tok.stop_offset() + 1] == 1.0f, k + 1 == s.length());
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TokenizerProperty, ::testing::Values(21, 22, 23, 24));

// ---- Sampler determinism -------------------------------------------------------------

using SamplerProperty = SeededTest;

TEST_P(SamplerProperty, GenerationIsSeedDeterministic) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {40, 0, 0};
    cfg.seed = 31;
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    const auto tok = core::Tokenizer::fit(world);
    core::CptGptConfig mcfg;
    mcfg.d_model = 16;
    mcfg.heads = 2;
    mcfg.mlp_hidden = 32;
    mcfg.blocks = 1;
    mcfg.max_seq_len = 32;
    mcfg.head_hidden = 16;
    util::Rng rng(32);
    const core::CptGpt model(tok, mcfg, rng);
    const core::Sampler sampler(model, tok, world.initial_event_distribution());

    util::Rng g1(GetParam());
    util::Rng g2(GetParam());
    const auto a = sampler.generate(10, g1);
    const auto b = sampler.generate(10, g2);
    ASSERT_EQ(a.streams.size(), b.streams.size());
    for (std::size_t i = 0; i < a.streams.size(); ++i) {
        ASSERT_EQ(a.streams[i].events.size(), b.streams[i].events.size());
        for (std::size_t j = 0; j < a.streams[i].events.size(); ++j) {
            EXPECT_EQ(a.streams[i].events[j].type, b.streams[i].events[j].type);
            EXPECT_EQ(a.streams[i].events[j].timestamp, b.streams[i].events[j].timestamp);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SamplerProperty, ::testing::Values(41, 42, 43));

// ---- SMM invariants ------------------------------------------------------------------

using SmmProperty = SeededTest;

TEST_P(SmmProperty, GeneratedStreamsAlwaysReplayCleanly) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {80, 40, 20};
    cfg.seed = GetParam();
    const auto world = trace::SyntheticWorldGenerator(cfg).generate();
    const auto model = smm::SemiMarkovModel::fit(world);
    util::Rng rng(GetParam() * 3 + 1);
    const auto generated = model.generate(100, rng);
    const auto& machine =
        cellular::StateMachine::for_generation(cellular::Generation::kLte4G);
    const cellular::StateMachineReplayer replayer(machine);
    for (const auto& s : generated.streams) {
        EXPECT_EQ(replayer.replay(s.events).violations, 0u);
        double prev = 0.0;
        for (const auto& e : s.events) {
            EXPECT_GE(e.timestamp, prev);
            prev = e.timestamp;
        }
        EXPECT_LE(s.events.back().timestamp, 3600.0 + 1e-9);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmmProperty, ::testing::Values(51, 52, 53, 54));

// ---- Summary statistics properties ----------------------------------------------------

using StatsProperty = SeededTest;

TEST_P(StatsProperty, SummaryRespectsBounds) {
    util::Rng rng(GetParam() + 500);
    std::vector<double> xs(1 + rng.uniform_index(300));
    for (auto& x : xs) x = rng.uniform(-5.0, 20.0);
    const auto s = util::summarize(xs);
    EXPECT_LE(s.min, s.mean);
    EXPECT_GE(s.max, s.mean);
    EXPECT_GE(s.stddev, 0.0);
    const double range = s.max - s.min;
    EXPECT_LE(s.stddev, range + 1e-12);
}

TEST_P(StatsProperty, NormalizeSumsToOne) {
    util::Rng rng(GetParam() + 600);
    std::vector<double> counts(2 + rng.uniform_index(10));
    for (auto& c : counts) c = rng.uniform(0.0, 100.0);
    const auto p = util::normalize(counts);
    double total = 0.0;
    for (double x : p) total += x;
    EXPECT_NEAR(total, 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Values(61, 62, 63, 64, 65));

}  // namespace
}  // namespace cpt
