// Hourly adaptation (paper Design 3): train a base CPT-GPT on one hour of
// traffic, then track diurnal drift by fine-tuning the model to each
// subsequent hour, and show that (1) fine-tuning is much cheaper than
// retraining and (2) the adapted model tracks each hour's distribution better
// than the stale base model.
#include <cstdio>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"
#include "util/ascii.hpp"
#include "util/cli.hpp"

namespace {

using namespace cpt;

trace::Dataset hour_slice(std::size_t ues, int hour, std::uint64_t seed) {
    trace::SyntheticWorldConfig cfg;
    cfg.population = {ues, 0, 0};
    cfg.hour_of_day = hour;
    cfg.seed = seed;
    return trace::SyntheticWorldGenerator(cfg).generate();
}

double flow_len_distance(const core::CptGpt& model, const core::Tokenizer& tok,
                         const trace::Dataset& hour_data, int hour, std::uint64_t seed) {
    core::SamplerConfig scfg;
    scfg.device = trace::DeviceType::kPhone;
    scfg.hour_of_day = hour;
    const core::Sampler sampler(model, tok, hour_data.initial_event_distribution(), scfg);
    util::Rng rng(seed);
    const auto synth = sampler.generate(150, rng);
    return metrics::evaluate_fidelity(synth, hour_data).maxy_flow_length_all;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Options opt(argc, argv);
    const auto ues = static_cast<std::size_t>(opt.get_int("ues", 300));
    const int epochs = static_cast<int>(opt.get_int("epochs", 10));
    const int hours = static_cast<int>(opt.get_int("hours", 4));
    constexpr int kBaseHour = 2;  // start at night; drift to the morning peak

    std::puts("=== Hourly adaptation via transfer learning ===");
    const auto base_data = hour_slice(ues, kBaseHour, 900);
    const auto tok = core::Tokenizer::fit(base_data);
    core::CptGptConfig mcfg;
    util::Rng rng(5);
    core::CptGpt adapted(tok, mcfg, rng);
    util::Rng rng2(5);
    core::CptGpt stale(tok, mcfg, rng2);  // same init; trained once, never adapted

    core::TrainConfig tcfg;
    tcfg.max_epochs = epochs;
    tcfg.w_event = 3.0f;
    core::Trainer adapted_trainer(adapted, tok, tcfg);
    core::Trainer stale_trainer(stale, tok, tcfg);
    const double base_secs = adapted_trainer.train(base_data).seconds;
    stale_trainer.train(base_data);
    std::printf("base model trained on hour %d in %.1f s\n\n", kBaseHour, base_secs);

    util::TextTable t({"hour", "finetune time", "flow-len max-y (stale base)",
                       "flow-len max-y (adapted)"});
    for (int h = 1; h <= hours; ++h) {
        const int hour = (kBaseHour + h) % 24;
        const auto data = hour_slice(ues, hour, 900 + static_cast<std::uint64_t>(h));
        const auto ft = adapted_trainer.fine_tune(data);
        const double d_stale = flow_len_distance(stale, tok, data, hour, 100 + h);
        const double d_adapt = flow_len_distance(adapted, tok, data, hour, 200 + h);
        t.add_row({std::to_string(hour), util::fmt(ft.seconds, 1) + " s",
                   util::fmt_pct(d_stale, 1), util::fmt_pct(d_adapt, 1)});
    }
    std::fputs(t.render().c_str(), stdout);
    std::puts("\nThe adapted model tracks each hour's drifted distribution; fine-tuning per");
    std::puts("hour costs a fraction of the base training time (paper Design 3 / Table 9).");
    return 0;
}
