// MCN load test — the paper's motivating use case (§2.2): drive a mobile
// core network design with synthesized control-plane traffic and compare the
// load profile against driving it with the real trace.
//
// Steps:
//   1. collect a "real" phone trace and train CPT-GPT on it;
//   2. synthesize an equally sized population;
//   3. replay both traces through the toy MCN (G/G/c worker pool with
//      per-procedure NF costs) with and without autoscaling;
//   4. report latency percentiles, utilization and peak per-UE session state.
//
// If the synthesized trace is high-fidelity, the two load profiles match —
// which is exactly why MCN designers want such a generator.
#include <cstdio>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "mcn/simulator.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto ues = static_cast<std::size_t>(opt.get_int("ues", 500));
    const int epochs = static_cast<int>(opt.get_int("epochs", 10));

    trace::SyntheticWorldConfig world;
    world.population = {ues, 0, 0};
    world.hour_of_day = 18;  // evening busy hour
    world.seed = 77;
    const trace::Dataset real = trace::SyntheticWorldGenerator(world).generate();
    std::printf("real trace: %zu streams / %zu events\n", real.streams.size(),
                real.total_events());

    // Train CPT-GPT and synthesize a same-size population.
    const core::Tokenizer tokenizer = core::Tokenizer::fit(real);
    core::CptGptConfig mcfg;
    util::Rng rng(3);
    core::CptGpt model(tokenizer, mcfg, rng);
    core::TrainConfig tcfg;
    tcfg.max_epochs = epochs;
    tcfg.w_event = 3.0f;
    core::Trainer(model, tokenizer, tcfg).train(real);

    core::SamplerConfig scfg;
    scfg.device = trace::DeviceType::kPhone;
    scfg.hour_of_day = world.hour_of_day;
    const core::Sampler sampler(model, tokenizer, real.initial_event_distribution(), scfg);
    util::Rng grng(4);
    const trace::Dataset synth = sampler.generate(real.streams.size(), grng);
    std::printf("synthesized trace: %zu streams / %zu events\n\n", synth.streams.size(),
                synth.total_events());

    mcn::McnConfig cfg;
    cfg.workers = 2;
    // Inflate procedure costs so the toy pool is meaningfully loaded by a
    // population this small.
    cfg.costs.atch_us = 90000;
    cfg.costs.dtch_us = 40000;
    cfg.costs.srv_req_us = 25000;
    cfg.costs.s1_rel_us = 12000;
    cfg.costs.ho_us = 50000;
    cfg.costs.tau_us = 15000;

    std::puts("--- MCN driven by the REAL trace ---");
    std::fputs(mcn::simulate(real, cfg).render().c_str(), stdout);
    std::puts("\n--- MCN driven by the SYNTHESIZED trace ---");
    std::fputs(mcn::simulate(synth, cfg).render().c_str(), stdout);

    mcn::McnConfig auto_cfg = cfg;
    auto_cfg.workers = 1;
    auto_cfg.autoscale = true;
    auto_cfg.autoscale_interval_s = 300.0;
    auto_cfg.target_utilization = 0.5;
    std::puts("\n--- Autoscaling MCN driven by the SYNTHESIZED trace ---");
    const auto r = mcn::simulate(synth, auto_cfg);
    std::fputs(r.render().c_str(), stdout);
    std::puts("worker trajectory:");
    for (const auto& [t, w] : r.worker_trajectory) {
        std::printf("  t=%7.1fs  workers=%zu\n", t, w);
    }
    return 0;
}
