// serve_loadtest — TCP load driver for cpt_serve / cpt_router.
//
// Closed loop (default): --threads connections each keep one request
// outstanding until --requests have been fired; throughput measures
// capacity. Open loop (--rate=N): requests arrive on a deterministic seeded
// Poisson schedule at N/s regardless of how fast the server answers, and
// latency is measured from the scheduled arrival — the honest number under
// overload (no coordinated omission).
//
// Exit status is non-zero if no request succeeded; with --require-all it is
// non-zero unless every request succeeded (the check.sh router smoke uses
// this to assert zero dropped requests across a backend kill).
//
//   ./serve_loadtest --port=7433 --requests=16 --count=8 --threads=4
//   ./serve_loadtest --port=7500 --rate=50 --requests=200 --require-all
#include <cstdio>

#include "serve/client.hpp"
#include "serve/loadgen.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);

    serve::LoadgenConfig cfg;
    cfg.host = opt.get("host", "127.0.0.1");
    cfg.port = static_cast<std::uint16_t>(opt.get_int("port", 7433));
    cfg.requests = static_cast<std::size_t>(opt.get_int("requests", 16));
    cfg.connections = static_cast<std::size_t>(opt.get_int("threads", 4));
    cfg.rate = opt.get_double("rate", 0.0);
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    cfg.device = trace::device_type_from_string(opt.get("device", "phone"));
    cfg.hour_of_day = static_cast<int>(opt.get_int("hour", 9));
    cfg.count = static_cast<std::uint32_t>(opt.get_int("count", 8));
    cfg.deterministic = opt.get_flag("deterministic");
    cfg.max_stream_len = static_cast<std::uint32_t>(opt.get_int("max-len", 0));
    cfg.deadline_ms = static_cast<std::uint32_t>(opt.get_int("deadline-ms", 0));
    cfg.ue_prefix = opt.get("prefix", "lt");
    const bool require_all = opt.get_flag("require-all");

    const serve::LoadgenResult r = serve::run_loadtest(cfg);

    const auto pct = r.latency.percentiles();
    char mode[64];
    if (cfg.rate > 0.0) {
        std::snprintf(mode, sizeof(mode), "open loop, %.1f/s offered", cfg.rate);
    } else {
        std::snprintf(mode, sizeof(mode), "closed loop");
    }
    std::printf("serve_loadtest: %zu ok, %zu failed in %.3fs (%s)\n", r.ok, r.failed,
                r.wall_seconds, mode);
    std::printf("  streams: %llu (%.1f/s)   requests: %.1f/s\n",
                static_cast<unsigned long long>(r.streams),
                static_cast<double>(r.streams) / r.wall_seconds, r.achieved_rps);
    std::printf("  request latency%s: p50 %.4fs  p95 %.4fs  p99 %.4fs  mean %.4fs\n",
                cfg.rate > 0.0 ? " (from scheduled arrival)" : "", pct.p50, pct.p95,
                pct.p99, r.latency.mean());
    if (!r.first_error.empty()) {
        std::printf("  first failure: %s\n", r.first_error.c_str());
    }

    try {
        serve::TcpClient client(cfg.host, cfg.port);
        std::printf("server stats:\n%s\n", client.stats_json().c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_loadtest: stats fetch failed: %s\n", e.what());
    }
    if (require_all) return (r.failed == 0 && r.ok == cfg.requests) ? 0 : 1;
    return r.ok > 0 ? 0 : 1;
}
