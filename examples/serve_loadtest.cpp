// serve_loadtest — concurrent TCP load driver for cpt_serve.
//
// Opens --threads connections, fires --requests generate requests of --count
// streams each (round-robin across connections), and reports client-side
// throughput and latency percentiles plus the server's own stats JSON.
// Exit status is non-zero on transport errors or if no request succeeded,
// so scripts/check.sh can use it as a smoke gate.
//
//   ./serve_loadtest --port=7433 --requests=16 --count=8 --threads=4
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace cpt;
using Clock = std::chrono::steady_clock;

struct WorkerResult {
    std::size_t ok = 0;
    std::size_t failed = 0;      // non-kOk service statuses
    std::size_t transport = 0;   // connection/protocol errors
    std::size_t streams = 0;
    std::size_t events = 0;
    util::LatencyHistogram latency;
};

}  // namespace

int main(int argc, char** argv) {
    const util::Options opt(argc, argv);
    const std::string host = opt.get("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(opt.get_int("port", 7433));
    const auto requests = static_cast<std::size_t>(opt.get_int("requests", 16));
    const auto count = static_cast<std::uint32_t>(opt.get_int("count", 8));
    const auto threads = static_cast<std::size_t>(opt.get_int("threads", 4));

    serve::GenerateRequest base;
    base.device = trace::device_type_from_string(opt.get("device", "phone"));
    base.hour_of_day = static_cast<int>(opt.get_int("hour", 9));
    base.count = count;
    base.deterministic = opt.get_flag("deterministic");
    base.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    base.temperature = static_cast<float>(opt.get_double("temperature", -1.0));
    base.top_p = static_cast<float>(opt.get_double("top-p", -1.0));
    base.max_stream_len = static_cast<std::uint32_t>(opt.get_int("max-len", 0));
    base.deadline_ms = static_cast<std::uint32_t>(opt.get_int("deadline-ms", 0));
    base.ue_prefix = opt.get("prefix", "lt");

    std::vector<WorkerResult> results(threads);
    std::atomic<std::size_t> next{0};
    const auto t0 = Clock::now();
    std::vector<std::thread> workers;
    for (std::size_t w = 0; w < threads; ++w) {
        workers.emplace_back([&, w] {
            auto& r = results[w];
            try {
                serve::TcpClient client(host, port);
                for (;;) {
                    const std::size_t i = next.fetch_add(1);
                    if (i >= requests) break;
                    serve::GenerateRequest req = base;
                    req.seed = base.seed + i;
                    const auto sent = Clock::now();
                    const auto resp = client.generate(req);
                    r.latency.record(std::chrono::duration<double>(Clock::now() - sent).count());
                    if (resp.status == serve::Status::kOk) {
                        ++r.ok;
                        r.streams += resp.streams.size();
                        for (const auto& s : resp.streams) r.events += s.events.size();
                    } else {
                        ++r.failed;
                        std::fprintf(stderr, "serve_loadtest: request %zu -> %s (%s)\n", i,
                                     serve::status_name(resp.status), resp.error.c_str());
                    }
                }
            } catch (const std::exception& e) {
                ++r.transport;
                std::fprintf(stderr, "serve_loadtest: worker %zu transport error: %s\n", w,
                             e.what());
            }
        });
    }
    for (auto& t : workers) t.join();
    const double elapsed = std::chrono::duration<double>(Clock::now() - t0).count();

    WorkerResult total;
    for (const auto& r : results) {
        total.ok += r.ok;
        total.failed += r.failed;
        total.transport += r.transport;
        total.streams += r.streams;
        total.events += r.events;
        total.latency.merge(r.latency);
    }
    const auto pct = total.latency.percentiles();
    std::printf("serve_loadtest: %zu ok, %zu failed, %zu transport errors in %.3fs\n", total.ok,
                total.failed, total.transport, elapsed);
    std::printf("  streams: %zu (%.1f/s)   events: %zu (%.1f/s)\n", total.streams,
                static_cast<double>(total.streams) / elapsed, total.events,
                static_cast<double>(total.events) / elapsed);
    std::printf("  request latency: p50 %.4fs  p95 %.4fs  p99 %.4fs  mean %.4fs\n", pct.p50,
                pct.p95, pct.p99, total.latency.mean());

    try {
        serve::TcpClient client(host, port);
        std::printf("server stats:\n%s\n", client.stats_json().c_str());
    } catch (const std::exception& e) {
        std::fprintf(stderr, "serve_loadtest: stats fetch failed: %s\n", e.what());
    }
    return (total.transport == 0 && total.ok > 0) ? 0 : 1;
}
