// Trace toolbox: generate / load / validate / summarize control-plane traces
// on the command line — the utility an operator or MCN researcher would use
// around the generator library.
//
//   trace_tools --mode=generate --out=trace.csv --ues=300 --hour=9
//   trace_tools --mode=validate --in=trace.csv
//   trace_tools --mode=summary  --in=trace.csv
#include <cstdio>
#include <string>

#include "metrics/fidelity.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"
#include "util/ascii.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace cpt;

int do_generate(const util::Options& opt) {
    trace::SyntheticWorldConfig cfg;
    const auto total = static_cast<std::size_t>(opt.get_int("ues", 300));
    // Keep the paper's device mix (~65% phones, ~26% cars, ~9% tablets).
    cfg.population = {total * 65 / 100, total * 26 / 100,
                      total - total * 65 / 100 - total * 26 / 100};
    cfg.hour_of_day = static_cast<int>(opt.get_int("hour", 9));
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    const auto ds = trace::SyntheticWorldGenerator(cfg).generate();
    const std::string out = opt.get("out", "trace.csv");
    trace::write_csv_file(out, ds);
    std::printf("wrote %zu streams / %zu events to %s\n", ds.streams.size(), ds.total_events(),
                out.c_str());
    return 0;
}

int do_validate(const util::Options& opt) {
    const auto ds = trace::read_csv_file(opt.get("in", "trace.csv"));
    const auto v = metrics::semantic_violations(ds);
    std::printf("streams %zu, counted events %zu\n", v.total_streams, v.counted_events);
    std::printf("event violations:  %s\n", util::fmt_pct(v.event_fraction(), 3).c_str());
    std::printf("stream violations: %s\n", util::fmt_pct(v.stream_fraction(), 2).c_str());
    for (const auto& c : v.top_categories) {
        std::printf("  (%s, %s): %s of events\n", c.state.c_str(), c.event.c_str(),
                    util::fmt_pct(c.event_fraction, 3).c_str());
    }
    return v.violating_events == 0 ? 0 : 1;
}

int do_summary(const util::Options& opt) {
    const auto ds = trace::read_csv_file(opt.get("in", "trace.csv"));
    const auto& vocab = cellular::vocabulary(ds.generation);
    std::printf("streams %zu, events %zu\n\n", ds.streams.size(), ds.total_events());

    util::TextTable breakdown({"event", "share"});
    const auto p = ds.event_type_breakdown();
    for (std::size_t e = 0; e < p.size(); ++e) {
        breakdown.add_row({vocab.name(static_cast<cellular::EventId>(e)), util::fmt_pct(p[e], 2)});
    }
    std::fputs(breakdown.render().c_str(), stdout);

    const auto lens = ds.flow_lengths();
    const auto ls = util::summarize(lens);
    std::printf("\nflow length: mean %.1f  stddev %.1f  max %.0f  p50 %.0f  p99 %.0f\n", ls.mean,
                ls.stddev, ls.max, util::quantile(lens, 0.5), util::quantile(lens, 0.99));

    const auto s = metrics::collect_sojourns(ds);
    if (!s.per_ue_mean_connected.empty()) {
        std::puts("\nper-UE mean CONNECTED sojourn CDF:");
        std::fputs(util::render_cdf_plot({{"connected", util::Ecdf(s.per_ue_mean_connected)},
                                          {"idle", util::Ecdf(s.per_ue_mean_idle)}})
                       .c_str(),
                   stdout);
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Options opt(argc, argv);
    const std::string mode = opt.get("mode", "summary");
    try {
        if (mode == "generate") return do_generate(opt);
        if (mode == "validate") return do_validate(opt);
        if (mode == "summary") return do_summary(opt);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    std::fprintf(stderr, "unknown --mode=%s (generate | validate | summary)\n", mode.c_str());
    return 2;
}
