// Trace toolbox: generate / load / validate / summarize / convert
// control-plane traces on the command line — the utility an operator or MCN
// researcher would use around the generator library.
//
//   trace_tools --mode=generate --out=trace.csv --ues=300 --hour=9
//   trace_tools --mode=generate --out=trace.cpt --ues=1000000   # streamed
//   trace_tools --mode=validate --in=trace.csv                  # or .cpt
//   trace_tools --mode=summary  --in=trace.csv
//   trace_tools --mode=convert  --in=trace.csv --out=trace.cpt  # either way
//
// Files ending in .cpt use the columnar binary format (DESIGN.md §14);
// validate streams them chunk-at-a-time, so million-UE traces lint in
// O(chunk) memory.
#include <cstdio>
#include <string>

#include "lint/trace_lint.hpp"
#include "metrics/fidelity.hpp"
#include "trace/columnar.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"
#include "util/ascii.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"

namespace {

using namespace cpt;

bool is_columnar_path(const std::string& path) {
    return path.size() >= 4 && path.compare(path.size() - 4, 4, ".cpt") == 0;
}

int do_generate(const util::Options& opt) {
    trace::SyntheticWorldConfig cfg;
    const auto total = static_cast<std::size_t>(opt.get_int("ues", 300));
    // Keep the paper's device mix (~65% phones, ~26% cars, ~9% tablets).
    cfg.population = {total * 65 / 100, total * 26 / 100,
                      total - total * 65 / 100 - total * 26 / 100};
    cfg.hour_of_day = static_cast<int>(opt.get_int("hour", 9));
    cfg.seed = static_cast<std::uint64_t>(opt.get_int("seed", 1));
    const trace::SyntheticWorldGenerator gen(cfg);
    const std::string out = opt.get("out", "trace.csv");
    if (is_columnar_path(out)) {
        // Streamed: never holds more than one chunk of streams, so --ues can
        // be millions. Produces bytes identical to the in-RAM path.
        trace::ColumnarWriter writer(out, cfg.generation);
        gen.generate_to(writer);
        const auto stats = writer.finish();
        std::printf("wrote %llu streams / %llu events to %s (%llu chunks, %.1f MiB)\n",
                    static_cast<unsigned long long>(stats.streams),
                    static_cast<unsigned long long>(stats.events), out.c_str(),
                    static_cast<unsigned long long>(stats.chunks),
                    static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
        return 0;
    }
    const auto ds = gen.generate();
    trace::write_csv_file(out, ds);
    std::printf("wrote %zu streams / %zu events to %s\n", ds.streams.size(), ds.total_events(),
                out.c_str());
    return 0;
}

int do_validate(const util::Options& opt) {
    const std::string in = opt.get("in", "trace.csv");
    lint::TraceLintReport report;
    if (is_columnar_path(in)) {
        trace::ColumnarReader reader(in);
        report = lint::TraceLinter(reader.generation()).lint(reader);
    } else {
        const auto ds = trace::read_csv_file(in);
        report = lint::TraceLinter(ds.generation).lint(ds);
    }
    std::printf("streams %zu, counted events %zu\n", report.total_streams, report.counted_events);
    std::printf("event violations:  %s\n", util::fmt_pct(report.event_fraction(), 3).c_str());
    std::printf("stream violations: %s\n", util::fmt_pct(report.stream_fraction(), 2).c_str());
    const auto& vocab = cellular::vocabulary(report.generation);
    for (const auto& c : report.top_categories(report.top_k)) {
        std::printf("  (%s, %s): %s of events\n", std::string(to_string(c.state)).c_str(),
                    vocab.name(c.event).c_str(), util::fmt_pct(c.event_fraction, 3).c_str());
    }
    return report.violating_events == 0 ? 0 : 1;
}

int do_summary(const util::Options& opt) {
    const std::string in = opt.get("in", "trace.csv");
    const auto ds =
        is_columnar_path(in) ? trace::read_columnar_file(in) : trace::read_csv_file(in);
    const auto& vocab = cellular::vocabulary(ds.generation);
    std::printf("streams %zu, events %zu\n\n", ds.streams.size(), ds.total_events());

    util::TextTable breakdown({"event", "share"});
    const auto p = ds.event_type_breakdown();
    for (std::size_t e = 0; e < p.size(); ++e) {
        breakdown.add_row({vocab.name(static_cast<cellular::EventId>(e)), util::fmt_pct(p[e], 2)});
    }
    std::fputs(breakdown.render().c_str(), stdout);

    const auto lens = ds.flow_lengths();
    const auto ls = util::summarize(lens);
    std::printf("\nflow length: mean %.1f  stddev %.1f  max %.0f  p50 %.0f  p99 %.0f\n", ls.mean,
                ls.stddev, ls.max, util::quantile(lens, 0.5), util::quantile(lens, 0.99));

    const auto s = metrics::collect_sojourns(ds);
    if (!s.per_ue_mean_connected.empty()) {
        std::puts("\nper-UE mean CONNECTED sojourn CDF:");
        std::fputs(util::render_cdf_plot({{"connected", util::Ecdf(s.per_ue_mean_connected)},
                                          {"idle", util::Ecdf(s.per_ue_mean_idle)}})
                       .c_str(),
                   stdout);
    }
    return 0;
}

int do_convert(const util::Options& opt) {
    const std::string in = opt.get("in", "trace.csv");
    const std::string out = opt.get("out", "trace.cpt");
    const bool in_col = is_columnar_path(in);
    const bool out_col = is_columnar_path(out);
    if (in_col == out_col) {
        std::fprintf(stderr,
                     "convert needs one CSV side and one columnar (.cpt) side "
                     "(got --in=%s --out=%s)\n",
                     in.c_str(), out.c_str());
        return 2;
    }
    if (out_col) {
        const auto stats = trace::csv_to_columnar(in, out);
        std::printf("wrote %llu streams / %llu events to %s (%llu chunks, %.1f MiB)\n",
                    static_cast<unsigned long long>(stats.streams),
                    static_cast<unsigned long long>(stats.events), out.c_str(),
                    static_cast<unsigned long long>(stats.chunks),
                    static_cast<double>(stats.bytes) / (1024.0 * 1024.0));
    } else {
        trace::columnar_to_csv(in, out);
        std::printf("wrote %s\n", out.c_str());
    }
    return 0;
}

}  // namespace

int main(int argc, char** argv) {
    const util::Options opt(argc, argv);
    const std::string mode = opt.get("mode", "summary");
    try {
        if (mode == "generate") return do_generate(opt);
        if (mode == "validate") return do_validate(opt);
        if (mode == "summary") return do_summary(opt);
        if (mode == "convert") return do_convert(opt);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "error: %s\n", e.what());
        return 2;
    }
    std::fprintf(stderr, "unknown --mode=%s (generate | validate | summary | convert)\n",
                 mode.c_str());
    return 2;
}
