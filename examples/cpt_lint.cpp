// cpt_lint: semantic linter CLI for control-plane traces.
//
// Replays every stream of a CSV trace through the generation's 3GPP state
// machine and prints a structured violation report (totals, top categories,
// first offender, optionally per-UE summaries or JSON). Exits 1 when the
// trace contains at least one violating event, so it can gate pipelines.
//
// Usage:
//   cpt_lint --trace=path/to/trace.csv [--json] [--per-ue] [--top-k=N]
//   cpt_lint --demo [--ues=N]      # lint a freshly generated synthetic world
#include <cstdio>
#include <string>

#include "lint/trace_lint.hpp"
#include "trace/io.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);

    const std::string path = opt.get("trace", "");
    const bool demo = opt.get_flag("demo");
    if (path.empty() && !demo) {
        std::fputs(
            "usage: cpt_lint --trace=<csv> [--json] [--per-ue] [--top-k=N]\n"
            "       cpt_lint --demo [--ues=N]\n",
            stderr);
        return 2;
    }

    trace::Dataset ds;
    if (demo) {
        trace::SyntheticWorldConfig config;
        const auto ues = static_cast<std::size_t>(opt.get_int("ues", 50));
        config.population = {ues, ues / 3, ues / 10};
        ds = trace::SyntheticWorldGenerator(config).generate();
    } else {
        ds = trace::read_csv_file(path);
    }

    lint::TraceLintConfig config;
    config.per_ue = opt.get_flag("per-ue");
    config.top_k = static_cast<std::size_t>(opt.get_int("top-k", 3));

    const auto report = lint::TraceLinter(ds.generation).lint(ds, config);
    if (opt.get_flag("json")) {
        std::printf("%s\n", report.to_json().c_str());
    } else {
        std::fputs(report.render().c_str(), stdout);
    }
    return report.violating_events > 0 ? 1 : 0;
}
