// cpt_lint: semantic linter CLI for control-plane traces.
//
// Replays every stream of a CSV trace through the generation's 3GPP state
// machine and prints a structured violation report (totals, top categories,
// first offender, optionally per-UE summaries or JSON). Exits 1 when the
// trace contains at least one violating event, so it can gate pipelines.
//
// --surprises=N additionally ranks the N least-expected transitions under the
// trace's own conditional n-gram statistics (--ngram=M context length,
// default 2): each event's probability given its preceding events is looked
// up via NgramIndex::next_event_distribution, and the lowest-probability
// transitions are printed. Low-probability transitions are where
// state-machine violations and generator artifacts concentrate, so this is a
// cheap triage list even for traces the 3GPP linter passes.
//
// Usage:
//   cpt_lint --trace=path/to/trace.csv [--json] [--per-ue] [--top-k=N]
//            [--surprises=N [--ngram=M]]
//   cpt_lint --demo [--ues=N]      # lint a freshly generated synthetic world
#include <algorithm>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "lint/trace_lint.hpp"
#include "trace/io.hpp"
#include "trace/ngram.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

namespace {

// Prints the `count` transitions with the lowest conditional probability
// under the dataset's own n-gram statistics. Ties (and streams never seen in
// a matching context) order deterministically by (probability, stream, pos).
void print_surprises(const cpt::trace::Dataset& ds, std::size_t n, std::size_t count) {
    using namespace cpt;
    const trace::NgramIndex index(ds, n);
    struct Surprise {
        double p;
        std::size_t stream;
        std::size_t pos;
    };
    std::vector<Surprise> found;
    std::vector<double> probs;
    std::vector<cellular::EventId> ctx;
    for (std::size_t si = 0; si < ds.streams.size(); ++si) {
        const auto& events = ds.streams[si].events;
        ctx.clear();
        ctx.reserve(events.size());
        for (const auto& e : events) ctx.push_back(e.type);
        for (std::size_t k = n - 1; k < events.size(); ++k) {
            if (!index.next_event_distribution(
                    std::span<const cellular::EventId>(ctx.data(), k), probs)) {
                continue;
            }
            found.push_back({probs[events[k].type], si, k});
        }
    }
    std::sort(found.begin(), found.end(), [](const Surprise& a, const Surprise& b) {
        if (a.p != b.p) return a.p < b.p;
        if (a.stream != b.stream) return a.stream < b.stream;
        return a.pos < b.pos;
    });
    const auto& vocab = cellular::vocabulary(ds.generation);
    std::printf("least-expected transitions (n=%zu, %zu scored):\n", n, found.size());
    for (std::size_t i = 0; i < std::min(count, found.size()); ++i) {
        const auto& s = found[i];
        const auto& stream = ds.streams[s.stream];
        std::printf("  p=%.5f  %s[%zu]  %s -> %s\n", s.p, stream.ue_id.c_str(), s.pos,
                    vocab.name(stream.events[s.pos - 1].type).c_str(),
                    vocab.name(stream.events[s.pos].type).c_str());
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);

    const std::string path = opt.get("trace", "");
    const bool demo = opt.get_flag("demo");
    if (path.empty() && !demo) {
        std::fputs(
            "usage: cpt_lint --trace=<csv> [--json] [--per-ue] [--top-k=N]\n"
            "       cpt_lint --demo [--ues=N]\n",
            stderr);
        return 2;
    }

    trace::Dataset ds;
    if (demo) {
        trace::SyntheticWorldConfig config;
        const auto ues = static_cast<std::size_t>(opt.get_int("ues", 50));
        config.population = {ues, ues / 3, ues / 10};
        ds = trace::SyntheticWorldGenerator(config).generate();
    } else {
        ds = trace::read_csv_file(path);
    }

    lint::TraceLintConfig config;
    config.per_ue = opt.get_flag("per-ue");
    config.top_k = static_cast<std::size_t>(opt.get_int("top-k", 3));

    const auto report = lint::TraceLinter(ds.generation).lint(ds, config);
    if (opt.get_flag("json")) {
        std::printf("%s\n", report.to_json().c_str());
    } else {
        std::fputs(report.render().c_str(), stdout);
    }
    const auto surprises = static_cast<std::size_t>(opt.get_int("surprises", 0));
    if (surprises > 0) {
        const auto n = std::max<std::size_t>(2, static_cast<std::size_t>(opt.get_int("ngram", 2)));
        print_surprises(ds, n, surprises);
    }
    return report.violating_events > 0 ? 1 : 0;
}
