// Next-generation (5G) traffic synthesis — the paper's §7 future-work
// scenario, demonstrating the central claim: because CPT-GPT carries no
// domain knowledge, moving from 4G to 5G changes NOTHING in the model code.
// Only the domain layer (event vocabulary + Fig. 1b state machine) and the
// data change; the tokenizer derives d_token = 5 + 1 + 2 = 8 automatically.
#include <cstdio>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto ues = static_cast<std::size_t>(opt.get_int("ues", 300));
    const int epochs = static_cast<int>(opt.get_int("epochs", 12));

    trace::SyntheticWorldConfig world;
    world.generation = cellular::Generation::kNr5G;
    world.population = {ues, ues / 3, ues / 8};
    world.hour_of_day = 11;
    world.seed = 88;
    const auto train_data = trace::SyntheticWorldGenerator(world).generate();
    world.seed = 8888;
    const auto test_data = trace::SyntheticWorldGenerator(world).generate();

    const auto& vocab = cellular::vocabulary(cellular::Generation::kNr5G);
    std::printf("5G trace: %zu streams, %zu events, vocabulary:", train_data.streams.size(),
                train_data.total_events());
    for (std::size_t e = 0; e < vocab.size(); ++e) {
        std::printf(" %s", vocab.name(static_cast<cellular::EventId>(e)).c_str());
    }
    std::puts("");

    // Identical model code as the 4G quickstart — only the data differs.
    const auto tokenizer = core::Tokenizer::fit(train_data);
    std::printf("tokenizer: d_token = %zu (5 events + interarrival + stop)\n",
                tokenizer.d_token());
    core::CptGptConfig mcfg;
    util::Rng rng(9);
    core::CptGpt model(tokenizer, mcfg, rng);
    core::TrainConfig tcfg;
    tcfg.max_epochs = epochs;
    tcfg.w_event = 3.0f;
    tcfg.verbose = true;
    const auto result = core::Trainer(model, tokenizer, tcfg).train(train_data);
    std::printf("trained %d epochs in %.1f s\n", result.epochs_run, result.seconds);

    core::SamplerConfig scfg;
    scfg.hour_of_day = world.hour_of_day;
    const core::Sampler sampler(model, tokenizer, train_data.initial_event_distribution(), scfg);
    util::Rng grng(10);
    const auto synthesized = sampler.generate(
        static_cast<std::size_t>(opt.get_int("gen", 150)), grng, "nr");
    std::printf("synthesized %zu streams / %zu events\n", synthesized.streams.size(),
                synthesized.total_events());

    // The 5G replayer validates against the Fig. 1b machine automatically
    // (the dataset carries its generation).
    const auto report = metrics::evaluate_fidelity(synthesized, test_data);
    std::fputs(metrics::render_report(report, test_data).c_str(), stdout);
    return 0;
}
