// cpt_router — sharded serving router daemon over cpt-serve backends
// (DESIGN.md §15).
//
// Partitions the (device, hour) slice space across backends with a
// consistent hash ring, health-checks them, spills hot slices, and fails
// over on backend death. Speaks the same wire protocol as cpt_serve, so any
// client (serve_loadtest, TcpClient) points at the router unchanged.
//
//   ./cpt_serve --hub=./hub --port=7433 &
//   ./cpt_serve --hub=./hub --port=7434 &
//   ./cpt_router --backends=127.0.0.1:7433,127.0.0.1:7434 --port=7500
//
// Options: --backends=H:P[,H:P...] (required), --host=A.B.C.D, --port=N
// (0 = ephemeral, printed on the "listening" line), --vnodes=N,
// --replicas=N (failover/spill candidates per slice), --forwarders=N,
// --queue=N, --health-interval-ms=N, --health-timeout-ms=N,
// --io-timeout-ms=N, --down-after=N (consecutive probe failures),
// --spill-threshold=N (slice in-flight on the primary before spilling),
// --print-owner=DEVICE/hHOUR (e.g. phone/h9: print the slice's current ring
// owner after startup — scripts/check.sh uses it to pick which backend to
// kill in the failover smoke).
#include <cstdio>
#include <string>
#include <vector>

#include "serve/client.hpp"
#include "serve/router.hpp"
#include "util/cli.hpp"
#include "util/signal.hpp"

namespace {

std::vector<std::string> split_csv(const std::string& s) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos <= s.size()) {
        const std::size_t comma = s.find(',', pos);
        const std::size_t end = comma == std::string::npos ? s.size() : comma;
        if (end > pos) out.push_back(s.substr(pos, end - pos));
        if (comma == std::string::npos) break;
        pos = comma + 1;
    }
    return out;
}

}  // namespace

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const std::string host = opt.get("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(opt.get_int("port", 0));

    try {
        serve::RouterConfig cfg;
        cfg.backends = split_csv(opt.get("backends", ""));
        if (cfg.backends.empty()) {
            std::fprintf(stderr, "cpt_router: --backends=H:P[,H:P...] is required\n");
            return 1;
        }
        cfg.vnodes = static_cast<std::size_t>(opt.get_int("vnodes", 64));
        cfg.replicas = static_cast<std::size_t>(opt.get_int("replicas", 2));
        cfg.forwarders = static_cast<std::size_t>(opt.get_int("forwarders", 8));
        cfg.queue_capacity = static_cast<std::size_t>(opt.get_int("queue", 256));
        cfg.health_interval_ms = static_cast<int>(opt.get_int("health-interval-ms", 500));
        cfg.health_timeout_ms = static_cast<int>(opt.get_int("health-timeout-ms", 2000));
        cfg.io_timeout_ms = static_cast<int>(opt.get_int("io-timeout-ms", 0));
        cfg.down_after_failures = static_cast<int>(opt.get_int("down-after", 2));
        cfg.spill_threshold = static_cast<std::size_t>(opt.get_int("spill-threshold", 8));

        serve::Router router(std::move(cfg));

        const std::string owner_query = opt.get("print-owner", "");
        if (!owner_query.empty()) {
            const auto sep = owner_query.find("/h");
            if (sep == std::string::npos) {
                std::fprintf(stderr, "cpt_router: --print-owner wants DEVICE/hHOUR\n");
                return 1;
            }
            const auto device = trace::device_type_from_string(owner_query.substr(0, sep));
            const int hour = std::stoi(owner_query.substr(sep + 2));
            std::printf("cpt_router: owner(%s) = %s\n", owner_query.c_str(),
                        router.owner_of(device, hour).c_str());
        }

        serve::TcpServer tcp(router, host, port);
        util::install_shutdown_handlers();  // no SA_RESTART: the accept tick sees EINTR
        std::printf("cpt_router: listening on %s:%u (%zu backends)\n", host.c_str(),
                    tcp.port(), router.config().backends.size());
        std::fflush(stdout);

        tcp.serve_forever([] { return util::shutdown_requested(); });

        std::puts("cpt_router: shutdown requested, draining...");
        std::fflush(stdout);
        router.drain();
        std::printf("%s\n", router.stats_json().c_str());
        std::puts("cpt_router: drained cleanly");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cpt_router: fatal: %s\n", e.what());
        return 1;
    }
}
