// Quickstart: the full CPT-GPT pipeline on one hour of phone traffic.
//
//   1. synthesize a "real-world" training trace (the stand-in for an
//      operator's collected trace — see DESIGN.md);
//   2. fit the tokenizer, train CPT-GPT with the multi-modal loss;
//   3. sample a synthetic trace from the trained model;
//   4. score it with the paper's fidelity metrics against a held-out trace.
//
// Flags (also settable via CPT_* environment variables):
//   --ues=N        training population (default 400)
//   --epochs=N     max training epochs (default 12)
//   --gen=N        streams to generate (default 200)
//   --save=PATH    optionally save the trained package
#include <cstdio>

#include "core/model.hpp"
#include "core/sampler.hpp"
#include "core/trainer.hpp"
#include "metrics/fidelity.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
    using namespace cpt;
    const util::Options opt(argc, argv);
    const auto ues = static_cast<std::size_t>(opt.get_int("ues", 400));
    const int epochs = static_cast<int>(opt.get_int("epochs", 12));
    const auto gen_count = static_cast<std::size_t>(opt.get_int("gen", 200));

    // 1. "Collect" a real trace (phones, one busy hour).
    trace::SyntheticWorldConfig world;
    world.population = {ues, 0, 0};
    world.hour_of_day = 10;
    world.seed = 42;
    const trace::Dataset train_data = trace::SyntheticWorldGenerator(world).generate();
    world.seed = 4242;  // held-out hour for evaluation
    const trace::Dataset test_data = trace::SyntheticWorldGenerator(world).generate();
    std::printf("training trace: %zu streams, %zu events\n", train_data.streams.size(),
                train_data.total_events());

    // 2. Tokenize and train.
    const core::Tokenizer tokenizer = core::Tokenizer::fit(train_data);
    core::CptGptConfig model_cfg;  // library default (CPU-sized; see
                                   // CptGptConfig::paper_scale() for the
                                   // paper's 725K-parameter configuration)
    util::Rng init_rng(1);
    core::CptGpt model(tokenizer, model_cfg, init_rng);
    std::printf("CPT-GPT: %zu parameters, d_token=%zu\n", model.num_parameters(),
                tokenizer.d_token());

    core::TrainConfig train_cfg;
    train_cfg.max_epochs = epochs;
    train_cfg.window = static_cast<std::size_t>(opt.get_int("window", 64));
    train_cfg.w_event = static_cast<float>(opt.get_double("w-event", 1.0));
    train_cfg.patience = static_cast<int>(opt.get_int("patience", 3));
    train_cfg.verbose = true;
    core::Trainer trainer(model, tokenizer, train_cfg);
    const auto result = trainer.train(train_data);
    std::printf("trained %d epochs in %.1f s (best epoch %d)\n", result.epochs_run,
                result.seconds, result.best_epoch);

    // 3. Generate.
    core::SamplerConfig sampler_cfg;
    sampler_cfg.device = trace::DeviceType::kPhone;
    sampler_cfg.hour_of_day = world.hour_of_day;
    const core::Sampler sampler(model, tokenizer, train_data.initial_event_distribution(),
                                sampler_cfg);
    util::Rng gen_rng(7);
    const trace::Dataset synthesized = sampler.generate(gen_count, gen_rng);
    std::printf("generated %zu streams, %zu events\n", synthesized.streams.size(),
                synthesized.total_events());

    // 4. Evaluate.
    const auto report = metrics::evaluate_fidelity(synthesized, test_data);
    std::fputs(metrics::render_report(report, test_data).c_str(), stdout);

    if (opt.has("save")) {
        const std::string path = opt.get("save", "cptgpt.ckpt");
        model.save_package(path, tokenizer, train_data.initial_event_distribution());
        std::printf("saved package to %s\n", path.c_str());
    }
    return 0;
}
