// cpt_serve — generation service daemon over a ModelHub release directory.
//
// Serves per-UE stream-synthesis requests (protocol.hpp) with continuous
// batching, one engine per (device, hour) slice. SIGTERM/SIGINT trigger a
// graceful drain: admission stops, queued and in-flight requests finish (or
// hit their deadlines), engines join, and the final stats JSON is printed.
//
//   ./cpt_serve --hub=./hub --bootstrap          # publish a demo model first
//   ./cpt_serve --hub=./hub --port=7433
//
// Options: --hub=DIR, --host=A.B.C.D, --port=N (0 = ephemeral; the chosen
// port is printed on the "listening" line), --slots=N, --queue=N,
// --deadline-ms=N, --deterministic, --nearest-hour, --bootstrap (publish a
// synthetic-world model for phone/--hour before serving), --hour=N,
// --ues=N, --epochs=N (bootstrap training epochs; 0 serves random weights),
// --precision=fp32|int8 (decode path for every slice, DESIGN.md §12;
// quantized packages always serve int8), --spec-k=N (speculative decode,
// DESIGN.md §16: draft N-1 tokens per round against a self-bootstrapped
// n-gram drafter; 1 disables).
#include <cstdio>

#include "core/model_hub.hpp"
#include "core/trainer.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "trace/synthetic.hpp"
#include "util/cli.hpp"
#include "util/signal.hpp"

namespace {

using namespace cpt;

void bootstrap_hub(const std::string& hub_dir, int hour, std::size_t ues, int epochs) {
    trace::SyntheticWorldConfig w;
    w.population = {ues, 0, 0};
    w.hour_of_day = hour;
    const auto data = trace::SyntheticWorldGenerator(w).generate();
    const auto tok = core::Tokenizer::fit(data);
    util::Rng rng(1);
    core::CptGpt model(tok, core::CptGptConfig{}, rng);
    if (epochs > 0) {
        core::TrainConfig tcfg;
        tcfg.max_epochs = epochs;
        core::Trainer trainer(model, tok, tcfg);
        trainer.train(data);
    }
    core::ModelHub hub(hub_dir);
    hub.publish(model, tok, data.initial_event_distribution(), trace::DeviceType::kPhone, hour);
    std::printf("cpt_serve: bootstrapped %s with phone/h%d (%d epochs)\n", hub_dir.c_str(),
                hour, epochs);
}

}  // namespace

int main(int argc, char** argv) {
    const util::Options opt(argc, argv);
    const std::string hub_dir = opt.get("hub", "serve_hub");
    const std::string host = opt.get("host", "127.0.0.1");
    const auto port = static_cast<std::uint16_t>(opt.get_int("port", 0));
    const int hour = static_cast<int>(opt.get_int("hour", 9));

    try {
        if (opt.get_flag("bootstrap")) {
            bootstrap_hub(hub_dir, hour, static_cast<std::size_t>(opt.get_int("ues", 120)),
                          static_cast<int>(opt.get_int("epochs", 0)));
        }

        serve::ServeConfig cfg;
        cfg.hub_dir = hub_dir;
        cfg.slot_capacity = static_cast<std::size_t>(opt.get_int("slots", 32));
        cfg.queue_capacity = static_cast<std::size_t>(opt.get_int("queue", 64));
        cfg.default_deadline_ms =
            static_cast<std::uint32_t>(opt.get_int("deadline-ms", 30000));
        cfg.deterministic = opt.get_flag("deterministic");
        cfg.nearest_hour_fallback = opt.get_flag("nearest-hour");
        cfg.precision = nn::parse_precision(opt.get("precision", "fp32"));
        cfg.spec_k = static_cast<std::size_t>(opt.get_int("spec-k", 1));
        serve::Server server(std::move(cfg));

        serve::TcpServer tcp(server, host, port);
        util::install_shutdown_handlers();  // no SA_RESTART: accept(2) sees EINTR
        std::printf("cpt_serve: listening on %s:%u\n", host.c_str(), tcp.port());
        std::fflush(stdout);

        tcp.serve_forever([] { return util::shutdown_requested(); });

        std::puts("cpt_serve: shutdown requested, draining...");
        std::fflush(stdout);
        server.drain();
        std::printf("%s\n", server.stats_json().c_str());
        std::puts("cpt_serve: drained cleanly");
        return 0;
    } catch (const std::exception& e) {
        std::fprintf(stderr, "cpt_serve: fatal: %s\n", e.what());
        return 1;
    }
}
