#!/usr/bin/env bash
# Correctness gate: warnings-as-errors build, clang-tidy (when installed), and
# a sanitizer ctest matrix. Run from anywhere inside the repo:
#
#   scripts/check.sh             # full gate: werror + tidy + ubsan + asan + tsan + simd + quant + serve + train
#   scripts/check.sh werror      # just the -Werror build + full test suite
#   scripts/check.sh tidy        # just clang-tidy over the compile database
#   scripts/check.sh ubsan       # UBSan build (recovery disabled) + full suite
#   scripts/check.sh asan        # ASan build + full suite
#   scripts/check.sh tsan        # TSan build + concurrency-labeled tests
#   scripts/check.sh simd        # Release build; parity+determinism per forced SIMD tier
#   scripts/check.sh quant       # quant-labeled tests (int8/fp16 decode) per forced SIMD tier
#   scripts/check.sh serve       # serve-labeled tests + daemon smoke (loadtest, clean drain)
#   scripts/check.sh train       # train-labeled tests, then rerun determinism with CPT_THREADS=2
#
# Each stage configures into its own build directory (build-check-<stage>) so
# repeat runs are incremental. The script stops at the first failing stage.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

configure_and_build() { # <dir> <extra cmake flags...>
    local dir="$1"
    shift
    mkdir -p "$dir"
    cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" >"$dir/configure.log" 2>&1 ||
        { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS"
}

run_ctest() { # <dir> [extra ctest args...]
    local dir="$1"
    shift
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

stage_werror() {
    echo "== stage: werror (all warnings are errors, full test suite) =="
    configure_and_build "$ROOT/build-check-werror" -DCPT_WERROR=ON -DCPT_DEBUG_CHECKS=ON
    run_ctest "$ROOT/build-check-werror"
}

stage_tidy() {
    echo "== stage: clang-tidy =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping (stage passes vacuously)"
        return 0
    fi
    local db="$ROOT/build-check-werror"
    if [ ! -f "$db/compile_commands.json" ]; then
        configure_and_build "$db" -DCPT_WERROR=ON -DCPT_DEBUG_CHECKS=ON
    fi
    # First-party translation units only; the config file scopes the checks.
    (cd "$ROOT" && find src examples bench -name '*.cpp' -print0 |
        xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$db" --quiet)
}

stage_ubsan() {
    echo "== stage: ubsan (undefined behavior, recovery disabled, full suite) =="
    configure_and_build "$ROOT/build-check-ubsan" -DCPT_SANITIZE=undefined
    run_ctest "$ROOT/build-check-ubsan"
}

stage_asan() {
    echo "== stage: asan (address sanitizer, full suite) =="
    configure_and_build "$ROOT/build-check-asan" -DCPT_SANITIZE=address
    ASAN_OPTIONS=detect_leaks=0 run_ctest "$ROOT/build-check-asan"
}

stage_tsan() {
    echo "== stage: tsan (thread sanitizer, concurrency-labeled tests) =="
    configure_and_build "$ROOT/build-check-tsan" -DCPT_SANITIZE=thread
    run_ctest "$ROOT/build-check-tsan" -L concurrency
}

host_simd_tiers() {
    # Mirrors util::detect_simd_tier: scalar always; sse2 on any x86-64; avx2
    # only when the host advertises both avx2 and fma.
    local tiers="scalar"
    if grep -q '\bsse2\b' /proc/cpuinfo 2>/dev/null; then
        tiers="$tiers sse2"
    fi
    if grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null &&
        grep -q '\bfma\b' /proc/cpuinfo 2>/dev/null; then
        tiers="$tiers avx2"
    fi
    echo "$tiers"
}

stage_simd() {
    echo "== stage: simd (kernel parity + determinism under each forced tier) =="
    configure_and_build "$ROOT/build-check-simd"
    local tiers
    tiers="$(host_simd_tiers)"
    echo "host tiers: $tiers"
    for t in $tiers; do
        echo "-- CPT_SIMD=$t: parity + determinism suites"
        CPT_SIMD="$t" run_ctest "$ROOT/build-check-simd" \
            -R 'SimdParity|GemmBitExact|ParallelDeterminism'
    done
}

stage_quant() {
    echo "== stage: quant (int8/fp16 decode-path suite under each forced tier) =="
    local dir="$ROOT/build-check-simd"
    configure_and_build "$dir"
    local tiers
    tiers="$(host_simd_tiers)"
    echo "host tiers: $tiers"
    # The q8 kernels promise byte-identical logits on every tier (the int
    # accumulation is exact and the float epilogue is tier-shared), so the
    # whole quant label — parity bounds, fidelity drift, serialization —
    # must pass with each tier forced.
    for t in $tiers; do
        echo "-- CPT_SIMD=$t: quant-labeled tests"
        CPT_SIMD="$t" run_ctest "$dir" -L quant
    done
}

stage_serve() {
    echo "== stage: serve (labeled tests + daemon smoke: loadtest, graceful drain) =="
    local dir="$ROOT/build-check-serve"
    configure_and_build "$dir"
    run_ctest "$dir" -L serve

    local log="$dir/cpt_serve.log"
    rm -rf "$dir/serve-hub"
    "$dir/examples/cpt_serve" --hub="$dir/serve-hub" --bootstrap --ues=40 --port=0 \
        >"$log" 2>&1 &
    local daemon=$!
    # The daemon picks an ephemeral port and prints it on the listening line.
    local port=""
    for _ in $(seq 1 120); do
        port="$(sed -n 's/^cpt_serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
        [ -n "$port" ] && break
        if ! kill -0 "$daemon" 2>/dev/null; then
            echo "cpt_serve exited before listening:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.5
    done
    if [ -z "$port" ]; then
        echo "cpt_serve never reported its port:" >&2
        cat "$log" >&2
        kill "$daemon" 2>/dev/null || true
        return 1
    fi
    if ! "$dir/examples/serve_loadtest" --port="$port" --requests=6 --count=4 --threads=2 \
        --max-len=16; then
        echo "serve_loadtest failed against the smoke daemon" >&2
        kill "$daemon" 2>/dev/null || true
        return 1
    fi
    # Graceful drain: SIGTERM must produce a clean exit and the drain marker.
    kill -TERM "$daemon"
    local status=0
    wait "$daemon" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "cpt_serve exited with status $status after SIGTERM:" >&2
        cat "$log" >&2
        return 1
    fi
    if ! grep -q "cpt_serve: drained cleanly" "$log"; then
        echo "cpt_serve log lacks the clean-drain marker:" >&2
        cat "$log" >&2
        return 1
    fi
    echo "serve smoke: loadtest ok, clean drain confirmed on port $port"
}

stage_train() {
    echo "== stage: train (labeled tests, then determinism rerun with CPT_THREADS=2) =="
    local dir="$ROOT/build-check-train"
    configure_and_build "$dir"
    run_ctest "$dir" -L train
    # The training-path determinism contract says CPT_THREADS is a pure
    # performance knob; rerun the pinning suite with a pool configured.
    CPT_THREADS=2 run_ctest "$dir" -R 'TrainDeterminism'
}

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=(werror tidy ubsan asan tsan simd quant serve train)
fi
for s in "${stages[@]}"; do
    case "$s" in
        werror) stage_werror ;;
        tidy) stage_tidy ;;
        ubsan) stage_ubsan ;;
        asan) stage_asan ;;
        tsan) stage_tsan ;;
        simd) stage_simd ;;
        quant) stage_quant ;;
        serve) stage_serve ;;
        train) stage_train ;;
        *)
            echo "unknown stage '$s' (expected: werror tidy ubsan asan tsan simd quant serve train)" >&2
            exit 2
            ;;
    esac
done
echo "== all requested stages passed =="
