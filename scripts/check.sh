#!/usr/bin/env bash
# Correctness gate: warnings-as-errors build, static analysis, and a
# sanitizer ctest matrix. Run from anywhere inside the repo:
#
#   scripts/check.sh             # full gate, all stages in order (see below)
#   scripts/check.sh werror      # just the -Werror build + full test suite
#   scripts/check.sh tidy        # just clang-tidy over the compile database
#   scripts/check.sh annotate    # clang -Wthread-safety build (CPT_THREAD_SAFETY=ON)
#   scripts/check.sh sa          # cpt_sa project-invariant linter + static-labeled tests
#   scripts/check.sh ubsan       # UBSan build (recovery disabled) + full suite
#   scripts/check.sh asan        # ASan build + full suite
#   scripts/check.sh tsan        # TSan build + concurrency-labeled tests
#   scripts/check.sh simd        # Release build; parity+determinism per forced SIMD tier
#   scripts/check.sh quant       # quant-labeled tests (int8/fp16 decode) per forced SIMD tier
#   scripts/check.sh serve       # serve-labeled tests + daemon smoke (loadtest, clean drain)
#   scripts/check.sh router      # 2 backends + router; kill one mid-load, assert clean failover
#   scripts/check.sh train       # train-labeled tests, then rerun determinism with CPT_THREADS=2
#   scripts/check.sh scale       # scale-labeled tests + 50k-UE streaming smoke under an RSS bound
#   scripts/check.sh spec        # spec-labeled tests (speculative-decode identities) per SIMD tier
#
# Any subset may be requested by name (`scripts/check.sh sa tsan`). Each stage
# configures into its own build directory (build-check-<stage>) so repeat runs
# are incremental. All requested stages run even after a failure; the script
# ends with a per-stage PASS/FAIL summary table and exits nonzero naming the
# first failed stage. The two clang-only stages (tidy, annotate) pass
# vacuously — with a notice — when no clang is installed, so the gate stays
# runnable on GCC-only hosts.
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"

configure_and_build() { # <dir> <extra cmake flags...>
    local dir="$1"
    shift
    mkdir -p "$dir"
    cmake -S "$ROOT" -B "$dir" -DCMAKE_BUILD_TYPE=Release \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON "$@" >"$dir/configure.log" 2>&1 ||
        { cat "$dir/configure.log"; return 1; }
    cmake --build "$dir" -j "$JOBS"
}

run_ctest() { # <dir> [extra ctest args...]
    local dir="$1"
    shift
    ctest --test-dir "$dir" --output-on-failure -j "$JOBS" "$@"
}

find_clangxx() {
    local c
    for c in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
        clang++-15 clang++-14; do
        if command -v "$c" >/dev/null 2>&1; then
            echo "$c"
            return 0
        fi
    done
    return 1
}

stage_werror() {
    echo "== stage: werror (all warnings are errors, full test suite) =="
    configure_and_build "$ROOT/build-check-werror" -DCPT_WERROR=ON -DCPT_DEBUG_CHECKS=ON
    run_ctest "$ROOT/build-check-werror"
}

stage_tidy() {
    echo "== stage: clang-tidy =="
    if ! command -v clang-tidy >/dev/null 2>&1; then
        echo "clang-tidy not installed; skipping (stage passes vacuously)"
        return 0
    fi
    local db="$ROOT/build-check-werror"
    if [ ! -f "$db/compile_commands.json" ]; then
        configure_and_build "$db" -DCPT_WERROR=ON -DCPT_DEBUG_CHECKS=ON
    fi
    # First-party translation units only (src covers serve; tools covers the
    # cpt_sa linter itself); the config file scopes the checks.
    (cd "$ROOT" && find src examples bench tools -name '*.cpp' -print0 |
        xargs -0 -P "$JOBS" -n 8 clang-tidy -p "$db" --quiet)
}

stage_annotate() {
    echo "== stage: annotate (clang thread-safety analysis as errors) =="
    local clangxx
    if ! clangxx="$(find_clangxx)"; then
        echo "no clang++ on PATH; -Wthread-safety unavailable (stage passes vacuously)"
        return 0
    fi
    echo "using $clangxx"
    # CPT_THREAD_SAFETY=ON turns every CPT_GUARDED_BY/CPT_REQUIRES violation
    # into a compile error, so "the build succeeds" is the whole check.
    configure_and_build "$ROOT/build-check-annotate" \
        -DCMAKE_CXX_COMPILER="$clangxx" -DCPT_THREAD_SAFETY=ON -DCPT_WERROR=ON
    # The negative-compile fixtures skip without clang; rerun them here where
    # one is guaranteed, proving the gate actually rejects unguarded access.
    run_ctest "$ROOT/build-check-annotate" -L static
}

stage_sa() {
    echo "== stage: sa (cpt_sa project-invariant linter + static-labeled tests) =="
    local dir="$ROOT/build-check-sa"
    configure_and_build "$dir"
    run_ctest "$dir" -L static
    # The real tree must lint clean: sync-types, avx2-isolation, avx2-flags,
    # determinism, raw-stderr (tools/cpt_sa/sa_lint.hpp documents each).
    (cd "$ROOT" && "$dir/tools/cpt_sa" src CMakeLists.txt)
}

stage_ubsan() {
    echo "== stage: ubsan (undefined behavior, recovery disabled, full suite) =="
    configure_and_build "$ROOT/build-check-ubsan" -DCPT_SANITIZE=undefined
    run_ctest "$ROOT/build-check-ubsan"
}

stage_asan() {
    echo "== stage: asan (address sanitizer, full suite) =="
    configure_and_build "$ROOT/build-check-asan" -DCPT_SANITIZE=address
    ASAN_OPTIONS=detect_leaks=0 run_ctest "$ROOT/build-check-asan"
}

stage_tsan() {
    echo "== stage: tsan (thread sanitizer, concurrency-labeled tests) =="
    configure_and_build "$ROOT/build-check-tsan" -DCPT_SANITIZE=thread
    run_ctest "$ROOT/build-check-tsan" -L concurrency
}

host_simd_tiers() {
    # Mirrors util::detect_simd_tier: scalar always; sse2 on any x86-64; avx2
    # only when the host advertises both avx2 and fma.
    local tiers="scalar"
    if grep -q '\bsse2\b' /proc/cpuinfo 2>/dev/null; then
        tiers="$tiers sse2"
    fi
    if grep -q '\bavx2\b' /proc/cpuinfo 2>/dev/null &&
        grep -q '\bfma\b' /proc/cpuinfo 2>/dev/null; then
        tiers="$tiers avx2"
    fi
    echo "$tiers"
}

stage_simd() {
    echo "== stage: simd (kernel parity + determinism under each forced tier) =="
    configure_and_build "$ROOT/build-check-simd"
    local tiers
    tiers="$(host_simd_tiers)"
    echo "host tiers: $tiers"
    for t in $tiers; do
        echo "-- CPT_SIMD=$t: parity + determinism suites"
        CPT_SIMD="$t" run_ctest "$ROOT/build-check-simd" \
            -R 'SimdParity|GemmBitExact|ParallelDeterminism'
    done
}

stage_quant() {
    echo "== stage: quant (int8/fp16 decode-path suite under each forced tier) =="
    local dir="$ROOT/build-check-simd"
    configure_and_build "$dir"
    local tiers
    tiers="$(host_simd_tiers)"
    echo "host tiers: $tiers"
    # The q8 kernels promise byte-identical logits on every tier (the int
    # accumulation is exact and the float epilogue is tier-shared), so the
    # whole quant label — parity bounds, fidelity drift, serialization —
    # must pass with each tier forced.
    for t in $tiers; do
        echo "-- CPT_SIMD=$t: quant-labeled tests"
        CPT_SIMD="$t" run_ctest "$dir" -L quant
    done
}

stage_serve() {
    echo "== stage: serve (labeled tests + daemon smoke: loadtest, graceful drain) =="
    local dir="$ROOT/build-check-serve"
    configure_and_build "$dir"
    run_ctest "$dir" -L serve

    local log="$dir/cpt_serve.log"
    rm -rf "$dir/serve-hub"
    "$dir/examples/cpt_serve" --hub="$dir/serve-hub" --bootstrap --ues=40 --port=0 \
        >"$log" 2>&1 &
    local daemon=$!
    # The daemon picks an ephemeral port and prints it on the listening line.
    local port=""
    for _ in $(seq 1 120); do
        port="$(sed -n 's/^cpt_serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")"
        [ -n "$port" ] && break
        if ! kill -0 "$daemon" 2>/dev/null; then
            echo "cpt_serve exited before listening:" >&2
            cat "$log" >&2
            return 1
        fi
        sleep 0.5
    done
    if [ -z "$port" ]; then
        echo "cpt_serve never reported its port:" >&2
        cat "$log" >&2
        kill "$daemon" 2>/dev/null || true
        return 1
    fi
    if ! "$dir/examples/serve_loadtest" --port="$port" --requests=6 --count=4 --threads=2 \
        --max-len=16; then
        echo "serve_loadtest failed against the smoke daemon" >&2
        kill "$daemon" 2>/dev/null || true
        return 1
    fi
    # Graceful drain: SIGTERM must produce a clean exit and the drain marker.
    kill -TERM "$daemon"
    local status=0
    wait "$daemon" || status=$?
    if [ "$status" -ne 0 ]; then
        echo "cpt_serve exited with status $status after SIGTERM:" >&2
        cat "$log" >&2
        return 1
    fi
    if ! grep -q "cpt_serve: drained cleanly" "$log"; then
        echo "cpt_serve log lacks the clean-drain marker:" >&2
        cat "$log" >&2
        return 1
    fi
    echo "serve smoke: loadtest ok, clean drain confirmed on port $port"
}

# Waits for a daemon to print its "listening on" line and echoes the port.
# Fails (empty output) if the daemon exits or stays silent.
await_listen_port() { # <log> <pid> <daemon name as printed>
    local log="$1" pid="$2" name="$3" port=""
    for _ in $(seq 1 120); do
        port="$(sed -n "s/^$name: listening on 127\.0\.0\.1:\([0-9]*\).*$/\1/p" "$log")"
        [ -n "$port" ] && break
        kill -0 "$pid" 2>/dev/null || break
        sleep 0.5
    done
    echo "$port"
}

stage_router() {
    echo "== stage: router (sharded serving: 2 backends + router, mid-load backend kill) =="
    local dir="$ROOT/build-check-serve"
    configure_and_build "$dir"

    local b1log="$dir/router_backend1.log" b2log="$dir/router_backend2.log"
    local rlog="$dir/cpt_router.log" ltlog="$dir/router_loadtest.log"
    rm -rf "$dir/router-hub"

    # Backend 1 bootstraps the shared hub (phone/h9); backend 2 serves the
    # same release — the byte-identical-failover precondition.
    "$dir/examples/cpt_serve" --hub="$dir/router-hub" --bootstrap --ues=40 --port=0 \
        >"$b1log" 2>&1 &
    local b1=$!
    local p1
    p1="$(await_listen_port "$b1log" "$b1" cpt_serve)"
    if [ -z "$p1" ]; then
        echo "backend 1 never listened:" >&2
        cat "$b1log" >&2
        kill "$b1" 2>/dev/null || true
        return 1
    fi
    "$dir/examples/cpt_serve" --hub="$dir/router-hub" --port=0 >"$b2log" 2>&1 &
    local b2=$!
    local p2
    p2="$(await_listen_port "$b2log" "$b2" cpt_serve)"
    if [ -z "$p2" ]; then
        echo "backend 2 never listened:" >&2
        cat "$b2log" >&2
        kill "$b1" "$b2" 2>/dev/null || true
        return 1
    fi

    # --print-owner names the slice's ring owner, i.e. the backend whose
    # mid-load death the failover path must absorb.
    "$dir/examples/cpt_router" --backends="127.0.0.1:$p1,127.0.0.1:$p2" --port=0 \
        --print-owner=phone/h9 >"$rlog" 2>&1 &
    local router=$!
    local rport
    rport="$(await_listen_port "$rlog" "$router" cpt_router)"
    if [ -z "$rport" ]; then
        echo "router never listened:" >&2
        cat "$rlog" >&2
        kill "$b1" "$b2" "$router" 2>/dev/null || true
        return 1
    fi
    local owner_port victim
    owner_port="$(sed -n 's/^cpt_router: owner(phone\/h9) = 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$rlog")"
    if [ "$owner_port" = "$p1" ]; then
        victim=$b1
    elif [ "$owner_port" = "$p2" ]; then
        victim=$b2
    else
        echo "router printed no usable owner (got '$owner_port'):" >&2
        cat "$rlog" >&2
        kill "$b1" "$b2" "$router" 2>/dev/null || true
        return 1
    fi

    # Open-loop load through the router; SIGTERM the owner mid-run. The owner
    # drains its in-flight work, later arrivals fail over to the survivor, and
    # --require-all asserts zero dropped requests end to end.
    "$dir/examples/serve_loadtest" --port="$rport" --rate=40 --requests=80 --threads=8 \
        --count=2 --max-len=16 --require-all >"$ltlog" 2>&1 &
    local lt=$!
    sleep 0.7
    kill -TERM "$victim"
    local lt_status=0
    wait "$lt" || lt_status=$?
    local victim_status=0
    wait "$victim" || victim_status=$?
    if [ "$lt_status" -ne 0 ]; then
        echo "loadtest dropped requests across the backend kill:" >&2
        cat "$ltlog" >&2
        kill "$b1" "$b2" "$router" 2>/dev/null || true
        return 1
    fi
    if [ "$victim_status" -ne 0 ]; then
        echo "killed backend exited with status $victim_status (expected clean drain)" >&2
        kill "$b1" "$b2" "$router" 2>/dev/null || true
        return 1
    fi
    local failovers
    failovers="$(sed -n 's/.*"failovers": \([0-9]*\).*/\1/p' "$ltlog" | head -n 1)"
    if [ -z "$failovers" ] || [ "$failovers" -lt 1 ]; then
        echo "router stats show no failover (got '${failovers:-none}'):" >&2
        cat "$ltlog" >&2
        kill "$b1" "$b2" "$router" 2>/dev/null || true
        return 1
    fi

    # Graceful teardown: router and surviving backend both drain cleanly.
    kill -TERM "$router"
    local status=0
    wait "$router" || status=$?
    if [ "$status" -ne 0 ] || ! grep -q "cpt_router: drained cleanly" "$rlog"; then
        echo "router did not drain cleanly (status $status):" >&2
        cat "$rlog" >&2
        kill "$b1" "$b2" 2>/dev/null || true
        return 1
    fi
    local survivor=$b1
    [ "$victim" = "$b1" ] && survivor=$b2
    kill -TERM "$survivor"
    status=0
    wait "$survivor" || status=$?
    local slog="$b1log"
    [ "$survivor" = "$b2" ] && slog="$b2log"
    if [ "$status" -ne 0 ] || ! grep -q "cpt_serve: drained cleanly" "$slog"; then
        echo "surviving backend did not drain cleanly (status $status):" >&2
        cat "$slog" >&2
        return 1
    fi
    echo "router smoke: $failovers failover(s), zero dropped requests, clean drains"
}

stage_train() {
    echo "== stage: train (labeled tests, then determinism rerun with CPT_THREADS=2) =="
    local dir="$ROOT/build-check-train"
    configure_and_build "$dir"
    run_ctest "$dir" -L train
    # The training-path determinism contract says CPT_THREADS is a pure
    # performance knob; rerun the pinning suite with a pool configured.
    CPT_THREADS=2 run_ctest "$dir" -R 'TrainDeterminism'
}

stage_spec() {
    echo "== stage: spec (speculative-decode identity suite per forced tier and thread count) =="
    local dir="$ROOT/build-check-simd"
    configure_and_build "$dir"
    local tiers
    tiers="$(host_simd_tiers)"
    echo "host tiers: $tiers"
    # The spec label pins byte-identities (forced all-reject vs plain, greedy
    # at every spec_k, SlotBatch vs generate_batch, KV rollback) that must
    # hold on every SIMD tier — the rejection rule and rollback are pure
    # bookkeeping over tier-shared math, so a tier-dependent failure means a
    # real divergence, not tolerance noise. CPT_THREADS=2 reruns the suite
    # with the pool engaged: row-partitioned kernels must keep the same
    # identities when rows are split across workers (DESIGN.md §16).
    for t in $tiers; do
        echo "-- CPT_SIMD=$t: spec-labeled tests"
        CPT_SIMD="$t" run_ctest "$dir" -L spec
    done
    echo "-- CPT_THREADS=2: spec-labeled tests"
    CPT_THREADS=2 run_ctest "$dir" -L spec
}

stage_scale() {
    echo "== stage: scale (scale-labeled tests + 50k-UE streaming smoke with RSS bound) =="
    local dir="$ROOT/build-check-scale"
    configure_and_build "$dir"
    run_ctest "$dir" -L scale
    # End-to-end streaming smoke: generate a 50k-UE world straight to the
    # columnar format, replay it through the streaming linter, and evaluate
    # streaming fidelity — all of which must stay under the RSS bound, proving
    # the O(chunk + sketches) memory contract (DESIGN.md §14). The bound is
    # ~7x the measured peak, so it only trips on an actual O(population) leak.
    (cd "$dir/bench" && ./bench_scale --pops=50000 --assert-rss-mb=200)
}

all_stages=(werror tidy annotate sa ubsan asan tsan simd quant serve router train scale spec)

run_stage() {
    case "$1" in
        werror) stage_werror ;;
        tidy) stage_tidy ;;
        annotate) stage_annotate ;;
        sa) stage_sa ;;
        ubsan) stage_ubsan ;;
        asan) stage_asan ;;
        tsan) stage_tsan ;;
        simd) stage_simd ;;
        quant) stage_quant ;;
        serve) stage_serve ;;
        router) stage_router ;;
        train) stage_train ;;
        scale) stage_scale ;;
        spec) stage_spec ;;
        *)
            echo "unknown stage '$1' (expected: ${all_stages[*]})" >&2
            exit 2
            ;;
    esac
}

# Internal single-stage entry point. The driver below re-execs itself with
# --stage for each requested stage: `if bash "$0" --stage x` keeps errexit
# live inside the stage (bash disables `set -e` recursively inside functions
# called from an `if` condition, so running the stage function directly under
# the driver's pass/fail capture would silently ignore mid-stage failures).
if [ "${1:-}" = "--stage" ]; then
    if [ $# -ne 2 ]; then
        echo "--stage takes exactly one stage name" >&2
        exit 2
    fi
    run_stage "$2"
    exit 0
fi

stages=("$@")
if [ ${#stages[@]} -eq 0 ]; then
    stages=("${all_stages[@]}")
fi
for s in "${stages[@]}"; do
    case " ${all_stages[*]} " in
        *" $s "*) ;;
        *)
            echo "unknown stage '$s' (expected: ${all_stages[*]})" >&2
            exit 2
            ;;
    esac
done

declare -a stage_status=()
first_failed=""
failed_count=0
for s in "${stages[@]}"; do
    if bash "$0" --stage "$s"; then
        stage_status+=("PASS")
    else
        stage_status+=("FAIL")
        failed_count=$((failed_count + 1))
        if [ -z "$first_failed" ]; then
            first_failed="$s"
        fi
    fi
done

echo
echo "== stage summary =="
for i in "${!stages[@]}"; do
    printf '  %-10s %s\n' "${stages[$i]}" "${stage_status[$i]}"
done
if [ "$failed_count" -gt 0 ]; then
    echo "FAILED: first failing stage was '$first_failed' ($failed_count of ${#stages[@]} stages failed)" >&2
    exit 1
fi
echo "== all requested stages passed =="
