#!/usr/bin/env bash
# Performance bench runner: builds the Release bench binaries, runs every
# bench that emits a BENCH_*.json (kernel micro, end-to-end generate, serve
# scheduler, training path), and collects the JSONs in one place. Run from
# anywhere inside the repo:
#
#   scripts/bench.sh                 # run all perf benches -> bench_results/
#   scripts/bench.sh e2e_generate    # just one bench (micro_nn|e2e_generate|serve|train|scale)
#   CPT_BENCH_OUT=/tmp/r scripts/bench.sh   # collect somewhere else
#
# Each bench writes its BENCH_<name>.json into the build directory; this
# script copies them into $CPT_BENCH_OUT (default: <repo>/bench_results).
set -euo pipefail

ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="$(nproc 2>/dev/null || echo 4)"
BUILD="$ROOT/build-bench"
OUT="${CPT_BENCH_OUT:-$ROOT/bench_results}"

benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
    benches=(micro_nn e2e_generate serve train scale)
fi
for b in "${benches[@]}"; do
    case "$b" in
        micro_nn | e2e_generate | serve | train | scale) ;;
        *)
            echo "unknown bench '$b' (expected: micro_nn e2e_generate serve train scale)" >&2
            exit 2
            ;;
    esac
done

mkdir -p "$BUILD"
cmake -S "$ROOT" -B "$BUILD" -DCMAKE_BUILD_TYPE=Release >"$BUILD/configure.log" 2>&1 ||
    { cat "$BUILD/configure.log"; exit 1; }
targets=()
for b in "${benches[@]}"; do targets+=("bench_$b"); done
cmake --build "$BUILD" -j "$JOBS" --target "${targets[@]}"

mkdir -p "$OUT"
for b in "${benches[@]}"; do
    echo "== bench: $b =="
    # Benches write BENCH_*.json into their working directory.
    (cd "$BUILD/bench" && "./bench_$b")
    cp "$BUILD/bench/BENCH_$b.json" "$OUT/"
done

echo "== collected in $OUT =="
ls -l "$OUT"/BENCH_*.json
