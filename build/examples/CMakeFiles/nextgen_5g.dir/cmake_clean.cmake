file(REMOVE_RECURSE
  "CMakeFiles/nextgen_5g.dir/nextgen_5g.cpp.o"
  "CMakeFiles/nextgen_5g.dir/nextgen_5g.cpp.o.d"
  "nextgen_5g"
  "nextgen_5g.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nextgen_5g.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
