# Empty compiler generated dependencies file for nextgen_5g.
# This may be replaced when dependencies are built.
