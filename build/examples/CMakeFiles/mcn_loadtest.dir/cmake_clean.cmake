file(REMOVE_RECURSE
  "CMakeFiles/mcn_loadtest.dir/mcn_loadtest.cpp.o"
  "CMakeFiles/mcn_loadtest.dir/mcn_loadtest.cpp.o.d"
  "mcn_loadtest"
  "mcn_loadtest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcn_loadtest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
