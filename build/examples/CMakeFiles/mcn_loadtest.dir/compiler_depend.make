# Empty compiler generated dependencies file for mcn_loadtest.
# This may be replaced when dependencies are built.
