# Empty dependencies file for hourly_adaptation.
# This may be replaced when dependencies are built.
