file(REMOVE_RECURSE
  "CMakeFiles/hourly_adaptation.dir/hourly_adaptation.cpp.o"
  "CMakeFiles/hourly_adaptation.dir/hourly_adaptation.cpp.o.d"
  "hourly_adaptation"
  "hourly_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hourly_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
