# Empty dependencies file for bench_table9_transfer_time.
# This may be replaced when dependencies are built.
