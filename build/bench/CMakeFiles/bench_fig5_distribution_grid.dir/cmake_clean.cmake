file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_distribution_grid.dir/bench_fig5_distribution_grid.cpp.o"
  "CMakeFiles/bench_fig5_distribution_grid.dir/bench_fig5_distribution_grid.cpp.o.d"
  "bench_fig5_distribution_grid"
  "bench_fig5_distribution_grid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_distribution_grid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
