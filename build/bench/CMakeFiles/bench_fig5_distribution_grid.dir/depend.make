# Empty dependencies file for bench_fig5_distribution_grid.
# This may be replaced when dependencies are built.
