# Empty dependencies file for bench_table6_distribution_fidelity.
# This may be replaced when dependencies are built.
