file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_distribution_fidelity.dir/bench_table6_distribution_fidelity.cpp.o"
  "CMakeFiles/bench_table6_distribution_fidelity.dir/bench_table6_distribution_fidelity.cpp.o.d"
  "bench_table6_distribution_fidelity"
  "bench_table6_distribution_fidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_distribution_fidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
