# Empty compiler generated dependencies file for bench_table7_event_breakdown.
# This may be replaced when dependencies are built.
