# Empty dependencies file for bench_table3_netshare_violations.
# This may be replaced when dependencies are built.
