file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_netshare_violations.dir/bench_table3_netshare_violations.cpp.o"
  "CMakeFiles/bench_table3_netshare_violations.dir/bench_table3_netshare_violations.cpp.o.d"
  "bench_table3_netshare_violations"
  "bench_table3_netshare_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_netshare_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
