file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_memorization.dir/bench_table11_memorization.cpp.o"
  "CMakeFiles/bench_table11_memorization.dir/bench_table11_memorization.cpp.o.d"
  "bench_table11_memorization"
  "bench_table11_memorization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_memorization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
