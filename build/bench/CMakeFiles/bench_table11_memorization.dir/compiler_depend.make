# Empty compiler generated dependencies file for bench_table11_memorization.
# This may be replaced when dependencies are built.
