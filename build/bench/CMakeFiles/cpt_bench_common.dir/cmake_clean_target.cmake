file(REMOVE_RECURSE
  "../lib/libcpt_bench_common.a"
)
