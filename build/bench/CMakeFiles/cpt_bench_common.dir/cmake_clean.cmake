file(REMOVE_RECURSE
  "../lib/libcpt_bench_common.a"
  "../lib/libcpt_bench_common.pdb"
  "CMakeFiles/cpt_bench_common.dir/common.cpp.o"
  "CMakeFiles/cpt_bench_common.dir/common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
