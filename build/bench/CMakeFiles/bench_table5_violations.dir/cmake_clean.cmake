file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_violations.dir/bench_table5_violations.cpp.o"
  "CMakeFiles/bench_table5_violations.dir/bench_table5_violations.cpp.o.d"
  "bench_table5_violations"
  "bench_table5_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
