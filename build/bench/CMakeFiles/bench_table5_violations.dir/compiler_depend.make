# Empty compiler generated dependencies file for bench_table5_violations.
# This may be replaced when dependencies are built.
