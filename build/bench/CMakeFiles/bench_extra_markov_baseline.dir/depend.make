# Empty dependencies file for bench_extra_markov_baseline.
# This may be replaced when dependencies are built.
