
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_extra_markov_baseline.cpp" "bench/CMakeFiles/bench_extra_markov_baseline.dir/bench_extra_markov_baseline.cpp.o" "gcc" "bench/CMakeFiles/bench_extra_markov_baseline.dir/bench_extra_markov_baseline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/cpt_bench_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mcn/CMakeFiles/cpt_mcn.dir/DependInfo.cmake"
  "/root/repo/build/src/gan/CMakeFiles/cpt_gan.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/cpt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/smm/CMakeFiles/cpt_smm.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/cpt_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cpt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/cpt_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cpt_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
