# Empty dependencies file for bench_table10_transfer_fidelity.
# This may be replaced when dependencies are built.
