file(REMOVE_RECURSE
  "CMakeFiles/bench_extra_mcn_loadfidelity.dir/bench_extra_mcn_loadfidelity.cpp.o"
  "CMakeFiles/bench_extra_mcn_loadfidelity.dir/bench_extra_mcn_loadfidelity.cpp.o.d"
  "bench_extra_mcn_loadfidelity"
  "bench_extra_mcn_loadfidelity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_extra_mcn_loadfidelity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
