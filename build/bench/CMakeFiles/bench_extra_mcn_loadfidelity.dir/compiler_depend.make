# Empty compiler generated dependencies file for bench_extra_mcn_loadfidelity.
# This may be replaced when dependencies are built.
