# Empty compiler generated dependencies file for bench_fig7_interarrival_hist.
# This may be replaced when dependencies are built.
