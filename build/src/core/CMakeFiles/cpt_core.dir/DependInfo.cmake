
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/model.cpp" "src/core/CMakeFiles/cpt_core.dir/model.cpp.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/model.cpp.o.d"
  "/root/repo/src/core/model_hub.cpp" "src/core/CMakeFiles/cpt_core.dir/model_hub.cpp.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/model_hub.cpp.o.d"
  "/root/repo/src/core/sampler.cpp" "src/core/CMakeFiles/cpt_core.dir/sampler.cpp.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/sampler.cpp.o.d"
  "/root/repo/src/core/tokenizer.cpp" "src/core/CMakeFiles/cpt_core.dir/tokenizer.cpp.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/tokenizer.cpp.o.d"
  "/root/repo/src/core/trainer.cpp" "src/core/CMakeFiles/cpt_core.dir/trainer.cpp.o" "gcc" "src/core/CMakeFiles/cpt_core.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/cpt_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cpt_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/cpt_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
