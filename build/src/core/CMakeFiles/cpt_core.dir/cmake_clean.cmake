file(REMOVE_RECURSE
  "CMakeFiles/cpt_core.dir/model.cpp.o"
  "CMakeFiles/cpt_core.dir/model.cpp.o.d"
  "CMakeFiles/cpt_core.dir/model_hub.cpp.o"
  "CMakeFiles/cpt_core.dir/model_hub.cpp.o.d"
  "CMakeFiles/cpt_core.dir/sampler.cpp.o"
  "CMakeFiles/cpt_core.dir/sampler.cpp.o.d"
  "CMakeFiles/cpt_core.dir/tokenizer.cpp.o"
  "CMakeFiles/cpt_core.dir/tokenizer.cpp.o.d"
  "CMakeFiles/cpt_core.dir/trainer.cpp.o"
  "CMakeFiles/cpt_core.dir/trainer.cpp.o.d"
  "libcpt_core.a"
  "libcpt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
