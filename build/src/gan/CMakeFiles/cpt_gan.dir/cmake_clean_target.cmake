file(REMOVE_RECURSE
  "libcpt_gan.a"
)
