# Empty compiler generated dependencies file for cpt_gan.
# This may be replaced when dependencies are built.
