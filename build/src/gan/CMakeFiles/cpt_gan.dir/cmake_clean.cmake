file(REMOVE_RECURSE
  "CMakeFiles/cpt_gan.dir/netshare.cpp.o"
  "CMakeFiles/cpt_gan.dir/netshare.cpp.o.d"
  "libcpt_gan.a"
  "libcpt_gan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_gan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
