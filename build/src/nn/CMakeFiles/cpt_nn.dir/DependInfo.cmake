
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/autograd.cpp" "src/nn/CMakeFiles/cpt_nn.dir/autograd.cpp.o" "gcc" "src/nn/CMakeFiles/cpt_nn.dir/autograd.cpp.o.d"
  "/root/repo/src/nn/infer.cpp" "src/nn/CMakeFiles/cpt_nn.dir/infer.cpp.o" "gcc" "src/nn/CMakeFiles/cpt_nn.dir/infer.cpp.o.d"
  "/root/repo/src/nn/modules.cpp" "src/nn/CMakeFiles/cpt_nn.dir/modules.cpp.o" "gcc" "src/nn/CMakeFiles/cpt_nn.dir/modules.cpp.o.d"
  "/root/repo/src/nn/optim.cpp" "src/nn/CMakeFiles/cpt_nn.dir/optim.cpp.o" "gcc" "src/nn/CMakeFiles/cpt_nn.dir/optim.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/cpt_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/cpt_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/cpt_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/cpt_nn.dir/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
