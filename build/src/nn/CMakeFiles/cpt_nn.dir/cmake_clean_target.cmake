file(REMOVE_RECURSE
  "libcpt_nn.a"
)
