# Empty compiler generated dependencies file for cpt_nn.
# This may be replaced when dependencies are built.
