file(REMOVE_RECURSE
  "CMakeFiles/cpt_nn.dir/autograd.cpp.o"
  "CMakeFiles/cpt_nn.dir/autograd.cpp.o.d"
  "CMakeFiles/cpt_nn.dir/infer.cpp.o"
  "CMakeFiles/cpt_nn.dir/infer.cpp.o.d"
  "CMakeFiles/cpt_nn.dir/modules.cpp.o"
  "CMakeFiles/cpt_nn.dir/modules.cpp.o.d"
  "CMakeFiles/cpt_nn.dir/optim.cpp.o"
  "CMakeFiles/cpt_nn.dir/optim.cpp.o.d"
  "CMakeFiles/cpt_nn.dir/serialize.cpp.o"
  "CMakeFiles/cpt_nn.dir/serialize.cpp.o.d"
  "CMakeFiles/cpt_nn.dir/tensor.cpp.o"
  "CMakeFiles/cpt_nn.dir/tensor.cpp.o.d"
  "libcpt_nn.a"
  "libcpt_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
