
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcn/replay.cpp" "src/mcn/CMakeFiles/cpt_mcn.dir/replay.cpp.o" "gcc" "src/mcn/CMakeFiles/cpt_mcn.dir/replay.cpp.o.d"
  "/root/repo/src/mcn/simulator.cpp" "src/mcn/CMakeFiles/cpt_mcn.dir/simulator.cpp.o" "gcc" "src/mcn/CMakeFiles/cpt_mcn.dir/simulator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/cpt_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cpt_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
