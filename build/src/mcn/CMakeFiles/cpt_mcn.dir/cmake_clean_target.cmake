file(REMOVE_RECURSE
  "libcpt_mcn.a"
)
