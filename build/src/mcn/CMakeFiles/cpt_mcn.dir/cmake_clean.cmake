file(REMOVE_RECURSE
  "CMakeFiles/cpt_mcn.dir/replay.cpp.o"
  "CMakeFiles/cpt_mcn.dir/replay.cpp.o.d"
  "CMakeFiles/cpt_mcn.dir/simulator.cpp.o"
  "CMakeFiles/cpt_mcn.dir/simulator.cpp.o.d"
  "libcpt_mcn.a"
  "libcpt_mcn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_mcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
