# Empty compiler generated dependencies file for cpt_mcn.
# This may be replaced when dependencies are built.
