
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/trace/io.cpp" "src/trace/CMakeFiles/cpt_trace.dir/io.cpp.o" "gcc" "src/trace/CMakeFiles/cpt_trace.dir/io.cpp.o.d"
  "/root/repo/src/trace/ngram.cpp" "src/trace/CMakeFiles/cpt_trace.dir/ngram.cpp.o" "gcc" "src/trace/CMakeFiles/cpt_trace.dir/ngram.cpp.o.d"
  "/root/repo/src/trace/stream.cpp" "src/trace/CMakeFiles/cpt_trace.dir/stream.cpp.o" "gcc" "src/trace/CMakeFiles/cpt_trace.dir/stream.cpp.o.d"
  "/root/repo/src/trace/synthetic.cpp" "src/trace/CMakeFiles/cpt_trace.dir/synthetic.cpp.o" "gcc" "src/trace/CMakeFiles/cpt_trace.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/cpt_cellular.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
