# Empty dependencies file for cpt_trace.
# This may be replaced when dependencies are built.
