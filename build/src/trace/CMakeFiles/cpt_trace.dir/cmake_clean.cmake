file(REMOVE_RECURSE
  "CMakeFiles/cpt_trace.dir/io.cpp.o"
  "CMakeFiles/cpt_trace.dir/io.cpp.o.d"
  "CMakeFiles/cpt_trace.dir/ngram.cpp.o"
  "CMakeFiles/cpt_trace.dir/ngram.cpp.o.d"
  "CMakeFiles/cpt_trace.dir/stream.cpp.o"
  "CMakeFiles/cpt_trace.dir/stream.cpp.o.d"
  "CMakeFiles/cpt_trace.dir/synthetic.cpp.o"
  "CMakeFiles/cpt_trace.dir/synthetic.cpp.o.d"
  "libcpt_trace.a"
  "libcpt_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
