file(REMOVE_RECURSE
  "libcpt_trace.a"
)
