file(REMOVE_RECURSE
  "libcpt_util.a"
)
