# Empty compiler generated dependencies file for cpt_util.
# This may be replaced when dependencies are built.
