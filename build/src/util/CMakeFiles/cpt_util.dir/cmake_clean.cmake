file(REMOVE_RECURSE
  "CMakeFiles/cpt_util.dir/ascii.cpp.o"
  "CMakeFiles/cpt_util.dir/ascii.cpp.o.d"
  "CMakeFiles/cpt_util.dir/cli.cpp.o"
  "CMakeFiles/cpt_util.dir/cli.cpp.o.d"
  "CMakeFiles/cpt_util.dir/csv.cpp.o"
  "CMakeFiles/cpt_util.dir/csv.cpp.o.d"
  "CMakeFiles/cpt_util.dir/rng.cpp.o"
  "CMakeFiles/cpt_util.dir/rng.cpp.o.d"
  "CMakeFiles/cpt_util.dir/stats.cpp.o"
  "CMakeFiles/cpt_util.dir/stats.cpp.o.d"
  "libcpt_util.a"
  "libcpt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
