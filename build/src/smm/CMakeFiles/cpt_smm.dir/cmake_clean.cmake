file(REMOVE_RECURSE
  "CMakeFiles/cpt_smm.dir/cluster.cpp.o"
  "CMakeFiles/cpt_smm.dir/cluster.cpp.o.d"
  "CMakeFiles/cpt_smm.dir/empirical_cdf.cpp.o"
  "CMakeFiles/cpt_smm.dir/empirical_cdf.cpp.o.d"
  "CMakeFiles/cpt_smm.dir/ensemble.cpp.o"
  "CMakeFiles/cpt_smm.dir/ensemble.cpp.o.d"
  "CMakeFiles/cpt_smm.dir/markov.cpp.o"
  "CMakeFiles/cpt_smm.dir/markov.cpp.o.d"
  "CMakeFiles/cpt_smm.dir/semi_markov.cpp.o"
  "CMakeFiles/cpt_smm.dir/semi_markov.cpp.o.d"
  "libcpt_smm.a"
  "libcpt_smm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_smm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
