file(REMOVE_RECURSE
  "libcpt_smm.a"
)
