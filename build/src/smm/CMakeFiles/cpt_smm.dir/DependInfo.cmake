
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/smm/cluster.cpp" "src/smm/CMakeFiles/cpt_smm.dir/cluster.cpp.o" "gcc" "src/smm/CMakeFiles/cpt_smm.dir/cluster.cpp.o.d"
  "/root/repo/src/smm/empirical_cdf.cpp" "src/smm/CMakeFiles/cpt_smm.dir/empirical_cdf.cpp.o" "gcc" "src/smm/CMakeFiles/cpt_smm.dir/empirical_cdf.cpp.o.d"
  "/root/repo/src/smm/ensemble.cpp" "src/smm/CMakeFiles/cpt_smm.dir/ensemble.cpp.o" "gcc" "src/smm/CMakeFiles/cpt_smm.dir/ensemble.cpp.o.d"
  "/root/repo/src/smm/markov.cpp" "src/smm/CMakeFiles/cpt_smm.dir/markov.cpp.o" "gcc" "src/smm/CMakeFiles/cpt_smm.dir/markov.cpp.o.d"
  "/root/repo/src/smm/semi_markov.cpp" "src/smm/CMakeFiles/cpt_smm.dir/semi_markov.cpp.o" "gcc" "src/smm/CMakeFiles/cpt_smm.dir/semi_markov.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cellular/CMakeFiles/cpt_cellular.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/cpt_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
