# Empty dependencies file for cpt_smm.
# This may be replaced when dependencies are built.
