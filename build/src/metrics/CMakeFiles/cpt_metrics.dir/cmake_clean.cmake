file(REMOVE_RECURSE
  "CMakeFiles/cpt_metrics.dir/analytics.cpp.o"
  "CMakeFiles/cpt_metrics.dir/analytics.cpp.o.d"
  "CMakeFiles/cpt_metrics.dir/fidelity.cpp.o"
  "CMakeFiles/cpt_metrics.dir/fidelity.cpp.o.d"
  "libcpt_metrics.a"
  "libcpt_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
