# Empty dependencies file for cpt_metrics.
# This may be replaced when dependencies are built.
