file(REMOVE_RECURSE
  "libcpt_metrics.a"
)
