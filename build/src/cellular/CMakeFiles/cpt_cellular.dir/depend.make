# Empty dependencies file for cpt_cellular.
# This may be replaced when dependencies are built.
