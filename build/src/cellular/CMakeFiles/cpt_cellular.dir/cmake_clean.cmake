file(REMOVE_RECURSE
  "CMakeFiles/cpt_cellular.dir/events.cpp.o"
  "CMakeFiles/cpt_cellular.dir/events.cpp.o.d"
  "CMakeFiles/cpt_cellular.dir/messages.cpp.o"
  "CMakeFiles/cpt_cellular.dir/messages.cpp.o.d"
  "CMakeFiles/cpt_cellular.dir/state_machine.cpp.o"
  "CMakeFiles/cpt_cellular.dir/state_machine.cpp.o.d"
  "libcpt_cellular.a"
  "libcpt_cellular.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpt_cellular.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
