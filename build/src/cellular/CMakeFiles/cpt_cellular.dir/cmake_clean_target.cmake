file(REMOVE_RECURSE
  "libcpt_cellular.a"
)
