
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cellular/events.cpp" "src/cellular/CMakeFiles/cpt_cellular.dir/events.cpp.o" "gcc" "src/cellular/CMakeFiles/cpt_cellular.dir/events.cpp.o.d"
  "/root/repo/src/cellular/messages.cpp" "src/cellular/CMakeFiles/cpt_cellular.dir/messages.cpp.o" "gcc" "src/cellular/CMakeFiles/cpt_cellular.dir/messages.cpp.o.d"
  "/root/repo/src/cellular/state_machine.cpp" "src/cellular/CMakeFiles/cpt_cellular.dir/state_machine.cpp.o" "gcc" "src/cellular/CMakeFiles/cpt_cellular.dir/state_machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/cpt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
