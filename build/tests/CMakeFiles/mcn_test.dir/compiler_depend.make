# Empty compiler generated dependencies file for mcn_test.
# This may be replaced when dependencies are built.
