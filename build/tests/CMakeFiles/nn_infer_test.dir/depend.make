# Empty dependencies file for nn_infer_test.
# This may be replaced when dependencies are built.
