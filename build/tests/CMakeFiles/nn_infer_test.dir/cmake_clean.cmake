file(REMOVE_RECURSE
  "CMakeFiles/nn_infer_test.dir/nn_infer_test.cpp.o"
  "CMakeFiles/nn_infer_test.dir/nn_infer_test.cpp.o.d"
  "nn_infer_test"
  "nn_infer_test.pdb"
  "nn_infer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nn_infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
