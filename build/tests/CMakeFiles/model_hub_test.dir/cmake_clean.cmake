file(REMOVE_RECURSE
  "CMakeFiles/model_hub_test.dir/model_hub_test.cpp.o"
  "CMakeFiles/model_hub_test.dir/model_hub_test.cpp.o.d"
  "model_hub_test"
  "model_hub_test.pdb"
  "model_hub_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_hub_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
