# Empty compiler generated dependencies file for model_hub_test.
# This may be replaced when dependencies are built.
