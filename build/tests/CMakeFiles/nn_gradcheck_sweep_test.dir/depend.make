# Empty dependencies file for nn_gradcheck_sweep_test.
# This may be replaced when dependencies are built.
