# Empty compiler generated dependencies file for smm_test.
# This may be replaced when dependencies are built.
