file(REMOVE_RECURSE
  "CMakeFiles/smm_test.dir/smm_test.cpp.o"
  "CMakeFiles/smm_test.dir/smm_test.cpp.o.d"
  "smm_test"
  "smm_test.pdb"
  "smm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
