# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/cellular_test[1]_include.cmake")
include("/root/repo/build/tests/trace_test[1]_include.cmake")
include("/root/repo/build/tests/nn_tensor_test[1]_include.cmake")
include("/root/repo/build/tests/nn_autograd_test[1]_include.cmake")
include("/root/repo/build/tests/nn_modules_test[1]_include.cmake")
include("/root/repo/build/tests/nn_optim_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/smm_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/gan_test[1]_include.cmake")
include("/root/repo/build/tests/mcn_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/nn_infer_test[1]_include.cmake")
include("/root/repo/build/tests/analytics_test[1]_include.cmake")
include("/root/repo/build/tests/markov_test[1]_include.cmake")
include("/root/repo/build/tests/messages_test[1]_include.cmake")
include("/root/repo/build/tests/replay_test[1]_include.cmake")
include("/root/repo/build/tests/model_hub_test[1]_include.cmake")
include("/root/repo/build/tests/nn_gradcheck_sweep_test[1]_include.cmake")
include("/root/repo/build/tests/fuzz_test[1]_include.cmake")
